//! The condensation threshold (paper Eq. 4, Theorems 2–3) explored
//! analytically: how the utilization spread sets the sustainable range
//! of average wealth.
//!
//! ```sh
//! cargo run --example condensation_threshold --release
//! ```

use scrip_core::queueing::closed::ClosedJackson;
use scrip_core::queueing::condensation::{
    classify, empirical_threshold, threshold_from_density, Regime, Threshold,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Symmetric utilization: the corollary says T = ∞.
    let symmetric = vec![1.0; 100];
    let est = empirical_threshold(&symmetric, 1e-9)?;
    println!("symmetric utilization: {}", est.threshold);

    // 2. A mildly heterogeneous market: finite T.
    let mut u: Vec<f64> = (0..100).map(|i| 0.90 + 0.001 * i as f64).collect();
    u.push(1.0);
    let est = empirical_threshold(&u, 1e-9)?;
    println!("mild spread (u ∈ [0.90, 1]): {}", est.threshold);
    if let Threshold::Finite(t) = est.threshold {
        for c in [t * 0.5, t * 2.0] {
            println!(
                "  average wealth c = {c:.1} ⇒ {}",
                classify(c, &est.threshold)
            );
        }
        // Where does the excess wealth go? Ask the exact equilibrium.
        let network = ClosedJackson::from_utilizations(&u)?;
        let m = (u.len() as f64 * t * 2.0) as usize;
        let wealth = network.expected_lengths(m);
        let condensate = wealth.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  at c = {:.1}: condensate peer holds {:.0} of {} credits ({:.0}%)",
            t * 2.0,
            condensate,
            m,
            100.0 * condensate / m as f64
        );
    }

    // 3. Continuous densities (Eq. 4 evaluated by quadrature).
    for (name, density) in [
        (
            "f(w) = 2(1−w)",
            Box::new(|w: f64| 2.0 * (1.0 - w)) as Box<dyn Fn(f64) -> f64>,
        ),
        ("f(w) = 3(1−w)²", Box::new(|w: f64| 3.0 * (1.0 - w).powi(2))),
        ("f ≡ 1 (uniform)", Box::new(|_| 1.0)),
    ] {
        let t = threshold_from_density(&density, 1e-8, 1e9)?;
        println!("density {name}: {t}");
    }

    println!("\nCondensation occurs iff the average wealth exceeds T (Theorems 2–3).");
    let t = Threshold::Finite(9.5);
    assert_eq!(classify(5.0, &t), Regime::Sustainable);
    assert_eq!(classify(50.0, &t), Regime::Condensing);
    Ok(())
}

//! An open market with peer churn: joiners bring fresh credits, leavers
//! take their wallets (paper Sec. VI-E / Fig. 11).
//!
//! ```sh
//! cargo run --example churn_market --release
//! ```

use scrip_core::des::SimTime;
use scrip_core::market::{run_market, ChurnConfig, MarketConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimTime::from_secs(6_000);
    println!(
        "{:<32} {:>8} {:>12} {:>10}",
        "configuration", "Gini", "population", "minted"
    );

    // Static baseline.
    let static_market = run_market(MarketConfig::new(200, 100).asymmetric(), 3, horizon)?;
    println!(
        "{:<32} {:>8.3} {:>12} {:>10}",
        "static overlay",
        static_market
            .gini_series()
            .tail_mean(10)
            .unwrap_or(f64::NAN),
        static_market.peer_count(),
        static_market.ledger().minted()
    );

    // Churn with increasing lifespans at fixed expected size 200.
    for (label, arrival, lifespan) in [
        ("churn: lifespan 250 s", 0.8, 250.0),
        ("churn: lifespan 500 s", 0.4, 500.0),
        ("churn: lifespan 1000 s", 0.2, 1_000.0),
    ] {
        let churn = ChurnConfig::new(arrival, lifespan, 20)?;
        let market = run_market(
            MarketConfig::new(200, 100).asymmetric().churn(churn),
            3,
            horizon,
        )?;
        println!(
            "{:<32} {:>8.3} {:>12} {:>10}",
            label,
            market.gini_series().tail_mean(10).unwrap_or(f64::NAN),
            market.peer_count(),
            market.ledger().minted()
        );
    }
    println!("\nShorter lifespans keep wealth dispersed (paper Fig. 11).");
    Ok(())
}

//! Comparing condensation counter-measures: no intervention vs income
//! taxation vs dynamic spending rates (paper Secs. VI-C and VI-D).
//!
//! ```sh
//! cargo run --example taxation_policy --release
//! ```

use scrip_core::des::SimTime;
use scrip_core::market::{run_market, MarketConfig};
use scrip_core::policy::{SpendingPolicy, TaxConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimTime::from_secs(8_000);
    // Quasi-symmetric utilization (±10% rate jitter): the regime where
    // taxation visibly competes with condensation. Under violent
    // degree-driven asymmetry the condensed market has almost no taxable
    // flow left — see DESIGN.md §8.
    let base = MarketConfig::new(150, 100).near_symmetric(0.1);

    let cases: Vec<(&str, MarketConfig)> = vec![
        ("no intervention", base.clone()),
        (
            "income tax 10% above 50",
            base.clone().tax(TaxConfig::new(0.1, 50)?),
        ),
        (
            "income tax 20% above 80",
            base.clone().tax(TaxConfig::new(0.2, 80)?),
        ),
        (
            "dynamic spending (m = 100)",
            base.clone()
                .spending(SpendingPolicy::Dynamic { threshold: 100 }),
        ),
    ];

    println!(
        "{:<28} {:>10} {:>12} {:>12}",
        "policy", "Gini", "broke peers", "collected"
    );
    for (label, config) in cases {
        let market = run_market(config, 11, horizon)?;
        let gini = market.gini_series().tail_mean(10).unwrap_or(f64::NAN);
        let broke = market
            .ledger()
            .balances_vec()
            .iter()
            .filter(|&&b| b == 0)
            .count();
        let collected = market.taxation().map(|t| t.collected).unwrap_or(0);
        println!("{label:<28} {gini:>10.3} {broke:>12} {collected:>12}");
    }
    println!("\nLower Gini = healthier market (paper Figs. 9–10).");
    Ok(())
}

//! Quickstart: build a credit market, run it, and ask the paper's
//! question — will credits condense?
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use scrip_core::des::SimTime;
use scrip_core::mapping::analyze_market;
use scrip_core::market::{run_market, MarketConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 200-peer scale-free market; every peer starts with 50 credits
    // and spends ~1 credit/sec to a uniformly chosen neighbor
    // (asymmetric utilization: hubs earn more than they spend).
    let config = MarketConfig::new(200, 50).asymmetric();
    let market = run_market(config, 7, SimTime::from_secs(5_000))?;

    println!("== scrip quickstart ==");
    println!(
        "peers: {}, total credits: {}",
        market.peer_count(),
        market.ledger().total()
    );
    println!(
        "simulated wealth Gini after 5000 s: {:.3}",
        market.wealth_gini()?
    );

    // The paper's theory, applied to the same market.
    let analysis = analyze_market(&market)?;
    println!(
        "condensation threshold (Eq. 4): {}",
        analysis.threshold.threshold
    );
    println!(
        "average wealth c = {:.1} ⇒ regime: {}",
        analysis.average_wealth, analysis.regime
    );
    let richest = analysis
        .expected_wealth
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    println!(
        "theory's richest peer holds {:.0} credits in expectation ({}x the average)",
        richest,
        (richest / analysis.average_wealth).round()
    );
    Ok(())
}

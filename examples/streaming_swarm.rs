//! A live-streaming swarm where chunks are paid for with credits — the
//! paper's full protocol stack (Fig. 1's setting).
//!
//! ```sh
//! cargo run --example streaming_swarm --release
//! ```

use scrip_core::des::{SimRng, SimTime};
use scrip_core::econ::WealthSnapshot;
use scrip_core::protocol::StreamingMarket;
use scrip_core::streaming::StreamingConfig;
use scrip_core::topology::generators::{self, ScaleFreeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SimRng::seed_from_u64(42);
    let overlay = generators::scale_free(&ScaleFreeConfig::new(150)?, &mut rng)?;
    println!(
        "overlay: {}",
        scrip_core::topology::metrics::TopologyReport::of(&overlay)
    );

    // 1 chunk/sec live stream, 1 credit per chunk, 60 credits each.
    let horizon = SimTime::from_secs(900);
    let system = StreamingMarket::new(60)
        .streaming(StreamingConfig::market_paced(1.0))
        .run(overlay, 42, horizon)?;

    let report = system.report(horizon);
    println!("streaming: {report}");

    let policy = system.policy();
    let snapshot = WealthSnapshot::from_u64(&policy.ledger().balances_vec())?;
    println!("wealth:    {snapshot}");
    println!(
        "market:    settlements={} denials={} source_income={} (recycled)",
        policy.settlements, policy.denials, policy.source_income
    );
    Ok(())
}

//! Full-stack integration: streaming protocol + credit market + analysis.

use scrip_core::des::{SimRng, SimTime};
use scrip_core::mapping::analyze_streaming;
use scrip_core::protocol::StreamingMarket;
use scrip_core::streaming::StreamingConfig;
use scrip_core::topology::generators::{self, ScaleFreeConfig};

fn overlay(n: usize, seed: u64) -> scrip_core::topology::Graph {
    let mut rng = SimRng::seed_from_u64(seed);
    generators::scale_free(&ScaleFreeConfig::new(n).expect("cfg"), &mut rng).expect("graph")
}

/// The combined system streams, trades, and conserves credits.
#[test]
fn streaming_market_end_to_end() {
    let n = 60;
    let system = StreamingMarket::new(80)
        .streaming(StreamingConfig::market_paced(1.0))
        .run(overlay(n, 1), 2, SimTime::from_secs(300))
        .expect("runs");
    let report = system.report(SimTime::from_secs(300));
    assert!(report.started_fraction > 0.9, "{report}");
    assert!(report.mean_download_rate > 0.5, "{report}");
    let policy = system.policy();
    assert!(policy.settlements > 1_000);
    assert!(policy.ledger().conserved());
    assert_eq!(
        policy.ledger().total() + policy.ledger().escrow(),
        n as u64 * 80
    );
}

/// Chunk-availability weights from a live swarm feed the queueing
/// analysis (the paper's "credit transfer probabilities are decided by
/// data chunk availability").
#[test]
fn availability_analysis_runs_on_live_swarm() {
    let system = StreamingMarket::new(100)
        .streaming(StreamingConfig::market_paced(1.0))
        .run(overlay(50, 3), 4, SimTime::from_secs(240))
        .expect("runs");
    match analyze_streaming(&system, 1.0, 50 * 100) {
        Ok(analysis) => {
            assert_eq!(analysis.peers.len(), 50);
            assert!(analysis
                .utilizations
                .iter()
                .all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
            let total: f64 = analysis.expected_wealth.iter().sum();
            assert!(
                (total - 5_000.0).abs() < 1.0,
                "expected wealth sums to {total}"
            );
        }
        Err(scrip_core::CoreError::Queueing(_)) => {
            // A snapshot's availability digraph can be reducible; the
            // analysis correctly refuses rather than inventing flows.
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

/// Free trading (no credits) outperforms a credit-starved swarm — the
/// paper's core motivation that bankruptcy degrades streaming.
#[test]
fn credit_starvation_degrades_streaming() {
    use scrip_core::des::Simulation;
    use scrip_core::streaming::{FreeTrade, StreamEvent, StreamingSystem};

    let g = overlay(50, 5);
    let mut rng = SimRng::seed_from_u64(6);
    let free = StreamingSystem::new(
        g.clone(),
        StreamingConfig::market_paced(1.0),
        FreeTrade,
        rng.fork(),
    )
    .expect("builds");
    let mut sim = Simulation::new(free);
    sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
    sim.run_until(SimTime::from_secs(300));
    let free_report = sim.model().report(sim.now());

    let starved = StreamingMarket::new(0)
        .streaming(StreamingConfig::market_paced(1.0))
        .run(g, 6, SimTime::from_secs(300))
        .expect("runs");
    let starved_report = starved.report(SimTime::from_secs(300));
    assert!(
        starved_report.mean_download_rate < 0.5 * free_report.mean_download_rate,
        "starved dl {} vs free dl {}",
        starved_report.mean_download_rate,
        free_report.mean_download_rate
    );
}

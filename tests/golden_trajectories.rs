//! Golden-trajectory pins for the market hot paths.
//!
//! The two queue-level trajectories were captured from the pre-arena
//! (BTreeMap-based) implementation of
//! [`scrip_core::market::CreditMarket`] and pin the exact per-peer
//! balances, the full Gini-over-time series, and the conservation
//! counters for two seeded market configurations. The dense peer-arena
//! / incremental-Gini refactor must reproduce them *bit for bit*: every
//! RNG draw, every transfer, and every recorded sample has to land
//! identically.
//!
//! The chunk-level trajectory pins the arena-based streaming market
//! (`scrip_core::protocol::run_streaming_market`): balances, the stall
//! and Gini series, and the settlement/denial counters. Any change to
//! the trade loop's RNG draws, scheduling order, or settlement
//! arithmetic shows up as a diff.
//!
//! Regenerate (only when an intentional behaviour change is made) with:
//!
//! ```text
//! SCRIP_BLESS=1 cargo test --test golden_trajectories
//! ```

use std::fmt::Write as _;
use std::path::Path;

use scrip_core::market::{ChurnConfig, MarketConfig, TopologyKind};
use scrip_core::policy::{SpendingPolicy, TaxConfig};
use scrip_core::pricing::PricingConfig;
use scrip_core::streaming::StreamingConfig;
use scrip_des::{SimDuration, SimTime};

const GOLDEN_PATH: &str = "tests/golden/market_trajectories.txt";

/// Config A: the asymmetric availability-feedback market — exercises
/// neighbor routing over the scale-free overlay, the weighted seller
/// pick, and per-seller Poisson pricing.
fn config_a() -> (MarketConfig, u64, u64) {
    let config = MarketConfig::new(60, 50)
        .asymmetric()
        .with_availability_feedback()
        .pricing(PricingConfig::SellerPoisson { mean: 2.0 })
        .sample_interval(SimDuration::from_secs(100));
    (config, 11, 2_000)
}

/// Config B: the everything-on market — complete mixing with jittered
/// rates, income tax with escrow sweeps, dynamic spending, per-chunk
/// Poisson prices, and churn (joins, leaves, mint/burn accounting).
fn config_b() -> (MarketConfig, u64, u64) {
    let config = MarketConfig::new(50, 40)
        .near_symmetric(0.2)
        .spending(SpendingPolicy::Dynamic { threshold: 60 })
        .tax(TaxConfig::new(0.2, 40).expect("valid tax"))
        .churn(ChurnConfig::new(0.25, 200.0, 8).expect("valid churn"))
        .topology(TopologyKind::Complete)
        .pricing(PricingConfig::ChunkPoisson { mean: 1.0 })
        .sample_interval(SimDuration::from_secs(100));
    (config, 23, 2_000)
}

/// Renders one market run as a deterministic text block. Floats use
/// `{:?}` (shortest round-trip representation), so any bit-level drift
/// in the Gini series shows up as a diff.
fn render(label: &str, config: MarketConfig, seed: u64, horizon_secs: u64) -> String {
    let market = scrip_core::market::run_market(config, seed, SimTime::from_secs(horizon_secs))
        .expect("market runs");
    render_market(label, seed, horizon_secs, &market)
}

/// Renders the same run executed through the sharded kernel at `shards`
/// execution shards. Byte-identity means the block must match
/// [`render`]'s exactly, so the *unmodified* blessed fixtures also pin
/// the sharded runner bit-for-bit.
fn render_sharded(
    label: &str,
    config: MarketConfig,
    seed: u64,
    horizon_secs: u64,
    shards: usize,
) -> String {
    let market = scrip_core::sharded::run_sharded_market(
        config.shards(shards),
        seed,
        SimTime::from_secs(horizon_secs),
    )
    .expect("sharded market runs");
    render_market(label, seed, horizon_secs, &market)
}

fn render_market(
    label: &str,
    seed: u64,
    horizon_secs: u64,
    market: &scrip_core::market::CreditMarket,
) -> String {
    let mut out = String::new();
    writeln!(out, "[{label} seed={seed} horizon={horizon_secs}]").unwrap();
    writeln!(out, "balances={:?}", market.ledger().balances_vec()).unwrap();
    let gini: Vec<(f64, f64)> = market
        .gini_series()
        .samples()
        .iter()
        .map(|&(t, g)| (t.as_secs_f64(), g))
        .collect();
    writeln!(out, "gini={gini:?}").unwrap();
    writeln!(
        out,
        "purchases={} denied={} minted={} burned={} escrow={} peers={}",
        market.purchases(),
        market.denied(),
        market.ledger().minted(),
        market.ledger().burned(),
        market.ledger().escrow(),
        market.peer_count(),
    )
    .unwrap();
    out
}

/// Config C: the chunk-level streaming market — exercises the arena
/// hot path of `scrip-streaming` (pull scheduling, rarest-first,
/// provider rotation) plus `CreditTradePolicy` settlement, taxation,
/// chunk-level churn (mint/burn), and the stall/Gini sampling chain.
fn config_c() -> (MarketConfig, u64, u64) {
    let config = MarketConfig::new(50, 30)
        .streaming_market(StreamingConfig::market_paced(1.0))
        .pricing(PricingConfig::SellerPoisson { mean: 2.0 })
        .tax(TaxConfig::new(0.2, 40).expect("valid tax"))
        .churn(ChurnConfig::new(0.25, 200.0, 8).expect("valid churn"))
        .sample_interval(SimDuration::from_secs(50));
    (config, 31, 600)
}

/// Renders one streaming-market run as a deterministic text block.
fn render_streaming(label: &str, config: MarketConfig, seed: u64, horizon_secs: u64) -> String {
    let system =
        scrip_core::protocol::run_streaming_market(&config, seed, SimTime::from_secs(horizon_secs))
            .expect("streaming market runs");
    let policy = system.policy();
    let mut out = String::new();
    writeln!(out, "[{label} seed={seed} horizon={horizon_secs}]").unwrap();
    writeln!(out, "balances={:?}", policy.balances_sorted()).unwrap();
    let series = |ts: &scrip_des::stats::TimeSeries| -> Vec<(f64, f64)> {
        ts.samples()
            .iter()
            .map(|&(t, v)| (t.as_secs_f64(), v))
            .collect()
    };
    writeln!(out, "gini={:?}", series(policy.gini_series())).unwrap();
    writeln!(out, "stall={:?}", series(system.stall_series())).unwrap();
    writeln!(
        out,
        "settlements={} denials={} shortfalls={} source_income={} minted={} burned={} escrow={} \
         peers={}",
        policy.settlements,
        policy.denials,
        policy.shortfalls,
        policy.source_income,
        policy.ledger().minted(),
        policy.ledger().burned(),
        policy.ledger().escrow(),
        system.peer_count(),
    )
    .unwrap();
    assert!(policy.ledger().conserved(), "golden run must conserve");
    out
}

fn current_goldens() -> String {
    let (ca, seed_a, horizon_a) = config_a();
    let (cb, seed_b, horizon_b) = config_b();
    let (cc, seed_c, horizon_c) = config_c();
    format!(
        "{}{}{}",
        render("availability-feedback", ca, seed_a, horizon_a),
        render("tax-churn-dynamic", cb, seed_b, horizon_b),
        render_streaming("streaming-tax-churn", cc, seed_c, horizon_c)
    )
}

#[test]
fn market_trajectories_match_pre_refactor_goldens() {
    let rendered = current_goldens();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var("SCRIP_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, &rendered).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        golden, rendered,
        "seeded market trajectories drifted from the pre-refactor goldens \
         (regenerate with SCRIP_BLESS=1 only for intentional changes)"
    );
}

/// The sharded kernel must reproduce the *unmodified* blessed fixtures
/// bit for bit at every shard count — the same golden file pins both
/// runners, with no sharded-specific regeneration.
#[test]
fn sharded_runner_reproduces_blessed_goldens() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    for shards in [1, 2, 8] {
        let (ca, seed_a, horizon_a) = config_a();
        let block = render_sharded("availability-feedback", ca, seed_a, horizon_a, shards);
        assert!(
            golden.contains(&block),
            "config A at shards={shards} drifted from the blessed golden:\n{block}"
        );
        let (cb, seed_b, horizon_b) = config_b();
        let block = render_sharded("tax-churn-dynamic", cb, seed_b, horizon_b, shards);
        assert!(
            golden.contains(&block),
            "config B at shards={shards} drifted from the blessed golden:\n{block}"
        );
    }
}

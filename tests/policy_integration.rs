//! Counter-measure integration tests: taxation (Fig. 9) and dynamic
//! spending (Fig. 10) orderings.

use scrip_core::des::SimTime;
use scrip_core::market::{run_market, MarketConfig};
use scrip_core::policy::{SpendingPolicy, TaxConfig};

fn plateau(config: MarketConfig, seed: u64) -> f64 {
    let market = run_market(config, seed, SimTime::from_secs(5_000)).expect("runs");
    market.gini_series().tail_mean(10).expect("samples")
}

/// Taxation lowers the stabilized Gini (Fig. 9, observation 1). Uses
/// the quasi-symmetric regime where taxation competes with condensation
/// (see fig09's module docs for why the degree-driven asymmetric
/// profile is out of taxation's reach).
#[test]
fn taxation_lowers_gini() {
    let base = MarketConfig::new(80, 100).near_symmetric(0.1);
    let untaxed = plateau(base.clone(), 41);
    let taxed = plateau(base.tax(TaxConfig::new(0.2, 80).expect("valid")), 41);
    assert!(
        taxed < untaxed - 0.05,
        "taxed {taxed:.3} vs untaxed {untaxed:.3}"
    );
}

/// The tax threshold matters: a threshold near the average wealth must
/// not be less effective than a rock-bottom threshold (Fig. 9,
/// observations 2–3).
#[test]
fn higher_threshold_is_not_worse() {
    let base = MarketConfig::new(80, 100).near_symmetric(0.1);
    let low_thr = plateau(
        base.clone().tax(TaxConfig::new(0.2, 10).expect("valid")),
        43,
    );
    let high_thr = plateau(base.tax(TaxConfig::new(0.2, 80).expect("valid")), 43);
    assert!(
        high_thr < low_thr + 0.03,
        "thr80 {high_thr:.3} should not be clearly worse than thr10 {low_thr:.3}"
    );
}

/// Dynamic spending-rate adjustment lowers the stabilized Gini (Fig. 10).
#[test]
fn dynamic_spending_lowers_gini() {
    let base = MarketConfig::new(80, 100).asymmetric();
    let fixed = plateau(base.clone(), 47);
    let dynamic = plateau(
        base.spending(SpendingPolicy::Dynamic { threshold: 100 }),
        47,
    );
    assert!(
        dynamic < fixed - 0.05,
        "dynamic {dynamic:.3} vs fixed {fixed:.3}"
    );
}

/// Taxation bookkeeping: collected = redistributed + escrow remainder.
#[test]
fn taxation_accounting_balances() {
    let market = run_market(
        MarketConfig::new(60, 100)
            .asymmetric()
            .tax(TaxConfig::new(0.2, 50).expect("valid")),
        53,
        SimTime::from_secs(3_000),
    )
    .expect("runs");
    let tax = market.taxation().expect("enabled");
    assert!(tax.collected > 0);
    assert_eq!(
        tax.collected,
        tax.redistributed + market.ledger().escrow(),
        "tax books must balance"
    );
    assert!(market.ledger().conserved());
}

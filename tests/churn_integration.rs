//! Churn (open-market) integration tests — paper Sec. VI-E / Fig. 11.

use scrip_core::des::SimTime;
use scrip_core::market::{run_market, ChurnConfig, MarketConfig};

fn plateau(config: MarketConfig, seed: u64, horizon: u64) -> (f64, usize) {
    let market = run_market(config, seed, SimTime::from_secs(horizon)).expect("runs");
    (
        market.gini_series().tail_mean(10).expect("samples"),
        market.peer_count(),
    )
}

/// Churn keeps the Gini below the static overlay's level: departing
/// peers cannot accumulate forever (Fig. 11(1)).
#[test]
fn churn_lowers_gini_vs_static() {
    let n = 100;
    let (static_gini, _) = plateau(MarketConfig::new(n, 100).asymmetric(), 61, 4_000);
    let churn = ChurnConfig::new(0.2, 500.0, 20).expect("valid"); // expected size 100
    let (dyn_gini, population) = plateau(
        MarketConfig::new(n, 100).asymmetric().churn(churn),
        61,
        4_000,
    );
    assert!(
        dyn_gini < static_gini - 0.05,
        "churn Gini {dyn_gini:.3} vs static {static_gini:.3}"
    );
    assert!(
        (30..=250).contains(&population),
        "population {population} drifted from expectation 100"
    );
}

/// Longer lifespans let the rich get richer: Gini increases with mean
/// lifespan at a fixed arrival rate (Fig. 11(3)).
#[test]
fn longer_lifespan_increases_gini() {
    let arrival = 0.2;
    let (short, _) = plateau(
        MarketConfig::new(100, 100)
            .asymmetric()
            .churn(ChurnConfig::new(arrival, 250.0, 20).expect("valid")),
        67,
        4_000,
    );
    let (long, _) = plateau(
        MarketConfig::new(100, 100)
            .asymmetric()
            .churn(ChurnConfig::new(arrival, 1_000.0, 20).expect("valid")),
        67,
        4_000,
    );
    assert!(
        long > short + 0.03,
        "lifespan 1000 Gini {long:.3} should exceed lifespan 250 Gini {short:.3}"
    );
}

/// The open market's money supply moves with the population: joiners
/// mint, leavers burn, books always balance.
#[test]
fn open_market_accounting() {
    let churn = ChurnConfig::new(0.5, 200.0, 10).expect("valid");
    let market = run_market(
        MarketConfig::new(100, 50).asymmetric().churn(churn),
        71,
        SimTime::from_secs(2_000),
    )
    .expect("runs");
    assert!(market.ledger().conserved());
    assert!(market.ledger().minted() > 100 * 50, "joiners minted");
    assert!(market.ledger().burned() > 0, "leavers burned");
    assert_eq!(
        market.ledger().total() + market.ledger().escrow(),
        market.ledger().minted() - market.ledger().burned()
    );
}

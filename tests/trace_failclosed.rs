//! Fail-closed guarantees of the trace stack, end-to-end through
//! `Session::replay_from`: a damaged or mismatched trace must produce a
//! precise error — never a silent partial verification and never a
//! garbage replay. The frame-level decoder has its own unit suite in
//! `scrip-des`; these tests pin the *surfaced* behaviour a user of the
//! `scrip-sim replay` pipeline sees for each damage class.

use std::path::{Path, PathBuf};

use scrip_core::des::{SimDuration, SimTime, TraceError, TraceReader};
use scrip_core::market::{ChurnConfig, MarketConfig};
use scrip_core::obs::Session;
use scrip_core::CoreError;

/// RAII temp-file path so failed assertions don't leak trace files.
struct TracePath(PathBuf);

impl TracePath {
    fn new(name: &str) -> TracePath {
        TracePath(std::env::temp_dir().join(format!(
            "scrip_failclosed_{}_{name}.trc",
            std::process::id()
        )))
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TracePath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn small_config() -> MarketConfig {
    MarketConfig::new(40, 20)
        .asymmetric()
        .churn(ChurnConfig::new(0.2, 150.0, 8).expect("valid churn"))
        .sample_interval(SimDuration::from_secs(100))
}

const HORIZON: SimTime = SimTime::from_secs(400);

/// Records the small config under seed 5 and returns the trace bytes.
fn recorded_bytes(path: &Path) -> Vec<u8> {
    let mut session = Session::from_config(&small_config(), 5).expect("builds");
    session.record_to(path).expect("recording starts");
    session.run_until(HORIZON);
    session.finish_trace().expect("recording completes");
    std::fs::read(path).expect("trace readable")
}

/// Replays `path` to the horizon and returns the terminal result.
fn replay_outcome(path: &Path) -> Result<(), CoreError> {
    let mut session = Session::from_config(&small_config(), 5).expect("builds");
    session.replay_from(path)?;
    session.run_until(HORIZON);
    session.finish_trace()
}

/// Asserts `result` is a trace error whose message contains `needle`.
fn assert_trace_error(result: Result<(), CoreError>, needle: &str) {
    match result {
        Err(CoreError::Trace(msg)) => assert!(
            msg.contains(needle),
            "expected a trace error mentioning {needle:?}, got {msg:?}"
        ),
        other => panic!("expected a trace error mentioning {needle:?}, got {other:?}"),
    }
}

#[test]
fn intact_traces_replay_cleanly() {
    let trace = TracePath::new("intact");
    recorded_bytes(trace.path());
    replay_outcome(trace.path()).expect("undamaged trace verifies");
}

#[test]
fn truncation_is_reported_not_replayed_past() {
    let trace = TracePath::new("truncated");
    let bytes = recorded_bytes(trace.path());
    // A partial final frame — the tail a mid-write crash leaves behind.
    std::fs::write(trace.path(), &bytes[..bytes.len() - 5]).expect("rewrite");
    assert_trace_error(replay_outcome(trace.path()), "truncated trace");
    // Chopping a whole flush-worth off the tail is also truncation-or-
    // shortfall, never a quietly weaker verification.
    std::fs::write(trace.path(), &bytes[..bytes.len() / 2]).expect("rewrite");
    assert!(
        replay_outcome(trace.path()).is_err(),
        "half a trace must not verify as a whole one"
    );
    // A log that ends mid-header cannot even be opened.
    std::fs::write(trace.path(), &bytes[..12]).expect("rewrite");
    assert_trace_error(replay_outcome(trace.path()), "truncated trace");
}

#[test]
fn bit_flips_are_caught_at_the_damaged_frame() {
    let trace = TracePath::new("bitflip");
    let mut bytes = recorded_bytes(trace.path());
    // Flip one bit inside a frame body past the header: the per-frame
    // FNV checksum pins the damage to that frame.
    let target = 28 + (bytes.len() - 28) / 3;
    bytes[target] ^= 0x10;
    std::fs::write(trace.path(), &bytes).expect("rewrite");
    assert_trace_error(replay_outcome(trace.path()), "corrupt trace");
}

#[test]
fn header_mismatches_fail_before_any_event_is_consumed() {
    let trace = TracePath::new("headers");
    let bytes = recorded_bytes(trace.path());

    // Wrong magic: not a trace at all.
    let mut damaged = bytes.clone();
    damaged[0] = b'X';
    std::fs::write(trace.path(), &damaged).expect("rewrite");
    assert_trace_error(replay_outcome(trace.path()), "bad magic");

    // Wrong format version.
    let mut damaged = bytes.clone();
    damaged[8] = 99;
    std::fs::write(trace.path(), &damaged).expect("rewrite");
    assert_trace_error(replay_outcome(trace.path()), "unsupported trace version");

    // Wrong configuration fingerprint (bytes 12..20).
    let mut damaged = bytes.clone();
    damaged[12] ^= 0xFF;
    std::fs::write(trace.path(), &damaged).expect("rewrite");
    assert_trace_error(replay_outcome(trace.path()), "configuration mismatch");

    // Wrong seed (bytes 20..28): the scenario matches but the RNG
    // stream cannot, so attachment is refused up front.
    let mut damaged = bytes;
    damaged[20..28].copy_from_slice(&999u64.to_le_bytes());
    std::fs::write(trace.path(), &damaged).expect("rewrite");
    assert_trace_error(replay_outcome(trace.path()), "seed mismatch");
}

#[test]
fn reader_surfaces_precise_error_variants() {
    let trace = TracePath::new("variants");
    let bytes = recorded_bytes(trace.path());

    assert_eq!(
        TraceReader::from_bytes(bytes[..4].to_vec()).unwrap_err(),
        TraceError::Truncated { offset: 0 },
        "a log shorter than the magic is truncation at byte 0"
    );
    let mut bad_version = bytes.clone();
    bad_version[8] = 7;
    assert_eq!(
        TraceReader::from_bytes(bad_version).unwrap_err(),
        TraceError::Version { found: 7 }
    );

    // A corrupt frame reports the offset of the frame that suffered the
    // damage, not end-of-log.
    let mut flipped = bytes.clone();
    flipped[30] ^= 0x01;
    let mut reader = TraceReader::from_bytes(flipped).expect("header intact");
    let consumer = reader.register_consumer();
    assert_eq!(
        reader.next_frame(consumer).unwrap_err(),
        TraceError::Corrupt { offset: 28 },
        "damage in the first frame is pinned to the first frame"
    );

    // A partial final frame reports the offset the incomplete frame
    // starts at.
    let mut reader =
        TraceReader::from_bytes(bytes[..bytes.len() - 1].to_vec()).expect("header intact");
    let consumer = reader.register_consumer();
    let last = loop {
        match reader.next_frame(consumer) {
            Ok(Some(_)) => continue,
            other => break other,
        }
    };
    match last {
        Err(TraceError::Truncated { offset }) => {
            assert!(
                offset > 28,
                "truncation offset {offset} must be past the header"
            );
        }
        other => panic!("expected truncation, got {other:?}"),
    }
}

//! The paper's Sec. VI-A claim: the credit distribution converges to a
//! stable state (Figs. 5–7).

use scrip_core::des::{SimDuration, SimTime, Simulation};
use scrip_core::market::{CreditMarket, MarketConfig, MarketEvent};

/// The Gini trajectory stabilizes: late-window variation is small.
#[test]
fn gini_converges_in_symmetric_market() {
    let config = MarketConfig::new(100, 50)
        .symmetric()
        .sample_interval(SimDuration::from_secs(100));
    let market = CreditMarket::build(config, 3).expect("builds");
    let mut sim = Simulation::new(market);
    sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
    sim.run_until(SimTime::from_secs(12_000));
    let series = sim.model().gini_series();
    assert!(series.len() > 100);
    assert!(
        series.has_converged(20, 0.06),
        "Gini did not stabilize: last samples {:?}",
        &series.samples()[series.len() - 5..]
    );
}

/// Sorted-wealth snapshots overlap more in the late stage than in the
/// early stage (Figs. 5 vs 6).
#[test]
fn late_stage_snapshots_overlap_more() {
    let config = MarketConfig::new(150, 100).symmetric();
    let market = CreditMarket::build(config, 5).expect("builds");
    let mut sim = Simulation::new(market);
    sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);

    let mut snapshot_at = |t: u64| {
        sim.run_until(SimTime::from_secs(t));
        sim.model().balances_sorted()
    };
    let early_a = snapshot_at(500);
    let early_b = snapshot_at(2_500);
    let late_a = snapshot_at(16_000);
    let late_b = snapshot_at(18_000);

    let mean_abs_diff = |a: &[u64], b: &[u64]| {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .sum::<f64>()
            / a.len() as f64
    };
    let early_diff = mean_abs_diff(&early_a, &early_b);
    let late_diff = mean_abs_diff(&late_a, &late_b);
    assert!(
        late_diff < early_diff,
        "late-stage curves should overlap more: early Δ {early_diff:.2}, late Δ {late_diff:.2}"
    );
}

/// The asymmetric market's Gini converges to a higher plateau than the
/// symmetric market's (Figs. 7 vs 8).
#[test]
fn asymmetric_plateau_exceeds_symmetric() {
    let run = |config, seed| {
        let market = CreditMarket::build(config, seed).expect("builds");
        let mut sim = Simulation::new(market);
        sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(6_000));
        sim.into_model()
    };
    let sym = run(MarketConfig::new(100, 50).symmetric(), 7);
    let asym = run(MarketConfig::new(100, 50).asymmetric(), 7);
    let g_sym = sym.gini_series().tail_mean(10).expect("samples");
    let g_asym = asym.gini_series().tail_mean(10).expect("samples");
    assert!(
        g_asym > g_sym + 0.1,
        "asymmetric plateau {g_asym:.3} vs symmetric {g_sym:.3}"
    );
}

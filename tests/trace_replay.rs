//! Differential-replay harness for the `SCRIPTRC` event-trace stack.
//!
//! The tentpole claim is that a recorded trace is a complete,
//! execution-strategy-independent transcript of a run: recording at any
//! shard count produces byte-identical traces, and replay-verifying the
//! trace under any shard count or queue profile reproduces the recorded
//! run bit-for-bit — every event `(time, seq, payload)` identity, every
//! boundary state digest, and the final `RunRecord`. These tests pin
//! that claim over *arbitrary* configurations (churn × faults × tax ×
//! queue profile) via proptest, and pin the bisection search to the
//! exact `(time, seq)` a full event-level replay reports.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use scrip_bench::bisect::bisect_trace;
use scrip_core::des::{FaultSpec, SimDuration, SimTime};
use scrip_core::market::{ChurnConfig, MarketConfig};
use scrip_core::obs::{probes, Probe, RunRecord, Session};
use scrip_core::policy::TaxConfig;

/// RAII temp-file path so failed assertions don't leak trace files.
struct TracePath(PathBuf);

impl TracePath {
    fn new(name: &str) -> TracePath {
        TracePath(
            std::env::temp_dir().join(format!("scrip_replay_{}_{name}.trc", std::process::id())),
        )
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TracePath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// The stateful probes attached to every session in this harness, so
/// the compared [`RunRecord`]s carry full observable series.
fn probe_set() -> Vec<Box<dyn Probe>> {
    vec![
        Box::new(probes::GiniSeriesProbe),
        Box::new(probes::ThroughputSeriesProbe::new()),
        Box::new(probes::PopulationSeriesProbe::new()),
        Box::new(probes::FaultSeriesProbe::new()),
    ]
}

/// Builds a queue-level market from the proptest axes: population,
/// queue profile, and the churn / faults / tax toggles.
fn arbitrary_config(
    n: usize,
    asymmetric: bool,
    churn: bool,
    faults: bool,
    tax: bool,
) -> MarketConfig {
    let mut config = MarketConfig::new(n, 25).sample_interval(SimDuration::from_secs(100));
    config = if asymmetric {
        config.asymmetric()
    } else {
        config.symmetric()
    };
    if churn {
        config = config.churn(ChurnConfig::new(0.2, 150.0, 8).expect("valid churn"));
    }
    if faults {
        config = config.faults(FaultSpec {
            drop_rate: 0.05,
            defect_rate: 0.03,
            delay_rate: 0.02,
            crash_fraction: 0.01,
            onset: SimTime::from_secs(50),
            ..FaultSpec::default()
        });
    }
    if tax {
        config = config.tax(TaxConfig::new(0.15, 20).expect("valid tax"));
    }
    config
}

/// Records `config` under `seed` to `path` and returns the run record.
fn record_run(config: &MarketConfig, seed: u64, horizon: SimTime, path: &Path) -> RunRecord {
    let mut session = Session::from_config(config, seed).expect("builds");
    for probe in probe_set() {
        session.attach(probe);
    }
    session.record_to(path).expect("recording starts");
    session.run_until(horizon);
    session.finish_trace().expect("recording completes");
    session.finish().0
}

/// Replay-verifies `path` under `config`, asserting the verification
/// passes, and returns the run record.
fn replay_run(config: &MarketConfig, seed: u64, horizon: SimTime, path: &Path) -> RunRecord {
    let mut session = Session::from_config(config, seed).expect("builds");
    for probe in probe_set() {
        session.attach(probe);
    }
    session.replay_from(path).expect("trace attaches");
    session.run_until(horizon);
    assert_eq!(session.trace_divergence(), None, "replay must not diverge");
    session.finish_trace().expect("replay verifies");
    session.finish().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For arbitrary configurations, a trace recorded at any shard
    /// count is byte-identical to the serial recording, and replaying
    /// it under shards 1/2/8 reproduces the recorded run bit-for-bit
    /// (every event identity, every boundary digest, and the final
    /// `RunRecord`).
    #[test]
    fn replay_reproduces_arbitrary_runs_at_every_shard_count(
        n in 30usize..70,
        asymmetric in proptest::bool::ANY,
        churn in proptest::bool::ANY,
        faults in proptest::bool::ANY,
        tax in proptest::bool::ANY,
        record_shards_ix in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let record_shards = [1usize, 2, 8][record_shards_ix];
        let horizon = SimTime::from_secs(500);
        let config = arbitrary_config(n, asymmetric, churn, faults, tax);
        let trace = TracePath::new(&format!("prop_{seed}_{n}"));
        let recorded = record_run(&config.clone().shards(record_shards), seed, horizon, trace.path());
        let bytes = std::fs::read(trace.path()).expect("trace readable");
        prop_assert!(bytes.len() > 28, "trace must hold frames beyond the header");

        // Recording is execution-strategy independent: every other
        // shard count emits the same bytes — same event stream, same
        // digest frames, bit for bit.
        for shards in [1usize, 2, 8] {
            if shards == record_shards {
                continue;
            }
            let other = TracePath::new(&format!("prop_{seed}_{n}_s{shards}"));
            record_run(&config.clone().shards(shards), seed, horizon, other.path());
            let other_bytes = std::fs::read(other.path()).expect("trace readable");
            prop_assert_eq!(
                &bytes, &other_bytes,
                "trace bytes diverged between shards={} and shards={}",
                record_shards, shards
            );
        }

        // Replay-verification passes at every shard count and yields
        // the identical run record.
        for shards in [1usize, 2, 8] {
            let replayed = replay_run(&config.clone().shards(shards), seed, horizon, trace.path());
            prop_assert_eq!(
                &recorded, &replayed,
                "RunRecord diverged on replay at shards={}",
                shards
            );
        }
    }
}

/// Bisection pins a seeded divergence to the exact `(time, seq)` that a
/// full event-level replay reports, while probing only O(log) digests.
#[test]
fn bisect_pins_the_exact_divergent_event() {
    let config = arbitrary_config(50, true, true, false, true);
    let horizon = SimTime::from_secs(1_000);
    let trace = TracePath::new("bisect_exact");
    record_run(&config, 7, horizon, trace.path());

    // Splice the recorded seed (header bytes 20..28) so a session
    // seeded differently accepts the header, then diverges mid-run.
    let mut bytes = std::fs::read(trace.path()).expect("trace readable");
    bytes[20..28].copy_from_slice(&8u64.to_le_bytes());
    std::fs::write(trace.path(), &bytes).expect("trace rewritable");

    // Ground truth: the full event-level replay scans every frame.
    let mut full = Session::from_config(&config, 8).expect("builds");
    full.replay_from(trace.path()).expect("trace attaches");
    full.run_until(horizon);
    let reference = full
        .trace_divergence()
        .cloned()
        .expect("differing seeds must diverge");

    let report = bisect_trace(&config, 8, horizon, trace.path()).expect("bisect runs");
    let found = report.divergence.expect("bisect finds the divergence");
    assert_eq!(
        found, reference,
        "bisect must pin the same (time, seq) as a full replay"
    );
    assert!(
        report.window.0 < found.time && found.time <= report.window.1,
        "divergence t={} outside bracketed window ({}, {}]",
        found.time,
        report.window.0,
        report.window.1
    );
    // log2(#digests) + 1 probes at most; the digest grid here is the
    // 100 s sampling tick, so 10 boundaries → at most 5 probes.
    assert!(
        report.probes <= 5,
        "binary search ran {} probes over ~10 digests",
        report.probes
    );
}

/// A clean round trip reports no divergence through the bisector too.
#[test]
fn bisect_reports_no_divergence_for_a_faithful_trace() {
    let config = arbitrary_config(40, false, true, true, false);
    let horizon = SimTime::from_secs(600);
    let trace = TracePath::new("bisect_clean");
    record_run(&config, 3, horizon, trace.path());
    let report = bisect_trace(&config, 3, horizon, trace.path()).expect("bisect runs");
    assert_eq!(report.divergence, None, "faithful trace must verify");
    assert_eq!(
        report.window.1, horizon,
        "every recorded digest matched, so the window extends to the horizon"
    );
}

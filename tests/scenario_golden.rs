//! Golden pins for the scenario engine's CSV output.
//!
//! The goldens were captured from the pre-observation-API runner (the
//! one with hard-coded `ReplicationRun` fields and a `Metric` enum) and
//! pin the aggregated CSV byte for byte, so the `Session`/`Probe`
//! redesign is provably output-preserving. Two scales are covered:
//!
//! * **Reduced** copies of `examples/scenarios/streaming.scn` and
//!   `examples/scenarios/fig07.scn` (same structure, smaller population
//!   and horizon) run inside plain `cargo test`;
//! * the **full** files run when `SCRIP_GOLDEN_FULL=1` is set (CI does
//!   the same comparison cheaply through the release binary — see the
//!   "scenario CSV goldens" step in `.github/workflows/ci.yml`).
//!
//! Every comparison also re-runs the batch at a different worker count,
//! so merge-order determinism is pinned alongside the bytes.
//!
//! Regenerate (only for intentional output changes) with:
//!
//! ```text
//! SCRIP_BLESS=1 cargo test --test scenario_golden
//! SCRIP_BLESS=1 SCRIP_GOLDEN_FULL=1 cargo test --release --test scenario_golden
//! ```

use std::path::{Path, PathBuf};

use scrip_bench::scenario::{run_scenario, RunnerOptions, Scenario};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn load_scenario(name: &str) -> Scenario {
    let path = repo_path(&format!("examples/scenarios/{name}"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    Scenario::parse_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// `fig07.scn` shrunk to test scale: same shape (near-symmetric
/// mixing, credits sweep, gini series), smaller population and horizon.
fn reduced_fig07() -> Scenario {
    let mut sc = load_scenario("fig07.scn");
    sc.base.set("peers", "80").expect("valid");
    sc.base.set("sample", "100").expect("valid");
    sc.run.horizon_secs = 2_000;
    sc
}

/// `streaming.scn` shrunk to test scale: same chunk-level protocol
/// stack and metrics, smaller swarm and horizon.
fn reduced_streaming() -> Scenario {
    let mut sc = load_scenario("streaming.scn");
    sc.base.set("peers", "60").expect("valid");
    sc.run.horizon_secs = 300;
    sc
}

/// Runs `scenario` at two worker counts, asserts the CSVs agree, and
/// compares them against the committed golden (or rewrites it under
/// `SCRIP_BLESS`).
fn check_against_golden(scenario: &Scenario, golden_rel: &str) {
    let serial = run_scenario(scenario, &RunnerOptions::with_threads(1)).expect("scenario runs");
    let parallel = run_scenario(scenario, &RunnerOptions::with_threads(4)).expect("scenario runs");
    let csv = serial.to_csv();
    assert_eq!(
        csv,
        parallel.to_csv(),
        "{}: CSV differs between 1 and 4 worker threads",
        scenario.name
    );
    let path = repo_path(golden_rel);
    if std::env::var("SCRIP_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, &csv).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        golden, csv,
        "{}: scenario CSV drifted from the pre-redesign golden \
         (regenerate with SCRIP_BLESS=1 only for intentional changes)",
        scenario.name
    );
}

#[test]
fn fig07_reduced_csv_matches_pre_redesign_golden() {
    check_against_golden(&reduced_fig07(), "tests/golden/scenario_fig07_reduced.csv");
}

#[test]
fn streaming_reduced_csv_matches_pre_redesign_golden() {
    check_against_golden(
        &reduced_streaming(),
        "tests/golden/scenario_streaming_reduced.csv",
    );
}

/// The full-scale pin: the exact shipped scenario files, byte for byte.
/// Minutes of debug-build simulation, so gated behind
/// `SCRIP_GOLDEN_FULL=1` (CI covers the same bytes via the release
/// binary on every push).
#[test]
fn full_scenario_files_match_goldens_when_enabled() {
    if !std::env::var("SCRIP_GOLDEN_FULL").is_ok_and(|v| !v.is_empty() && v != "0") {
        eprintln!("SCRIP_GOLDEN_FULL not set; skipping full-scale golden comparison");
        return;
    }
    check_against_golden(
        &load_scenario("fig07.scn"),
        "tests/golden/scenario_fig07_full.csv",
    );
    check_against_golden(
        &load_scenario("streaming.scn"),
        "tests/golden/scenario_streaming_full.csv",
    );
}

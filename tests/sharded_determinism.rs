//! End-to-end determinism pins for the sharded execution stack.
//!
//! The tentpole claim is that partitioning one market run over
//! execution shards changes *nothing* about the output: the sharded
//! kernel replays the serial event stream exactly, for every shard
//! count. These tests pin that claim at every public layer —
//! `run_sharded_market` vs `run_market`, an instrumented `Session`,
//! and the scenario runner's aggregated CSV under the `--shards`
//! override — plus the cross-shard accounting invariants that the
//! barrier settlement must uphold.

use std::path::{Path, PathBuf};

use scrip_bench::scenario::{run_scenario, set_shard_override, RunnerOptions, Scenario};
use scrip_core::market::{run_market, ChurnConfig, MarketConfig, TopologyKind};
use scrip_core::obs::Session;
use scrip_core::policy::TaxConfig;
use scrip_core::sharded::run_sharded_market;
use scrip_core::streaming::StreamingConfig;
use scrip_des::{SimDuration, SimTime};

/// A deliberately busy queue-level config: churn (joins/leaves re-shape
/// the shard map), taxation (escrow sweeps), asymmetric routing.
fn busy_config() -> MarketConfig {
    MarketConfig::new(60, 40)
        .asymmetric()
        .tax(TaxConfig::new(0.2, 40).expect("valid tax"))
        .churn(ChurnConfig::new(0.3, 150.0, 10).expect("valid churn"))
        .sample_interval(SimDuration::from_secs(100))
}

#[test]
fn sharded_market_is_byte_identical_for_every_shard_count() {
    let horizon = SimTime::from_secs(1_200);
    let serial = run_market(busy_config(), 77, horizon).expect("serial runs");
    for shards in [1, 2, 8] {
        let sharded =
            run_sharded_market(busy_config().shards(shards), 77, horizon).expect("sharded runs");
        assert_eq!(
            serial.ledger().balances_vec(),
            sharded.ledger().balances_vec(),
            "balances diverged at shards={shards}"
        );
        assert_eq!(
            serial.gini_series().samples(),
            sharded.gini_series().samples(),
            "gini series diverged at shards={shards}"
        );
        assert_eq!(serial.purchases(), sharded.purchases(), "shards={shards}");
        assert_eq!(serial.denied(), sharded.denied(), "shards={shards}");
        assert_eq!(
            serial.ledger().minted(),
            sharded.ledger().minted(),
            "shards={shards}"
        );
        assert_eq!(
            serial.ledger().burned(),
            sharded.ledger().burned(),
            "shards={shards}"
        );
        assert_eq!(serial.peer_count(), sharded.peer_count(), "shards={shards}");
        assert!(sharded.ledger().conserved(), "shards={shards}");
    }
}

#[test]
fn sharded_sessions_observe_the_serial_run() {
    let horizon = SimTime::from_secs(800);
    let serial = {
        let mut session = Session::from_config(&busy_config(), 13).expect("builds");
        session.run_until(horizon);
        session.finish().1.queue().expect("queue market")
    };
    for shards in [2, 8] {
        let config = busy_config().shards(shards);
        let mut session = Session::from_config(&config, 13).expect("builds");
        session.run_until(horizon);
        let market = session.finish().1.queue().expect("queue market");
        assert_eq!(
            serial.ledger().balances_vec(),
            market.ledger().balances_vec(),
            "session balances diverged at shards={shards}"
        );
        assert_eq!(
            serial.gini_series().samples(),
            market.gini_series().samples(),
            "session gini series diverged at shards={shards}"
        );
    }
}

#[test]
fn cross_shard_settlement_conserves_every_purchase() {
    use scrip_core::market::{CreditMarket, MarketEvent};
    use scrip_core::sharded::ShardedMarket;
    use scrip_des::ShardedSimulation;

    let config = busy_config();
    let window = config.sample_interval;
    let market = CreditMarket::build(config.shards(4), 21).expect("builds");
    let mut sim = ShardedSimulation::new(ShardedMarket::new(market, 4), window);
    sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
    sim.run_until(SimTime::from_secs(1_000));
    let sharded = sim.model();

    let stats = sharded.shard_stats();
    let local: u64 = stats.iter().map(|s| s.local_trades).sum();
    let outgoing: u64 = stats.iter().map(|s| s.outgoing_trades).sum();
    let incoming: u64 = stats.iter().map(|s| s.incoming_trades).sum();
    let credits_out: u64 = stats.iter().map(|s| s.credits_out).sum();
    let credits_in: u64 = stats.iter().map(|s| s.credits_in).sum();
    assert_eq!(
        local + outgoing,
        sharded.market().purchases(),
        "every purchase is classified exactly once"
    );
    assert_eq!(outgoing, incoming, "cross-shard trades balance");
    assert_eq!(credits_out, credits_in, "cross-shard credits balance");
    assert_eq!(sharded.unsettled(), 0, "barriers leave no trade pending");
    assert!(
        outgoing > 0,
        "a 4-shard partition of a connected overlay must trade across the cut"
    );
}

#[test]
fn sharding_rejects_streaming_and_zero_shards() {
    let streaming = MarketConfig::new(40, 20)
        .streaming_market(StreamingConfig::market_paced(1.0))
        .shards(2);
    assert!(streaming.validate().is_err(), "streaming + shards > 1");
    let zero = MarketConfig::new(40, 20)
        .topology(TopologyKind::Ring)
        .shards(0);
    assert!(zero.validate().is_err(), "shards == 0");
}

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// `churn_throughput.scn` shrunk to test scale, mirroring the CI
/// determinism job that byte-compares the full file's CSV at
/// `--shards 1/2/8` through the release binary.
fn reduced_churn_scenario() -> Scenario {
    let path = repo_path("examples/scenarios/churn_throughput.scn");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut sc = Scenario::parse_str(&text).expect("parses");
    sc.base.set("peers", "60").expect("valid");
    sc.run.horizon_secs = 1_500;
    sc
}

#[test]
fn shard_override_reproduces_scenario_csv_bytes() {
    let scenario = reduced_churn_scenario();
    let baseline = run_scenario(&scenario, &RunnerOptions::with_threads(1))
        .expect("scenario runs")
        .to_csv();
    for shards in [1, 2, 8] {
        let previous = set_shard_override(Some(shards));
        let sharded = run_scenario(&scenario, &RunnerOptions::with_threads(1))
            .expect("scenario runs")
            .to_csv();
        set_shard_override(previous);
        assert_eq!(
            baseline, sharded,
            "scenario CSV diverged under --shards {shards}"
        );
    }
}

//! Cross-crate validation: the queue-level market simulator must agree
//! with the Jackson-network theory it implements (paper Secs. IV–V).

use scrip_core::des::SimTime;
use scrip_core::econ::gini_u64;
use scrip_core::mapping::analyze_market;
use scrip_core::market::{run_market, MarketConfig, TopologyKind};
use scrip_core::queueing::approx::efficiency_vs_wealth;
use scrip_core::queueing::condensation::{Regime, Threshold};

/// Symmetric market: the simulated wealth Gini converges to the exact
/// product-form equilibrium value (the geometric marginal's Gini
/// (1+c)/(1+2c) ≈ 0.5).
#[test]
fn symmetric_market_matches_product_form_gini() {
    let c = 20u64;
    let market = run_market(
        MarketConfig::new(150, c).symmetric(),
        11,
        SimTime::from_secs(8_000),
    )
    .expect("market runs");
    let simulated = gini_u64(&market.ledger().balances_vec()).expect("non-empty");
    let analysis = analyze_market(&market).expect("analyzes");
    let analytic = analysis
        .population_gini(market.ledger().total())
        .expect("gini");
    assert!(
        (simulated - analytic).abs() < 0.08,
        "simulated Gini {simulated:.3} vs product-form {analytic:.3}"
    );
    let geometric = (1.0 + c as f64) / (1.0 + 2.0 * c as f64);
    assert!(
        (simulated - geometric).abs() < 0.1,
        "simulated {simulated:.3} vs geometric limit {geometric:.3}"
    );
}

/// Content-exchange efficiency: the simulation matches the **exact**
/// product-form value `c/(1+c)` (the broke probability of the geometric
/// marginal), and quantifies how much the paper's Eq. (9) approximation
/// `1 − e^{−c}` overestimates at small c.
#[test]
fn efficiency_matches_exact_equilibrium() {
    for c in [1u64, 3] {
        let n = 150;
        let horizon = 4_000u64;
        let market = run_market(
            MarketConfig::new(n, c).symmetric(),
            13,
            SimTime::from_secs(horizon),
        )
        .expect("market runs");
        let total_spent: u64 = market.spent_per_peer().values().sum();
        let efficiency = total_spent as f64 / (n as f64 * horizon as f64);
        let exact = c as f64 / (1.0 + c as f64);
        assert!(
            (efficiency - exact).abs() < 0.05,
            "c={c}: simulated efficiency {efficiency:.3} vs exact {exact:.3}"
        );
        // The paper's approximation is an over-estimate at small c.
        let paper = efficiency_vs_wealth(c as f64);
        assert!(
            paper > exact,
            "c={c}: Eq. (9) {paper:.3} should exceed the exact {exact:.3}"
        );
    }
}

/// Theorems 2–3 direction: an asymmetric market far above threshold
/// condenses and is classified as condensing; a symmetric market is
/// always sustainable (the corollary).
#[test]
fn threshold_classification_matches_simulation() {
    let condensing = run_market(
        MarketConfig::new(120, 100).asymmetric(),
        17,
        SimTime::from_secs(6_000),
    )
    .expect("market runs");
    let analysis = analyze_market(&condensing).expect("analyzes");
    assert_eq!(analysis.regime, Regime::Condensing);
    let g = gini_u64(&condensing.ledger().balances_vec()).expect("non-empty");
    assert!(g > 0.6, "condensing market Gini {g:.3}");

    let sustainable = run_market(
        MarketConfig::new(120, 100).symmetric(),
        17,
        SimTime::from_secs(6_000),
    )
    .expect("market runs");
    let analysis = analyze_market(&sustainable).expect("analyzes");
    assert_eq!(analysis.threshold.threshold, Threshold::Divergent);
    assert_eq!(analysis.regime, Regime::Sustainable);
}

/// The expected per-peer wealth from Buzen's algorithm ranks peers the
/// same way the simulation does (hubs hold more in asymmetric markets).
#[test]
fn expected_wealth_ranks_match_simulation() {
    let market = run_market(
        MarketConfig::new(100, 50)
            .asymmetric()
            .topology(TopologyKind::ScaleFree),
        19,
        SimTime::from_secs(8_000),
    )
    .expect("market runs");
    let analysis = analyze_market(&market).expect("analyzes");
    let mut analytic: Vec<(usize, f64)> = analysis
        .expected_wealth
        .iter()
        .copied()
        .enumerate()
        .collect();
    analytic.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let balances = market.ledger().balances_vec();
    let mut simulated: Vec<(usize, u64)> = balances.iter().copied().enumerate().collect();
    simulated.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
    let k = 10;
    let top_analytic: std::collections::BTreeSet<usize> =
        analytic.iter().take(k).map(|&(i, _)| i).collect();
    // The analytic top-10 should hold a disproportionate share of the
    // simulated wealth (a single snapshot is noisy, so test shares, not
    // exact rank matches).
    let total: u64 = balances.iter().sum();
    let held: u64 = top_analytic.iter().map(|&i| balances[i]).sum();
    let share = held as f64 / total.max(1) as f64;
    assert!(
        share > 0.3,
        "analytic top-{k} peers hold only {:.0}% of simulated wealth",
        share * 100.0
    );
}

/// Credit conservation under every profile.
#[test]
fn closed_market_conservation_holds() {
    for (label, config) in [
        ("symmetric", MarketConfig::new(60, 25).symmetric()),
        ("asymmetric", MarketConfig::new(60, 25).asymmetric()),
        (
            "near_symmetric",
            MarketConfig::new(60, 25).near_symmetric(0.05),
        ),
    ] {
        let market = run_market(config, 23, SimTime::from_secs(1_500)).expect("market runs");
        assert_eq!(
            market.ledger().total(),
            60 * 25,
            "{label}: credits not conserved"
        );
        assert!(market.ledger().conserved(), "{label}: ledger books broken");
    }
}

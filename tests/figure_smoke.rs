//! Smoke tests: every figure regenerator runs at quick scale and
//! reproduces the paper's qualitative shape.

use scrip_bench::figures;
use scrip_bench::scale::RunScale;

const Q: RunScale = RunScale::Quick;

#[test]
fn fig01_condensed_vs_balanced_contrast() {
    let fig = figures::fig01_spending_rates(Q).expect("runs");
    assert_eq!(fig.series.len(), 2);
    // The balanced case has near-uniform spending; the condensed case is
    // dominated by near-zero spenders. Compare by the Gini of the rate
    // series, the paper's own metric.
    let rate_gini = |label: &str| {
        let s = fig.series(label).expect("series");
        let ys: Vec<f64> = s.points.iter().map(|&(_, y)| y).collect();
        scrip_core::econ::gini(&ys).expect("non-empty")
    };
    let balanced = rate_gini("balanced_c12_uniform");
    let condensed = rate_gini("condensed_c200_poisson");
    assert!(balanced < 0.15, "balanced rate Gini {balanced:.3}");
    assert!(
        condensed > balanced + 0.1,
        "condensed rate Gini {condensed:.3} vs balanced {balanced:.3}"
    );
}

#[test]
fn fig02_lorenz_curves_are_valid() {
    let fig = figures::fig02_lorenz_pmf(Q).expect("runs");
    assert_eq!(fig.series.len(), 6);
    for s in &fig.series {
        let first = s.points.first().expect("non-empty");
        let last = s.points.last().expect("non-empty");
        assert_eq!((first.0, first.1), (0.0, 0.0));
        assert!((last.0 - 1.0).abs() < 1e-9 && (last.1 - 1.0).abs() < 1e-9);
        // Below the equality line.
        for &(x, y) in &s.points {
            assert!(
                y <= x + 1e-9,
                "{}: point ({x}, {y}) above equality",
                s.label
            );
        }
    }
}

#[test]
fn fig03_product_form_gini_rises_with_wealth() {
    let fig = figures::fig03_gini_vs_wealth(Q).expect("runs");
    for s in fig
        .series
        .iter()
        .filter(|s| s.label.starts_with("product_form"))
    {
        let first = s.points.first().expect("non-empty").1;
        let last = s.points.last().expect("non-empty").1;
        assert!(last > first, "{}: {first:.3} -> {last:.3}", s.label);
    }
}

#[test]
fn fig04_efficiency_saturates() {
    let fig = figures::fig04_efficiency(Q).expect("runs");
    let exact = fig.series("exact_((N-1)/N)^M").expect("series");
    assert!(exact.points.first().expect("pt").1 < 0.1);
    assert!(exact.last_y().expect("pt") > 0.99);
    // Limit and exact forms agree.
    let limit = fig.series("limit_1-exp(-c)").expect("series");
    for (a, b) in exact.points.iter().zip(&limit.points) {
        assert!((a.1 - b.1).abs() < 0.01);
    }
}

#[test]
fn fig05_fig06_conserve_credits() {
    let early = figures::fig05_convergence_early(Q).expect("runs");
    let late = figures::fig06_convergence_late(Q).expect("runs");
    assert!(!early.series.is_empty());
    assert!(!late.series.is_empty());
    // Total credits at every snapshot are conserved (c = 100 per peer).
    for s in early.series.iter().chain(&late.series) {
        let total: f64 = s.points.iter().map(|&(_, y)| y).sum();
        let expected = s.points.len() as f64 * 100.0;
        assert!(
            (total - expected).abs() < 1e-6,
            "{}: total {total} vs {expected}",
            s.label
        );
    }
}

#[test]
fn fig08_asymmetric_gini_is_high_for_all_wealth_levels() {
    let fig = figures::fig08_gini_evolution_asymmetric(Q).expect("runs");
    for s in &fig.series {
        let plateau = s.tail_mean(5).expect("points");
        assert!(plateau > 0.5, "{}: plateau {plateau:.3}", s.label);
    }
}

#[test]
fn fig10_dynamic_beats_static() {
    let fig = figures::fig10_dynamic_spending(Q).expect("runs");
    let fixed = fig.series("without_adjustment").expect("series");
    let dynamic = fig.series("with_adjustment").expect("series");
    assert!(
        dynamic.tail_mean(5).expect("pts") < fixed.tail_mean(5).expect("pts"),
        "dynamic spending should lower the Gini"
    );
}

#[test]
fn fig11_churn_lowers_gini() {
    let fig = figures::fig11_churn(Q).expect("runs");
    let static_g = fig
        .series("p1_static")
        .expect("series")
        .tail_mean(5)
        .expect("pts");
    let churn_g = fig
        .series("p1_lifespan1000_arr1")
        .expect("series")
        .tail_mean(5)
        .expect("pts");
    assert!(
        churn_g < static_g,
        "churn {churn_g:.3} should be below static {static_g:.3}"
    );
}

#[test]
fn streaming_stall_tracks_wealth() {
    let fig = figures::streaming_stall_vs_wealth(Q).expect("runs");
    assert_eq!(fig.series.len(), 6, "stall + gini per wealth level");
    let final_stall = |label: &str| {
        fig.series(label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .last_y()
            .expect("non-empty")
    };
    // The starved swarm stalls more than the rich one — bankruptcy
    // surfaces as playback quality.
    let poor = final_stall("stall_c2");
    let rich = final_stall("stall_c100");
    assert!(
        poor > rich + 0.05,
        "poor stall {poor:.3} should clearly exceed rich {rich:.3}"
    );
    for s in &fig.series {
        for &(_, y) in &s.points {
            assert!((0.0..=1.0).contains(&y), "{}: out of range {y}", s.label);
        }
    }
}

#[test]
fn ablations_run() {
    let a = figures::ablation_approx_vs_exact(Q).expect("runs");
    assert!(a.series("tv_distance").is_some());
    let b = figures::ablation_solvers(Q).expect("runs");
    // Cross-checks agree to near machine precision.
    for s in &b.series {
        for &(_, diff) in &s.points {
            assert!(diff < 1e-6, "{}: disagreement {diff}", s.label);
        }
    }
    let c = figures::ablation_queue_vs_protocol(Q).expect("runs");
    assert_eq!(c.series.len(), 2);
}

//! Pins the golden fixture files byte-for-byte.
//!
//! The point of this PR-level guard is subtle but central: the Fenwick
//! seller sampler and the timing-wheel scheduler were introduced with
//! the claim that they are *draw-compatible* with the linear walk and
//! the binary heap — every golden trajectory must reproduce without a
//! re-bless. `golden_trajectories.rs` and `scenario_golden.rs` verify
//! that simulations still *match* the fixtures; this test verifies the
//! fixtures themselves were not quietly regenerated (`SCRIP_BLESS=1`)
//! to paper over a divergence. If an intentional behaviour change ever
//! re-blesses a golden, this table must be updated in the same commit,
//! making the re-bless loud in review.
//!
//! Hashes are FNV-1a over the raw bytes; sizes are checked first so a
//! truncation shows up with a clearer message than a hash mismatch.

use std::path::Path;

/// (file name under `tests/golden/`, byte length, FNV-1a 64 of contents)
const PINNED: &[(&str, u64, u64)] = &[
    ("market_trajectories.txt", 2855, 0x34f594ec18d9bff5),
    ("scenario_fig07_full.csv", 33837, 0xaf633be24a1a4efc),
    ("scenario_fig07_reduced.csv", 3829, 0xc8e18e331392aca3),
    ("scenario_streaming_full.csv", 13902, 0xb8dc17344c7c1375),
    ("scenario_streaming_reduced.csv", 2848, 0xcc73759a16b5d917),
];

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn golden_fixtures_are_byte_identical_to_pinned_hashes() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for &(name, len, hash) in PINNED {
        let bytes = std::fs::read(dir.join(name))
            .unwrap_or_else(|e| panic!("golden fixture {name} unreadable: {e}"));
        assert_eq!(
            bytes.len() as u64,
            len,
            "golden fixture {name} changed size; if the re-bless was \
             intentional, update the PINNED table in fixture_guard.rs"
        );
        assert_eq!(
            fnv1a(&bytes),
            hash,
            "golden fixture {name} changed contents; if the re-bless was \
             intentional, update the PINNED table in fixture_guard.rs"
        );
    }
}

#[test]
fn no_unpinned_fixtures_appear() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut found: Vec<String> = std::fs::read_dir(&dir)
        .expect("golden dir readable")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    found.sort();
    let pinned: Vec<&str> = PINNED.iter().map(|&(n, _, _)| n).collect();
    assert_eq!(
        found, pinned,
        "tests/golden/ contents drifted from the PINNED table"
    );
}

//! Pins the golden fixture files byte-for-byte.
//!
//! The point of this PR-level guard is subtle but central: the Fenwick
//! seller sampler and the timing-wheel scheduler were introduced with
//! the claim that they are *draw-compatible* with the linear walk and
//! the binary heap — every golden trajectory must reproduce without a
//! re-bless. `golden_trajectories.rs` and `scenario_golden.rs` verify
//! that simulations still *match* the fixtures; this test verifies the
//! fixtures themselves were not quietly regenerated (`SCRIP_BLESS=1`)
//! to paper over a divergence. If an intentional behaviour change ever
//! re-blesses a golden, this table must be updated in the same commit,
//! making the re-bless loud in review.
//!
//! Hashes are FNV-1a over the raw bytes; sizes are checked first so a
//! truncation shows up with a clearer message than a hash mismatch.

use std::path::Path;

use scrip_core::market::{ChurnConfig, MarketConfig, TopologyKind};
use scrip_core::obs::Session;
use scrip_core::policy::{SpendingPolicy, TaxConfig};
use scrip_core::pricing::PricingConfig;
use scrip_des::{SimDuration, SimTime};

/// (file name under `tests/golden/`, byte length, FNV-1a 64 of contents)
const PINNED: &[(&str, u64, u64)] = &[
    ("market_trajectories.txt", 2855, 0x34f594ec18d9bff5),
    ("scenario_fig07_full.csv", 33837, 0xaf633be24a1a4efc),
    ("scenario_fig07_reduced.csv", 3829, 0xc8e18e331392aca3),
    ("scenario_streaming_full.csv", 13902, 0xb8dc17344c7c1375),
    ("scenario_streaming_reduced.csv", 2848, 0xcc73759a16b5d917),
];

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn golden_fixtures_are_byte_identical_to_pinned_hashes() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for &(name, len, hash) in PINNED {
        let bytes = std::fs::read(dir.join(name))
            .unwrap_or_else(|e| panic!("golden fixture {name} unreadable: {e}"));
        assert_eq!(
            bytes.len() as u64,
            len,
            "golden fixture {name} changed size; if the re-bless was \
             intentional, update the PINNED table in fixture_guard.rs"
        );
        assert_eq!(
            fnv1a(&bytes),
            hash,
            "golden fixture {name} changed contents; if the re-bless was \
             intentional, update the PINNED table in fixture_guard.rs"
        );
    }
}

/// `MarketView::state_digest()` pins for the golden queue-level
/// configurations (the same configs `golden_trajectories.rs` renders).
/// The digest is the fold the trace stack's boundary frames and the
/// bisector compare against, so these constants pin the *semantics* of
/// every recorded `SCRIPTRC` digest frame: if the digest algorithm or
/// the serialized state layout changes, every existing trace's digest
/// frames silently stop matching — this table makes that change loud.
/// Update it only together with a trace-format version bump or an
/// intentional behaviour change.
const DIGEST_PINS: &[(&str, u64)] = &[
    ("availability-feedback", 0xfe16_a9d2_1e66_310c),
    ("tax-churn-dynamic", 0xe74a_01e9_b280_6e2e),
];

/// Golden config A of `golden_trajectories.rs`.
fn digest_config_a() -> (MarketConfig, u64, u64) {
    let config = MarketConfig::new(60, 50)
        .asymmetric()
        .with_availability_feedback()
        .pricing(PricingConfig::SellerPoisson { mean: 2.0 })
        .sample_interval(SimDuration::from_secs(100));
    (config, 11, 2_000)
}

/// Golden config B of `golden_trajectories.rs`.
fn digest_config_b() -> (MarketConfig, u64, u64) {
    let config = MarketConfig::new(50, 40)
        .near_symmetric(0.2)
        .spending(SpendingPolicy::Dynamic { threshold: 60 })
        .tax(TaxConfig::new(0.2, 40).expect("valid tax"))
        .churn(ChurnConfig::new(0.25, 200.0, 8).expect("valid churn"))
        .topology(TopologyKind::Complete)
        .pricing(PricingConfig::ChunkPoisson { mean: 1.0 })
        .sample_interval(SimDuration::from_secs(100));
    (config, 23, 2_000)
}

#[test]
fn state_digests_match_pinned_values_for_golden_configs() {
    for (label, pinned) in DIGEST_PINS {
        let (config, seed, horizon_secs) = match *label {
            "availability-feedback" => digest_config_a(),
            "tax-churn-dynamic" => digest_config_b(),
            other => panic!("unknown digest pin label {other:?}"),
        };
        let mut session = Session::from_config(&config, seed).expect("builds");
        session.run_until(SimTime::from_secs(horizon_secs));
        let digest = session.view().state_digest();
        assert_eq!(
            digest, *pinned,
            "state digest for golden config {label:?} drifted from {pinned:#018x} to \
             {digest:#018x}; if the digest algorithm or state layout changed \
             intentionally, bump the trace format version and update DIGEST_PINS"
        );
    }
}

#[test]
fn no_unpinned_fixtures_appear() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut found: Vec<String> = std::fs::read_dir(&dir)
        .expect("golden dir readable")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    found.sort();
    let pinned: Vec<&str> = PINNED.iter().map(|&(n, _, _)| n).collect();
    assert_eq!(
        found, pinned,
        "tests/golden/ contents drifted from the PINNED table"
    );
}

//! # scrip — umbrella crate for the credit-incentivized P2P workspace
//!
//! Re-exports every workspace crate under one roof and owns the
//! root-level integration tests (`tests/`) and runnable `examples/`.
//!
//! The reproduction itself lives in the member crates:
//!
//! - [`core`] (`scrip-core`) — credit market model, simulators, policies
//! - [`queueing`] (`scrip-queueing`) — closed Jackson network theory
//! - [`des`] (`scrip-des`) — discrete-event simulation kernel
//! - [`topology`] (`scrip-topology`) — overlay graphs and churn
//! - [`econ`] (`scrip-econ`) — Gini / Lorenz wealth analytics
//! - [`streaming`] (`scrip-streaming`) — mesh-pull live-streaming swarm
//! - [`bench`](mod@bench) (`scrip-bench`) — figure regenerators, the
//!   scenario engine + parallel batch runner behind the `scrip-sim`
//!   CLI, and Criterion benches

#![forbid(unsafe_code)]

pub use scrip_bench as bench;
pub use scrip_core as core;
pub use scrip_des as des;
pub use scrip_econ as econ;
pub use scrip_queueing as queueing;
pub use scrip_streaming as streaming;
pub use scrip_topology as topology;

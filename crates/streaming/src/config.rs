//! Streaming-protocol configuration.

use scrip_des::SimDuration;

/// How a peer orders its missing chunks when issuing pull requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChunkStrategy {
    /// Request the chunk held by the fewest neighbors first — the classic
    /// mesh-pull heuristic that maximizes chunk diversity in the swarm.
    #[default]
    RarestFirst,
    /// Request the chunk with the earliest playback deadline first —
    /// favors continuity over diversity.
    DeadlineFirst,
}

/// How a buyer picks among the neighbors able to serve a chunk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProviderSelection {
    /// Uniformly at random among capable providers.
    #[default]
    Random,
    /// The capable provider with the fewest completed uploads so far
    /// (fair-rotation load balancing). In credit markets this spreads
    /// upload income across the swarm, which is what keeps peripheral
    /// peers solvent.
    LeastUploads,
    /// A weighted random pick: each capable provider is weighted by the
    /// number of useful chunks it currently offers the requester, plus
    /// one (so a provider with nothing new stays selectable as a
    /// fallback). This is the paper's availability-feedback routing rule
    /// applied in-protocol, inverted in O(log candidates) by a
    /// [`scrip_des::FenwickSampler`] with exact integer weights.
    AvailabilityWeighted,
}

/// Peer dynamics for a streaming swarm: Poisson arrivals, exponential
/// lifespans, joiners attaching to `attach_degree` random peers — the
/// chunk-level counterpart of the queue-level market's churn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamingChurn {
    /// Poisson arrival rate of new peers (peers/sec).
    pub arrival_rate: f64,
    /// Mean exponential lifespan of a peer (seconds).
    pub mean_lifespan: f64,
    /// Number of neighbors a joiner attaches to.
    pub attach_degree: usize,
}

impl StreamingChurn {
    /// Creates a validated churn description.
    ///
    /// # Errors
    /// Returns a message for non-positive rates or zero attach degree.
    pub fn new(
        arrival_rate: f64,
        mean_lifespan: f64,
        attach_degree: usize,
    ) -> Result<Self, String> {
        let churn = StreamingChurn {
            arrival_rate,
            mean_lifespan,
            attach_degree,
        };
        churn.validate()?;
        Ok(churn)
    }

    /// Checks the parameters.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.arrival_rate.is_finite() && self.arrival_rate > 0.0) {
            return Err(format!(
                "churn arrival rate must be > 0, got {}",
                self.arrival_rate
            ));
        }
        if !(self.mean_lifespan.is_finite() && self.mean_lifespan > 0.0) {
            return Err(format!(
                "churn mean lifespan must be > 0, got {}",
                self.mean_lifespan
            ));
        }
        if self.attach_degree == 0 {
            return Err("churn attach degree must be positive".into());
        }
        Ok(())
    }

    /// The expected steady-state swarm size, `arrival_rate × mean_lifespan`.
    pub fn expected_size(&self) -> f64 {
        self.arrival_rate * self.mean_lifespan
    }
}

/// Parameters of the mesh-pull streaming protocol.
///
/// Defaults are sized for the paper's experiments: a live stream where
/// each peer needs `chunk_rate` chunks per second for smooth playback,
/// over scale-free overlays of 500–1000 peers.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamingConfig {
    /// Stream chunk rate in chunks per second (the paper's streaming
    /// rate `r`).
    pub chunk_rate: f64,
    /// Buffer-map window width in chunks.
    pub window: usize,
    /// Interval between a peer's scheduling (pull) rounds.
    pub schedule_interval: SimDuration,
    /// Contiguous chunks a peer buffers before starting playback.
    pub startup_buffer: usize,
    /// Maximum outstanding chunk requests per peer.
    pub max_pending: usize,
    /// Maximum simultaneous uploads per peer.
    pub max_uploads: usize,
    /// Maximum simultaneous uploads by the source.
    pub source_uploads: usize,
    /// Number of peers directly fed by the source.
    pub source_degree: usize,
    /// Mean chunk transfer time in seconds (exponentially distributed).
    pub transfer_time_mean: f64,
    /// Chunk-request ordering strategy.
    pub strategy: ChunkStrategy,
    /// Provider (seller) selection rule.
    pub provider_selection: ProviderSelection,
    /// How many chunks behind the playback position a peer keeps
    /// available for uploading to others.
    pub serve_behind: usize,
    /// Interval between [`StreamEvent::Sample`] ticks, which record the
    /// swarm stall rate and let the trade policy sample its own metrics
    /// (e.g. the wealth Gini). [`None`] disables sampling.
    ///
    /// [`StreamEvent::Sample`]: crate::StreamEvent::Sample
    pub sample_interval: Option<SimDuration>,
    /// Peer dynamics (joins/leaves). [`None`] keeps the swarm static.
    pub churn: Option<StreamingChurn>,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            chunk_rate: 10.0,
            window: 128,
            schedule_interval: SimDuration::from_millis(500),
            startup_buffer: 10,
            max_pending: 12,
            max_uploads: 12,
            source_uploads: 40,
            source_degree: 12,
            transfer_time_mean: 0.15,
            strategy: ChunkStrategy::RarestFirst,
            provider_selection: ProviderSelection::Random,
            serve_behind: 32,
            sample_interval: None,
            churn: None,
        }
    }
}

impl StreamingConfig {
    /// A configuration paced for credit-market experiments: per-peer
    /// upload bandwidth is ~1.7× the stream rate (as for real broadband
    /// peers), so upload income is necessarily spread across the swarm
    /// instead of being monopolized by high-degree hubs with unbounded
    /// upload slots.
    ///
    /// With the default config a hub can upload ~80 chunks/s and absorbs
    /// the whole swarm's spending; with `market_paced` each peer serves
    /// at most `max_uploads / transfer_time_mean ≈ 1.7 × chunk_rate`, so
    /// at uniform prices incomes roughly match expenditures — the
    /// balanced regime the paper's Fig. 1 case 2 exhibits.
    ///
    /// # Panics
    /// Panics if `chunk_rate` is not positive and finite.
    pub fn market_paced(chunk_rate: f64) -> Self {
        assert!(
            chunk_rate.is_finite() && chunk_rate > 0.0,
            "chunk_rate must be > 0, got {chunk_rate}"
        );
        StreamingConfig {
            chunk_rate,
            window: 64,
            schedule_interval: SimDuration::from_secs_f64(0.5 / chunk_rate.max(1.0)),
            startup_buffer: 8,
            max_pending: 4,
            max_uploads: 1,
            source_uploads: 4,
            // The operator serves any requester (capacity-limited), as
            // deployed CDNs do; a fixed fed subset would enjoy a
            // persistent first-seller advantage and soak up all credits.
            source_degree: usize::MAX,
            transfer_time_mean: 0.6 / chunk_rate,
            strategy: ChunkStrategy::RarestFirst,
            provider_selection: ProviderSelection::LeastUploads,
            serve_behind: 24,
            sample_interval: None,
            churn: None,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.chunk_rate.is_finite() && self.chunk_rate > 0.0) {
            return Err(format!("chunk_rate must be > 0, got {}", self.chunk_rate));
        }
        if self.window == 0 {
            return Err("window must be positive".into());
        }
        if self.startup_buffer >= self.window {
            return Err(format!(
                "startup_buffer {} must be below window {}",
                self.startup_buffer, self.window
            ));
        }
        if self.serve_behind >= self.window {
            return Err(format!(
                "serve_behind {} must be below window {}",
                self.serve_behind, self.window
            ));
        }
        if self.max_pending == 0 || self.max_uploads == 0 || self.source_uploads == 0 {
            return Err("capacities must be positive".into());
        }
        if self.source_degree == 0 {
            return Err("source must feed at least one peer".into());
        }
        if !(self.transfer_time_mean.is_finite() && self.transfer_time_mean > 0.0) {
            return Err(format!(
                "transfer_time_mean must be > 0, got {}",
                self.transfer_time_mean
            ));
        }
        if self.schedule_interval.is_zero() {
            return Err("schedule_interval must be positive".into());
        }
        if self.sample_interval.is_some_and(|s| s.is_zero()) {
            return Err("sample_interval must be positive when set".into());
        }
        if let Some(churn) = &self.churn {
            churn.validate()?;
        }
        Ok(())
    }

    /// The playback period `1/chunk_rate`.
    pub fn playback_period(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.chunk_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        StreamingConfig::default().validate().expect("valid");
    }

    #[test]
    fn validation_catches_violations() {
        let defaults = StreamingConfig::default();
        let broken = [
            StreamingConfig {
                chunk_rate: 0.0,
                ..defaults.clone()
            },
            StreamingConfig {
                window: 0,
                ..defaults.clone()
            },
            StreamingConfig {
                startup_buffer: defaults.window,
                ..defaults.clone()
            },
            StreamingConfig {
                serve_behind: defaults.window + 1,
                ..defaults.clone()
            },
            StreamingConfig {
                max_pending: 0,
                ..defaults.clone()
            },
            StreamingConfig {
                source_degree: 0,
                ..defaults.clone()
            },
            StreamingConfig {
                transfer_time_mean: f64::NAN,
                ..defaults.clone()
            },
            StreamingConfig {
                schedule_interval: SimDuration::ZERO,
                ..defaults.clone()
            },
            StreamingConfig {
                sample_interval: Some(SimDuration::ZERO),
                ..defaults.clone()
            },
            StreamingConfig {
                churn: Some(StreamingChurn {
                    arrival_rate: 0.0,
                    mean_lifespan: 100.0,
                    attach_degree: 5,
                }),
                ..defaults.clone()
            },
        ];
        for c in broken {
            assert!(c.validate().is_err(), "{c:?} should fail validation");
        }
    }

    #[test]
    fn churn_validation() {
        assert!(StreamingChurn::new(0.0, 100.0, 5).is_err());
        assert!(StreamingChurn::new(1.0, 0.0, 5).is_err());
        assert!(StreamingChurn::new(1.0, 100.0, 0).is_err());
        let churn = StreamingChurn::new(0.5, 200.0, 8).expect("valid");
        assert!((churn.expected_size() - 100.0).abs() < 1e-9);
        let config = StreamingConfig {
            churn: Some(churn),
            sample_interval: Some(SimDuration::from_secs(10)),
            ..Default::default()
        };
        config.validate().expect("valid");
    }

    #[test]
    fn playback_period() {
        let c = StreamingConfig {
            chunk_rate: 4.0,
            ..Default::default()
        };
        assert_eq!(c.playback_period(), SimDuration::from_millis(250));
    }
}

//! The event-driven mesh-pull streaming system.
//!
//! ## Hot-path layout
//!
//! All per-peer protocol state is slot-indexed through one
//! [`PeerArena`] (`NodeId → u32` flat slot map, swap-remove on leave):
//! the [`PeerState`] vector and the source-fed flags are parallel `Vec`s
//! mirroring its insert/swap-remove discipline, neighbor sets are
//! borrowed straight from the graph's CSR rows
//! ([`Graph::neighbor_slice`]), and the per-round work lists (wanted
//! chunks, rarest-first keys, candidate providers) go through scratch
//! buffers kept warm across events — a steady-state chunk trade
//! allocates nothing. This mirrors the market simulator's architecture
//! (see the "Performance model" section of `docs/ARCHITECTURE.md`).

use std::collections::BTreeMap;

use scrip_des::dist::Exp;
use scrip_des::stats::TimeSeries;
use scrip_des::{
    DeliveryOutcome, FaultPlan, FaultSpec, FaultStats, FenwickSampler, Model, QueueProfile,
    Scheduler, SimDuration, SimRng, SimTime,
};
use scrip_topology::{Graph, NodeId, PeerArena};

use crate::config::{ChunkStrategy, ProviderSelection, StreamingConfig};
use crate::metrics::SystemReport;
use crate::peer::PeerState;
use crate::policy::TradePolicy;

/// Events driving the streaming protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamEvent {
    /// Kick-off: starts the source, every peer's scheduling loop, the
    /// sampling chain, and (when configured) churn. Schedule exactly
    /// once, at the desired stream start time.
    Bootstrap,
    /// The source emits its next chunk.
    SourceChunk,
    /// A peer runs one pull-scheduling round.
    Schedule(NodeId),
    /// A peer's playback deadline tick.
    Playback(NodeId),
    /// A peer-to-peer chunk transfer completes.
    PeerDelivery {
        /// Receiving peer.
        to: NodeId,
        /// Uploading peer.
        from: NodeId,
        /// Chunk sequence number.
        chunk: u64,
    },
    /// A source-to-peer chunk transfer completes.
    SourceDelivery {
        /// Receiving peer.
        to: NodeId,
        /// Chunk sequence number.
        chunk: u64,
    },
    /// A new peer joins the overlay, attaching to `attach_degree` random
    /// existing peers (churn support).
    Join {
        /// Number of neighbors the joiner connects to.
        attach_degree: usize,
    },
    /// A peer departs, dropping its edges and in-flight state.
    Leave(NodeId),
    /// A peer crashes abruptly (fault injection only): an unplanned
    /// departure scheduled by the [`FaultPlan`], counted apart from
    /// ordinary churn.
    Crash(NodeId),
    /// Periodic metrics tick: records the swarm stall rate and calls
    /// [`TradePolicy::sample`]. Scheduled by [`StreamEvent::Bootstrap`]
    /// when [`StreamingConfig::sample_interval`] is set.
    Sample,
}

/// The mesh-pull streaming system: a [`Model`] for the
/// [`scrip_des::Simulation`] kernel.
///
/// See the [crate-level documentation](crate) for the protocol and an
/// end-to-end example, and the [module docs](self) for the hot-path
/// data layout.
#[derive(Clone, Debug)]
pub struct StreamingSystem<T: TradePolicy> {
    config: StreamingConfig,
    graph: Graph,
    /// Live peers; parallel `Vec`s below are slot-indexed through it.
    arena: PeerArena,
    /// Slot-indexed protocol state.
    peers: Vec<PeerState>,
    /// Slot-indexed "directly fed by the source" flags.
    source_fed: Vec<bool>,
    source_active_uploads: usize,
    next_chunk: u64,
    policy: T,
    rng: SimRng,
    transfer_time: Exp,
    bootstrapped: bool,
    /// The deterministic fault oracle; present only when a spec with at
    /// least one positive rate was installed
    /// ([`StreamingSystem::with_faults`]), so the fault-free delivery
    /// path pays a single `is_some` branch. The plan draws from its own
    /// seed-derived stream, never from `rng`, so installing it does not
    /// perturb the protocol's randomness.
    fault_plan: Option<FaultPlan>,
    /// Injected-fault counters (all zero when faults are off). The
    /// streaming layer settles on delivery, so `retries`/`refunded`/
    /// `retry_depth` stay empty here: a failed chunk simply becomes
    /// wanted again and the pull loop re-requests it organically.
    fault_stats: FaultStats,
    /// `(t, stall rate)` samples (see [`StreamingSystem::stall_series`]
    /// for the exact definition).
    stall_series: TimeSeries,
    /// Scratch: missing chunks of the scheduling round (reused so the
    /// hot path never allocates in steady state).
    scratch_wanted: Vec<u64>,
    /// Scratch: `(provider count, chunk)` keys for rarest-first.
    scratch_keyed: Vec<(usize, u64)>,
    /// Scratch: candidate providers for one chunk.
    scratch_providers: Vec<NodeId>,
    /// Scratch: Fenwick tree for availability-weighted provider picks
    /// ([`crate::config::ProviderSelection::AvailabilityWeighted`]).
    scratch_sampler: FenwickSampler,
}

impl<T: TradePolicy> StreamingSystem<T> {
    /// Builds a streaming system over `graph` with the given protocol
    /// configuration and trade policy.
    ///
    /// # Errors
    /// Returns a message if the configuration is inconsistent or the
    /// graph is empty.
    pub fn new(
        graph: Graph,
        config: StreamingConfig,
        policy: T,
        mut rng: SimRng,
    ) -> Result<Self, String> {
        config.validate()?;
        if graph.node_count() == 0 {
            return Err("streaming needs at least one peer".into());
        }
        let ids: Vec<NodeId> = graph.node_ids().collect();
        let arena = PeerArena::from_ids(&ids);
        let peers: Vec<PeerState> = ids.iter().map(|_| PeerState::new(config.window)).collect();
        // The source feeds a random subset of peers.
        let mut shuffled = ids;
        rng.shuffle(&mut shuffled);
        let mut source_fed = vec![false; peers.len()];
        for &id in shuffled.iter().take(config.source_degree.min(peers.len())) {
            source_fed[arena.slot(id).expect("freshly slotted")] = true;
        }
        let transfer_time = Exp::new(1.0 / config.transfer_time_mean)
            .map_err(|e| format!("transfer time distribution: {e}"))?;
        Ok(StreamingSystem {
            config,
            graph,
            arena,
            peers,
            source_fed,
            source_active_uploads: 0,
            next_chunk: 0,
            policy,
            rng,
            transfer_time,
            bootstrapped: false,
            fault_plan: None,
            fault_stats: FaultStats::default(),
            stall_series: TimeSeries::new(),
            scratch_wanted: Vec::new(),
            scratch_keyed: Vec::new(),
            scratch_providers: Vec::new(),
            scratch_sampler: FenwickSampler::new(),
        })
    }

    /// Installs deterministic fault injection: dropped, defected, and
    /// delayed peer deliveries plus abrupt peer crashes, scheduled by a
    /// [`FaultPlan`] derived from `root_seed` (an all-zero spec installs
    /// nothing, keeping the run byte-identical to a fault-free one).
    ///
    /// Unlike the queue-level market, the streaming layer settles on
    /// delivery, so there is no escrow window: a drop moves no credits,
    /// a defection settles without goods, and recovery is organic — the
    /// failed chunk becomes wanted again and the pull scheduler
    /// re-requests it on its next round. Source deliveries are never
    /// faulted (faults model peer misbehavior, not the operator).
    ///
    /// # Errors
    /// Returns the message from [`FaultSpec::validate`].
    pub fn with_faults(mut self, spec: FaultSpec, root_seed: u64) -> Result<Self, String> {
        spec.validate()?;
        if spec.any_faults() {
            self.fault_plan = Some(FaultPlan::new(spec, root_seed)?);
        }
        Ok(self)
    }

    /// Whether a fault plan is active on this system.
    pub fn faults_enabled(&self) -> bool {
        self.fault_plan.is_some()
    }

    /// Injected-fault counters (all zero when faults are off).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// The protocol configuration.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// The overlay graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The trade policy (e.g. to read out market state after a run).
    pub fn policy(&self) -> &T {
        &self.policy
    }

    /// Mutable access to the trade policy.
    pub fn policy_mut(&mut self) -> &mut T {
        &mut self.policy
    }

    /// One peer's protocol state, if the peer is (still) in the overlay.
    pub fn peer(&self, id: NodeId) -> Option<&PeerState> {
        self.arena.slot(id).map(|slot| &self.peers[slot])
    }

    /// Iterates over `(id, state)` for all live peers in ascending ID
    /// order (assembled on demand; the hot path uses slot indexing).
    pub fn peers(&self) -> impl Iterator<Item = (NodeId, &PeerState)> {
        let mut pairs: Vec<(NodeId, usize)> = self
            .arena
            .ids()
            .iter()
            .enumerate()
            .map(|(slot, &id)| (id, slot))
            .collect();
        pairs.sort_unstable_by_key(|&(id, _)| id);
        pairs
            .into_iter()
            .map(move |(id, slot)| (id, &self.peers[slot]))
    }

    /// Number of live peers.
    pub fn peer_count(&self) -> usize {
        self.arena.len()
    }

    /// Sequence number one past the newest chunk the source has emitted.
    pub fn stream_head(&self) -> u64 {
        self.next_chunk
    }

    /// Whether `id` is directly fed by the source.
    pub fn is_source_fed(&self, id: NodeId) -> bool {
        self.arena
            .slot(id)
            .is_some_and(|slot| self.source_fed[slot])
    }

    /// The peers directly fed by the source, ascending (assembled on
    /// demand).
    pub fn source_neighbors(&self) -> Vec<NodeId> {
        let mut fed: Vec<NodeId> = self
            .arena
            .ids()
            .iter()
            .zip(&self.source_fed)
            .filter(|&(_, &fed)| fed)
            .map(|(&id, _)| id)
            .collect();
        fed.sort_unstable();
        fed
    }

    /// The recorded `(t, stall rate)` series — one sample per
    /// [`StreamEvent::Sample`] tick. The stall rate averages, over live
    /// peers, each peer's missed-deadline fraction — with a peer that
    /// has not yet started playback counting as fully stalled, so a
    /// credit-starved swarm whose peers never leave the startup screen
    /// reads as stalled rather than as suspiciously healthy.
    pub fn stall_series(&self) -> &TimeSeries {
        &self.stall_series
    }

    /// Visits every `(peer, neighbor, useful chunks the neighbor offers
    /// the peer)` triple with positive weight, straight off the arena's
    /// slot-indexed state — no per-call allocation. This is the paper's
    /// rule that "credit transfer probabilities to neighbors are decided
    /// by their data chunks availability during streaming"; the
    /// in-protocol weighted pick
    /// ([`crate::config::ProviderSelection::AvailabilityWeighted`])
    /// applies the same weights per candidate set on the hot path.
    pub fn for_each_availability_weight(&self, mut visit: impl FnMut(NodeId, NodeId, f64)) {
        for (slot, &id) in self.arena.ids().iter().enumerate() {
            let state = &self.peers[slot];
            for &nb in self.graph.neighbor_slice(id).unwrap_or(&[]) {
                if let Some(nb_slot) = self.arena.slot(nb) {
                    let useful = state.buffer.useful_from(&self.peers[nb_slot].buffer);
                    if useful > 0 {
                        visit(id, nb, useful as f64);
                    }
                }
            }
        }
    }

    /// Per-peer availability weights, assembled into an owned map: for
    /// each peer `i`, the list of `(neighbor j, useful chunks j
    /// currently offers i)`.
    ///
    /// This is a **cold-path diagnostic** for offline analysis
    /// ([`for_each_availability_weight`](Self::for_each_availability_weight)
    /// is the allocation-free form): it builds a fresh `BTreeMap` with
    /// one `Vec` per peer on every call, so it must never appear inside
    /// the simulation loop.
    pub fn availability_weights(&self) -> BTreeMap<NodeId, Vec<(NodeId, f64)>> {
        let mut out: BTreeMap<NodeId, Vec<(NodeId, f64)>> = BTreeMap::new();
        for (id, _) in self.peers() {
            out.insert(id, Vec::new());
        }
        self.for_each_availability_weight(|id, nb, w| {
            out.entry(id).or_default().push((nb, w));
        });
        out
    }

    /// Aggregated protocol metrics at instant `now`.
    pub fn report(&self, now: SimTime) -> SystemReport {
        SystemReport::compute(self, now)
    }

    /// The steady-state event-queue population this swarm sustains: per
    /// peer one scheduling loop, one playback timer, and up to
    /// `max_pending` in-flight deliveries; plus the source chunk clock,
    /// the sampling chain, and (under churn) one leave timer per peer
    /// and the arrival process. Size the simulation's queue with this
    /// ([`scrip_des::Simulation::with_capacity`]) to keep scheduling
    /// reallocation-free.
    pub fn queue_capacity_hint(&self) -> usize {
        let per_peer = 2 + self.config.max_pending + usize::from(self.config.churn.is_some());
        self.arena.len() * per_peer + 3
    }

    /// The event-queue backend this swarm wants: a timing wheel sized
    /// for the steady-state population from
    /// [`StreamingSystem::queue_capacity_hint`], with the scheduling
    /// interval as the typical lookahead (the per-peer pull loop
    /// dominates the queue; transfer completions and playback ticks land
    /// within a few intervals of it).
    pub fn queue_profile(&self) -> QueueProfile {
        QueueProfile::Wheel {
            expected_events: self.queue_capacity_hint(),
            typical_delay: self.config.schedule_interval,
        }
    }

    /// The range of chunks a peer currently wants: from its playback
    /// position (or the live edge for not-yet-started peers) up to the
    /// pull horizon.
    fn desired_range(config: &StreamingConfig, next_chunk: u64, state: &PeerState) -> (u64, u64) {
        let lookahead = (config.window - config.serve_behind) as u64;
        match state.playback_pos {
            Some(pos) => (pos, (pos + lookahead).min(next_chunk)),
            None => {
                let anchor = next_chunk.saturating_sub(2 * config.startup_buffer as u64);
                (anchor, next_chunk)
            }
        }
    }

    /// One pull-scheduling round — the streaming hot path. All borrows
    /// are split at field level so the graph's neighbor slice, the
    /// slot-indexed peer states, the RNG, and the scratch buffers can
    /// be used together without any per-round allocation.
    fn handle_schedule(
        &mut self,
        id: NodeId,
        now: SimTime,
        scheduler: &mut Scheduler<StreamEvent>,
    ) {
        let StreamingSystem {
            config,
            graph,
            arena,
            peers,
            source_fed,
            source_active_uploads,
            next_chunk,
            policy,
            rng,
            transfer_time,
            scratch_wanted: wanted,
            scratch_keyed: keyed,
            scratch_providers: providers,
            scratch_sampler: sampler,
            ..
        } = self;
        let Some(slot) = arena.slot(id) else {
            return; // departed
        };
        let (from, to) = Self::desired_range(config, *next_chunk, &peers[slot]);
        let is_source_fed = source_fed[slot];

        // Missing, not-in-flight chunks in the desired range.
        wanted.clear();
        {
            let state = &peers[slot];
            wanted
                .extend((from..to).filter(|&c| !state.buffer.has(c) && !state.pending.contains(c)));
        }
        let capacity = config.max_pending.saturating_sub(peers[slot].pending.len());
        if capacity == 0 || wanted.is_empty() {
            scheduler.schedule_after(config.schedule_interval, StreamEvent::Schedule(id));
            return;
        }
        let neighbors = graph.neighbor_slice(id).unwrap_or(&[]);

        // Provider counts for rarest-first ordering.
        if config.strategy == ChunkStrategy::RarestFirst {
            keyed.clear();
            keyed.extend(wanted.iter().map(|&c| {
                let providers = neighbors
                    .iter()
                    .filter(|&&nb| {
                        arena
                            .slot(nb)
                            .map(|s| peers[s].buffer.has(c))
                            .unwrap_or(false)
                    })
                    .count();
                (providers, c)
            }));
            keyed.sort_unstable();
            wanted.clear();
            wanted.extend(keyed.iter().map(|&(_, c)| c));
        } // DeadlineFirst: already ascending by chunk id.

        let mut issued = 0usize;
        for &chunk in wanted.iter() {
            if issued >= capacity {
                break;
            }
            // Candidate peer providers with a free upload slot.
            providers.clear();
            providers.extend(neighbors.iter().copied().filter(|&nb| {
                arena
                    .slot(nb)
                    .map(|s| peers[s].buffer.has(chunk) && peers[s].can_upload(config.max_uploads))
                    .unwrap_or(false)
            }));
            rng.shuffle(providers);
            match config.provider_selection {
                ProviderSelection::Random => {}
                ProviderSelection::LeastUploads => {
                    // Fair rotation: least-served provider first (shuffle
                    // above breaks ties randomly thanks to stable sorting).
                    providers.sort_by_key(|&nb| {
                        arena.slot(nb).map(|s| peers[s].stats.uploaded).unwrap_or(0)
                    });
                }
                ProviderSelection::AvailabilityWeighted => {
                    // Paper Sec. III: "credit transfer probabilities to
                    // neighbors are decided by their data chunks
                    // availability during streaming". Weight each
                    // candidate by the useful chunks it currently offers
                    // this peer, plus one so empty providers stay
                    // selectable; integer weights keep the Fenwick
                    // arithmetic exact. One weighted pick moves to the
                    // front; the rest stay shuffled as authorize
                    // fallbacks.
                    if providers.len() > 1 {
                        sampler.clear();
                        for &nb in providers.iter() {
                            let useful = arena
                                .slot(nb)
                                .map(|s| peers[slot].buffer.useful_from(&peers[s].buffer))
                                .unwrap_or(0);
                            sampler.push(useful as f64 + 1.0);
                        }
                        sampler.build();
                        let target = rng.uniform_f64() * sampler.total();
                        let k = sampler.pick(target);
                        providers.swap(0, k);
                    }
                }
            }

            let mut served = false;
            let mut denied_any = false;
            for &provider in providers.iter() {
                if policy.authorize(id, provider, chunk, now) {
                    let provider_slot = arena.slot(provider).expect("provider is live");
                    peers[provider_slot].active_uploads += 1;
                    peers[slot].pending.insert(chunk);
                    let delay = SimDuration::from_secs_f64(transfer_time.sample(rng));
                    scheduler.schedule_after(
                        delay,
                        StreamEvent::PeerDelivery {
                            to: id,
                            from: provider,
                            chunk,
                        },
                    );
                    served = true;
                    issued += 1;
                    break;
                }
                denied_any = true;
            }
            if served {
                continue;
            }
            if denied_any {
                peers[slot].stats.denied += 1;
            }
            // Fall back to the source when directly fed by it.
            if is_source_fed
                && chunk < *next_chunk
                && *source_active_uploads < config.source_uploads
            {
                if policy.authorize_source(id, chunk, now) {
                    *source_active_uploads += 1;
                    peers[slot].pending.insert(chunk);
                    let delay = SimDuration::from_secs_f64(transfer_time.sample(rng));
                    scheduler.schedule_after(delay, StreamEvent::SourceDelivery { to: id, chunk });
                    issued += 1;
                } else {
                    peers[slot].stats.denied += 1;
                }
            }
        }
        scheduler.schedule_after(config.schedule_interval, StreamEvent::Schedule(id));
    }

    fn maybe_start_playback(&mut self, slot: usize, scheduler: &mut Scheduler<StreamEvent>) {
        let period = self.config.playback_period();
        let startup = self.config.startup_buffer;
        let state = &mut self.peers[slot];
        if !state.started() && state.buffer.held() >= startup {
            state.playback_pos = state.buffer.first_held();
            let id = self.arena.ids()[slot];
            scheduler.schedule_after(period, StreamEvent::Playback(id));
        }
    }

    fn handle_playback(&mut self, id: NodeId, scheduler: &mut Scheduler<StreamEvent>) {
        let serve_behind = self.config.serve_behind as u64;
        let next_chunk = self.next_chunk;
        let period = self.config.playback_period();
        let Some(slot) = self.arena.slot(id) else {
            return; // departed
        };
        let state = &mut self.peers[slot];
        let Some(pos) = state.playback_pos else {
            return;
        };
        if pos < next_chunk {
            // A deadline actually passes; at the live edge we just wait.
            if state.buffer.has(pos) {
                state.stats.played += 1;
            } else {
                state.stats.missed += 1;
            }
            state.playback_pos = Some(pos + 1);
            let new_base = (pos + 1).saturating_sub(serve_behind);
            state.buffer.advance_to(new_base);
        }
        scheduler.schedule_after(period, StreamEvent::Playback(id));
    }

    fn exp_delay(&mut self, rate: f64) -> SimDuration {
        let u = self.rng.uniform_open01();
        SimDuration::from_secs_f64(-u.ln() / rate.max(1e-12))
    }

    fn handle_join(
        &mut self,
        attach_degree: usize,
        now: SimTime,
        scheduler: &mut Scheduler<StreamEvent>,
    ) {
        let existing: Vec<NodeId> = self.graph.node_ids().collect();
        let new = self.graph.add_node();
        let want = attach_degree.min(existing.len());
        let mut pool = existing;
        for i in 0..want {
            let j = self.rng.index(pool.len() - i) + i;
            pool.swap(i, j);
        }
        for &nb in pool.iter().take(want) {
            self.graph.add_edge(new, nb).expect("distinct live nodes");
        }
        self.arena.insert(new);
        self.peers.push(PeerState::new(self.config.window));
        self.source_fed.push(false);
        self.policy.on_join(new, now);
        if let Some(plan) = &mut self.fault_plan {
            if let Some(d) = plan.crash_delay(now) {
                scheduler.schedule_after(d, StreamEvent::Crash(new));
            }
        }
        scheduler.schedule_after(self.config.schedule_interval, StreamEvent::Schedule(new));
        if let Some(churn) = self.config.churn {
            let lifespan = self.exp_delay(1.0 / churn.mean_lifespan);
            scheduler.schedule_after(lifespan, StreamEvent::Leave(new));
            let arrival = self.exp_delay(churn.arrival_rate);
            scheduler.schedule_after(
                arrival,
                StreamEvent::Join {
                    attach_degree: churn.attach_degree,
                },
            );
        }
    }

    fn handle_leave(&mut self, id: NodeId, now: SimTime) {
        if !self.graph.has_node(id) {
            return;
        }
        self.graph.remove_node(id).expect("checked live");
        let removal = self.arena.remove(id).expect("graph and arena agree");
        self.peers.swap_remove(removal.slot);
        self.source_fed.swap_remove(removal.slot);
        self.policy.on_leave(id, now);
        // In-flight deliveries to/from this peer are dropped on arrival by
        // the liveness guards in the delivery handlers.
    }

    fn handle_sample(&mut self, now: SimTime, scheduler: &mut Scheduler<StreamEvent>) {
        let Some(interval) = self.config.sample_interval else {
            return;
        };
        let n = self.peers.len();
        if n > 0 {
            // A peer that has not started playback is fully stalled (it
            // is stuck at the startup screen — exactly the fate of a
            // broke peer in a credit-starved swarm); a started peer
            // contributes its missed-deadline fraction.
            let mean_stall: f64 = self
                .peers
                .iter()
                .map(|s| {
                    if s.started() {
                        1.0 - s.stats.continuity()
                    } else {
                        1.0
                    }
                })
                .sum::<f64>()
                / n as f64;
            self.stall_series.record(now, mean_stall);
        }
        self.policy.sample(now);
        scheduler.schedule_after(interval, StreamEvent::Sample);
    }
}

impl<T: TradePolicy> Model for StreamingSystem<T> {
    type Event = StreamEvent;

    fn handle(&mut self, now: SimTime, event: StreamEvent, scheduler: &mut Scheduler<StreamEvent>) {
        match event {
            StreamEvent::Bootstrap => {
                if self.bootstrapped {
                    return;
                }
                self.bootstrapped = true;
                scheduler.reserve(self.queue_capacity_hint());
                scheduler.schedule_after(SimDuration::ZERO, StreamEvent::SourceChunk);
                // Stagger peers' scheduling phases to avoid a thundering
                // herd. Slot order == graph construction order here (no
                // churn can have happened before bootstrap).
                let ids: Vec<NodeId> = self.arena.ids().to_vec();
                let interval_us = self.config.schedule_interval.as_micros();
                for &id in &ids {
                    let phase =
                        SimDuration::from_micros(self.rng.index(interval_us as usize) as u64);
                    scheduler.schedule_after(phase, StreamEvent::Schedule(id));
                }
                if self.config.sample_interval.is_some() {
                    scheduler.schedule_after(SimDuration::ZERO, StreamEvent::Sample);
                }
                if let Some(plan) = &mut self.fault_plan {
                    // Crash draws in slot order (== construction order at
                    // bootstrap), one per peer, per the plan's contract.
                    for &id in &ids {
                        if let Some(d) = plan.crash_delay(now) {
                            scheduler.schedule_after(d, StreamEvent::Crash(id));
                        }
                    }
                }
                if let Some(churn) = self.config.churn {
                    for &id in &ids {
                        let d = self.exp_delay(1.0 / churn.mean_lifespan);
                        scheduler.schedule_after(d, StreamEvent::Leave(id));
                    }
                    let d = self.exp_delay(churn.arrival_rate);
                    scheduler.schedule_after(
                        d,
                        StreamEvent::Join {
                            attach_degree: churn.attach_degree,
                        },
                    );
                }
            }
            StreamEvent::SourceChunk => {
                self.next_chunk += 1;
                scheduler.schedule_after(self.config.playback_period(), StreamEvent::SourceChunk);
            }
            StreamEvent::Schedule(id) => self.handle_schedule(id, now, scheduler),
            StreamEvent::Playback(id) => self.handle_playback(id, scheduler),
            StreamEvent::PeerDelivery { to, from, chunk } => {
                let outcome = match &mut self.fault_plan {
                    Some(plan) => plan.delivery_outcome(now),
                    None => DeliveryOutcome::Delivered,
                };
                if outcome == DeliveryOutcome::Delayed {
                    // The transfer stays in flight — provider slot busy,
                    // chunk pending — and the completion re-fires after
                    // the penalty (re-drawn then, so longer delay chains
                    // stay possible but geometrically rare).
                    self.fault_stats.delayed += 1;
                    let penalty = self
                        .fault_plan
                        .as_mut()
                        .expect("delayed outcome implies a plan")
                        .delay_penalty();
                    scheduler
                        .schedule_after(penalty, StreamEvent::PeerDelivery { to, from, chunk });
                    return;
                }
                if let Some(provider_slot) = self.arena.slot(from) {
                    let provider = &mut self.peers[provider_slot];
                    provider.active_uploads = provider.active_uploads.saturating_sub(1);
                    if outcome == DeliveryOutcome::Delivered {
                        provider.stats.uploaded += 1;
                    }
                }
                if let Some(slot) = self.arena.slot(to) {
                    let state = &mut self.peers[slot];
                    state.pending.remove(chunk);
                    match outcome {
                        DeliveryOutcome::Delivered => {
                            state.buffer.insert(chunk);
                            state.stats.received_from_peers += 1;
                            self.policy.settle(to, from, chunk, now);
                            if self.fault_plan.is_some() {
                                self.fault_stats.delivered += 1;
                            }
                            self.maybe_start_playback(slot, scheduler);
                        }
                        DeliveryOutcome::Dropped => {
                            // Lost in transit: settlement is on delivery,
                            // so no credits move; the chunk becomes
                            // wanted again on the next pull round.
                            self.fault_stats.dropped += 1;
                        }
                        DeliveryOutcome::Defected => {
                            // The seller takes payment and never uploads:
                            // settle without inserting the chunk.
                            self.fault_stats.defected += 1;
                            self.policy.settle(to, from, chunk, now);
                        }
                        DeliveryOutcome::Delayed => unreachable!("rescheduled above"),
                    }
                }
            }
            StreamEvent::SourceDelivery { to, chunk } => {
                self.source_active_uploads = self.source_active_uploads.saturating_sub(1);
                if let Some(slot) = self.arena.slot(to) {
                    let state = &mut self.peers[slot];
                    state.pending.remove(chunk);
                    state.buffer.insert(chunk);
                    state.stats.received_from_source += 1;
                    self.policy.settle_source(to, chunk, now);
                    self.maybe_start_playback(slot, scheduler);
                }
            }
            StreamEvent::Join { attach_degree } => self.handle_join(attach_degree, now, scheduler),
            StreamEvent::Leave(id) => self.handle_leave(id, now),
            StreamEvent::Crash(id) => {
                if self.arena.slot(id).is_some() {
                    self.fault_stats.crashes += 1;
                    self.handle_leave(id, now);
                }
            }
            StreamEvent::Sample => self.handle_sample(now, scheduler),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamingChurn;
    use crate::policy::{CountingPolicy, FreeTrade};
    use scrip_des::Simulation;
    use scrip_topology::generators::{self, ScaleFreeConfig};

    fn small_system(seed: u64) -> StreamingSystem<FreeTrade> {
        let mut rng = SimRng::seed_from_u64(seed);
        let graph = generators::scale_free(&ScaleFreeConfig::new(40).expect("cfg"), &mut rng)
            .expect("graph");
        StreamingSystem::new(graph, StreamingConfig::default(), FreeTrade, rng).expect("system")
    }

    fn run(
        system: StreamingSystem<FreeTrade>,
        secs: u64,
    ) -> Simulation<StreamingSystem<FreeTrade>> {
        let mut sim = Simulation::new(system);
        sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(secs));
        sim
    }

    #[test]
    fn construction_validates() {
        let rng = SimRng::seed_from_u64(1);
        let empty = Graph::new();
        assert!(StreamingSystem::new(empty, StreamingConfig::default(), FreeTrade, rng).is_err());
        let rng = SimRng::seed_from_u64(1);
        let bad = StreamingConfig {
            window: 0,
            ..Default::default()
        };
        assert!(StreamingSystem::new(generators::complete(4), bad, FreeTrade, rng).is_err());
    }

    #[test]
    fn source_emits_at_chunk_rate() {
        let sim = run(small_system(2), 10);
        // 10 chunks/sec for 10 s (first at t=0) -> 101 chunks.
        assert_eq!(sim.model().stream_head(), 101);
    }

    #[test]
    fn peers_start_and_play() {
        let sim = run(small_system(3), 120);
        let started = sim.model().peers().filter(|(_, s)| s.started()).count();
        assert!(
            started > 35,
            "only {started}/40 peers started playback after 120 s"
        );
        let report = sim.model().report(sim.now());
        assert!(
            report.mean_continuity > 0.6,
            "mean continuity {}",
            report.mean_continuity
        );
    }

    #[test]
    fn chunks_propagate_beyond_source_neighbors() {
        let sim = run(small_system(4), 120);
        let model = sim.model();
        let indirect_received: u64 = model
            .peers()
            .filter(|&(id, _)| !model.is_source_fed(id))
            .map(|(_, s)| s.stats.received())
            .sum();
        assert!(
            indirect_received > 100,
            "mesh relaying is not happening: {indirect_received}"
        );
        let peer_uploads: u64 = model.peers().map(|(_, s)| s.stats.uploaded).sum();
        assert!(peer_uploads > 100, "peer uploads {peer_uploads}");
    }

    #[test]
    fn policy_settlements_match_peer_receives() {
        let mut rng = SimRng::seed_from_u64(5);
        let graph = generators::scale_free(&ScaleFreeConfig::new(30).expect("cfg"), &mut rng)
            .expect("graph");
        let system = StreamingSystem::new(
            graph,
            StreamingConfig::default(),
            CountingPolicy::default(),
            rng,
        )
        .expect("system");
        let mut sim = Simulation::new(system);
        sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(60));
        let model = sim.model();
        let received: u64 = model
            .peers()
            .map(|(_, s)| s.stats.received_from_peers)
            .sum();
        assert_eq!(model.policy().settled, received);
        assert!(model.policy().authorized >= model.policy().settled);
    }

    #[test]
    fn availability_weights_are_consistent() {
        let sim = run(small_system(6), 60);
        let model = sim.model();
        let weights = model.availability_weights();
        assert_eq!(weights.len(), model.peer_count());
        for (id, list) in &weights {
            for &(nb, w) in list {
                assert!(model.graph().has_edge(*id, nb), "weight on non-edge");
                assert!(w > 0.0);
            }
        }
    }

    #[test]
    fn join_and_leave_keep_system_running() {
        let mut sim = run(small_system(7), 30);
        let before = sim.model().peer_count();
        sim.schedule(sim.now(), StreamEvent::Join { attach_degree: 8 });
        let victim = sim.model().peers().next().map(|(id, _)| id).expect("some");
        sim.schedule(sim.now(), StreamEvent::Leave(victim));
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(sim.model().peer_count(), before);
        assert!(sim.model().peer(victim).is_none());
        // The joiner eventually receives chunks.
        let max_id = sim.model().peers().map(|(id, _)| id).max().expect("some");
        let joiner = sim.model().peer(max_id).expect("live");
        assert!(joiner.stats.received() > 0, "joiner never received a chunk");
    }

    #[test]
    fn churn_config_drives_joins_and_leaves() {
        let mut rng = SimRng::seed_from_u64(17);
        let graph = generators::scale_free(&ScaleFreeConfig::new(40).expect("cfg"), &mut rng)
            .expect("graph");
        let config = StreamingConfig {
            churn: Some(StreamingChurn::new(0.4, 100.0, 8).expect("valid")),
            ..Default::default()
        };
        let system = StreamingSystem::new(graph, config, FreeTrade, rng).expect("system");
        let mut sim = Simulation::new(system);
        sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(300));
        let model = sim.model();
        // Arrivals happened: IDs beyond the initial 40 exist.
        let max_id = model.peers().map(|(id, _)| id.raw()).max().expect("some");
        assert!(
            max_id >= 40,
            "no joiner was ever admitted (max id {max_id})"
        );
        // Expected population 0.4 × 100 = 40; allow a generous band.
        let n = model.peer_count();
        assert!((15..=90).contains(&n), "population drifted to {n}");
        // The swarm keeps streaming through the churn.
        let report = model.report(sim.now());
        assert!(report.total_uploads > 100, "{report}");
    }

    #[test]
    fn sampling_records_stall_series() {
        let mut rng = SimRng::seed_from_u64(18);
        let graph = generators::scale_free(&ScaleFreeConfig::new(30).expect("cfg"), &mut rng)
            .expect("graph");
        let config = StreamingConfig {
            sample_interval: Some(SimDuration::from_secs(10)),
            ..Default::default()
        };
        let system = StreamingSystem::new(graph, config, FreeTrade, rng).expect("system");
        let mut sim = Simulation::new(system);
        sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(120));
        let series = sim.model().stall_series();
        assert!(series.len() >= 12, "samples {}", series.len());
        for &(_, stall) in series.samples() {
            assert!((0.0..=1.0).contains(&stall), "stall {stall}");
        }
        // A healthy free-trade swarm stalls rarely once warmed up.
        let last = series.samples().last().expect("non-empty").1;
        assert!(last < 0.5, "stall rate {last}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(small_system(42), 60);
        let b = run(small_system(42), 60);
        let ra = a.model().report(a.now());
        let rb = b.model().report(b.now());
        assert_eq!(ra, rb);
    }

    #[test]
    fn bootstrap_is_idempotent() {
        let mut sim = run(small_system(8), 5);
        let head_before = sim.model().stream_head();
        // A second bootstrap must not double the source.
        sim.schedule(sim.now(), StreamEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(10));
        let head_after = sim.model().stream_head();
        assert_eq!(head_after, head_before + 50);
    }

    /// The zero-alloc claim for the trade loop, observed from the
    /// outside: every reusable buffer the hot path touches reaches a
    /// fixed capacity during warmup and never grows again.
    #[test]
    fn trade_loop_buffers_stop_growing_after_warmup() {
        let mut sim = run(small_system(9), 60); // warmup
        let caps = |m: &StreamingSystem<FreeTrade>| {
            (
                m.scratch_wanted.capacity(),
                m.scratch_keyed.capacity(),
                m.scratch_providers.capacity(),
            )
        };
        let warm = caps(sim.model());
        let heap_cap = sim.scheduler().capacity();
        let events_before = sim.stats().events_processed;
        sim.run_until(SimTime::from_secs(300));
        assert!(
            sim.stats().events_processed > events_before + 50_000,
            "workload too small: {} events",
            sim.stats().events_processed
        );
        assert_eq!(caps(sim.model()), warm, "scratch buffers grew");
        assert_eq!(
            sim.scheduler().capacity(),
            heap_cap,
            "event heap grew during steady-state streaming"
        );
        assert!(warm.0 > 0 && warm.2 > 0, "scratch buffers were exercised");
    }

    fn faulty_spec() -> FaultSpec {
        FaultSpec {
            drop_rate: 0.15,
            defect_rate: 0.05,
            delay_rate: 0.05,
            crash_fraction: 0.2,
            onset: SimTime::from_secs(20),
            crash_spread: SimDuration::from_secs(50),
            ..FaultSpec::default()
        }
    }

    #[test]
    fn fault_injection_drops_defects_delays_and_crashes() {
        let build = |spec: Option<FaultSpec>| {
            let mut rng = SimRng::seed_from_u64(33);
            let graph = generators::scale_free(&ScaleFreeConfig::new(40).expect("cfg"), &mut rng)
                .expect("graph");
            let system = StreamingSystem::new(graph, StreamingConfig::default(), FreeTrade, rng)
                .expect("system");
            match spec {
                Some(s) => system.with_faults(s, 33).expect("valid"),
                None => system,
            }
        };
        let faulted = run(build(Some(faulty_spec())), 240);
        let stats = faulted.model().fault_stats().clone();
        assert!(stats.dropped > 0, "{stats:?}");
        assert!(stats.defected > 0, "{stats:?}");
        assert!(stats.delayed > 0, "{stats:?}");
        assert!(stats.delivered > 0, "{stats:?}");
        assert!(stats.crashes > 0, "{stats:?}");
        assert_eq!(
            faulted.model().peer_count(),
            40 - stats.crashes as usize,
            "crashes are abrupt departures"
        );
        // Same seed, same fault schedule, same run.
        let again = run(build(Some(faulty_spec())), 240);
        assert_eq!(again.model().fault_stats(), &stats);
        assert_eq!(
            again.model().report(again.now()),
            faulted.model().report(faulted.now())
        );
        // The swarm recovers: failed chunks are re-requested by the pull
        // loop, so peers keep receiving despite the fault load.
        let received: u64 = faulted
            .model()
            .peers()
            .map(|(_, s)| s.stats.received())
            .sum();
        assert!(received > 100, "swarm collapsed: {received} chunks");
    }

    #[test]
    fn zero_fault_spec_is_byte_identical_to_no_faults() {
        let build = |install_zero_spec: bool| {
            let mut rng = SimRng::seed_from_u64(34);
            let graph = generators::scale_free(&ScaleFreeConfig::new(30).expect("cfg"), &mut rng)
                .expect("graph");
            let system = StreamingSystem::new(graph, StreamingConfig::default(), FreeTrade, rng)
                .expect("system");
            if install_zero_spec {
                system.with_faults(FaultSpec::default(), 34).expect("valid")
            } else {
                system
            }
        };
        let zeroed = build(true);
        assert!(!zeroed.faults_enabled(), "all-zero spec installs no plan");
        let clean = run(build(false), 120);
        let zeroed = run(zeroed, 120);
        assert_eq!(
            clean.model().report(clean.now()),
            zeroed.model().report(zeroed.now())
        );
        assert_eq!(zeroed.model().fault_stats(), &FaultStats::default());
    }

    /// The opt-in availability-weighted provider pick: deterministic
    /// under a fixed seed, actually changes routing relative to the
    /// default uniform pick, and keeps the Fenwick scratch at a fixed
    /// size once warm (the weighted pick stays allocation-free).
    #[test]
    fn availability_weighted_provider_pick_works() {
        let build = |selection: ProviderSelection| {
            let mut rng = SimRng::seed_from_u64(23);
            let graph = generators::scale_free(&ScaleFreeConfig::new(40).expect("cfg"), &mut rng)
                .expect("graph");
            let config = StreamingConfig {
                provider_selection: selection,
                ..Default::default()
            };
            StreamingSystem::new(graph, config, FreeTrade, rng).expect("system")
        };
        let weighted_a = run(build(ProviderSelection::AvailabilityWeighted), 120);
        let weighted_b = run(build(ProviderSelection::AvailabilityWeighted), 120);
        let uniform = run(build(ProviderSelection::Random), 120);
        let report_a = weighted_a.model().report(weighted_a.now());
        assert_eq!(
            report_a,
            weighted_b.model().report(weighted_b.now()),
            "weighted pick is not deterministic"
        );
        assert!(
            report_a.total_uploads > 100,
            "weighted swarm is not streaming: {report_a}"
        );
        // Same seed, same overlay — a different per-upload distribution
        // proves the weighted branch actually routed differently.
        let uploads = |sim: &Simulation<StreamingSystem<FreeTrade>>| {
            let mut v: Vec<u64> = sim.model().peers().map(|(_, s)| s.stats.uploaded).collect();
            v.sort_unstable();
            v
        };
        assert_ne!(
            uploads(&weighted_a),
            uploads(&uniform),
            "availability weighting never changed a provider pick"
        );
        // The Fenwick scratch was exercised and reaches a fixed size.
        let mut warm = weighted_a;
        let cap = warm.model().scratch_sampler.capacity();
        assert!(cap > 0, "sampler scratch never used");
        warm.run_until(SimTime::from_secs(240));
        assert_eq!(
            warm.model().scratch_sampler.capacity(),
            cap,
            "sampler scratch grew after warmup"
        );
    }
}

//! The event-driven mesh-pull streaming system.

use std::collections::{BTreeMap, BTreeSet};

use scrip_des::dist::Exp;
use scrip_des::{Model, Scheduler, SimDuration, SimRng, SimTime};
use scrip_topology::{Graph, NodeId};

use crate::config::{ChunkStrategy, StreamingConfig};
use crate::metrics::SystemReport;
use crate::peer::PeerState;
use crate::policy::TradePolicy;

/// Events driving the streaming protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamEvent {
    /// Kick-off: starts the source and every peer's scheduling loop.
    /// Schedule exactly once, at the desired stream start time.
    Bootstrap,
    /// The source emits its next chunk.
    SourceChunk,
    /// A peer runs one pull-scheduling round.
    Schedule(NodeId),
    /// A peer's playback deadline tick.
    Playback(NodeId),
    /// A peer-to-peer chunk transfer completes.
    PeerDelivery {
        /// Receiving peer.
        to: NodeId,
        /// Uploading peer.
        from: NodeId,
        /// Chunk sequence number.
        chunk: u64,
    },
    /// A source-to-peer chunk transfer completes.
    SourceDelivery {
        /// Receiving peer.
        to: NodeId,
        /// Chunk sequence number.
        chunk: u64,
    },
    /// A new peer joins the overlay, attaching to `attach_degree` random
    /// existing peers (churn support).
    Join {
        /// Number of neighbors the joiner connects to.
        attach_degree: usize,
    },
    /// A peer departs, dropping its edges and in-flight state.
    Leave(NodeId),
}

/// The mesh-pull streaming system: a [`Model`] for the
/// [`scrip_des::Simulation`] kernel.
///
/// See the [crate-level documentation](crate) for the protocol and an
/// end-to-end example.
#[derive(Clone, Debug)]
pub struct StreamingSystem<T: TradePolicy> {
    config: StreamingConfig,
    graph: Graph,
    peers: BTreeMap<NodeId, PeerState>,
    source_neighbors: BTreeSet<NodeId>,
    source_active_uploads: usize,
    next_chunk: u64,
    policy: T,
    rng: SimRng,
    transfer_time: Exp,
    bootstrapped: bool,
}

impl<T: TradePolicy> StreamingSystem<T> {
    /// Builds a streaming system over `graph` with the given protocol
    /// configuration and trade policy.
    ///
    /// # Errors
    /// Returns a message if the configuration is inconsistent or the
    /// graph is empty.
    pub fn new(
        graph: Graph,
        config: StreamingConfig,
        policy: T,
        mut rng: SimRng,
    ) -> Result<Self, String> {
        config.validate()?;
        if graph.node_count() == 0 {
            return Err("streaming needs at least one peer".into());
        }
        let peers: BTreeMap<NodeId, PeerState> = graph
            .node_ids()
            .map(|id| (id, PeerState::new(config.window)))
            .collect();
        // The source feeds a random subset of peers.
        let mut ids: Vec<NodeId> = graph.node_ids().collect();
        rng.shuffle(&mut ids);
        let source_neighbors: BTreeSet<NodeId> = ids
            .into_iter()
            .take(config.source_degree.min(peers.len()))
            .collect();
        let transfer_time = Exp::new(1.0 / config.transfer_time_mean)
            .map_err(|e| format!("transfer time distribution: {e}"))?;
        Ok(StreamingSystem {
            config,
            graph,
            peers,
            source_neighbors,
            source_active_uploads: 0,
            next_chunk: 0,
            policy,
            rng,
            transfer_time,
            bootstrapped: false,
        })
    }

    /// The protocol configuration.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// The overlay graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The trade policy (e.g. to read out market state after a run).
    pub fn policy(&self) -> &T {
        &self.policy
    }

    /// Mutable access to the trade policy.
    pub fn policy_mut(&mut self) -> &mut T {
        &mut self.policy
    }

    /// One peer's protocol state, if the peer is (still) in the overlay.
    pub fn peer(&self, id: NodeId) -> Option<&PeerState> {
        self.peers.get(&id)
    }

    /// Iterates over `(id, state)` for all live peers in ascending ID
    /// order.
    pub fn peers(&self) -> impl Iterator<Item = (NodeId, &PeerState)> {
        self.peers.iter().map(|(&id, s)| (id, s))
    }

    /// Number of live peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Sequence number one past the newest chunk the source has emitted.
    pub fn stream_head(&self) -> u64 {
        self.next_chunk
    }

    /// The peers directly fed by the source.
    pub fn source_neighbors(&self) -> &BTreeSet<NodeId> {
        &self.source_neighbors
    }

    /// Per-peer availability weights for credit routing: for each peer
    /// `i`, the list of `(neighbor j, useful chunks j currently offers
    /// i)`. This is the paper's rule that "credit transfer probabilities
    /// to neighbors are decided by their data chunks availability during
    /// streaming".
    pub fn availability_weights(&self) -> BTreeMap<NodeId, Vec<(NodeId, f64)>> {
        let mut out = BTreeMap::new();
        for (&id, state) in &self.peers {
            let mut weights = Vec::new();
            if let Some(nbrs) = self.graph.neighbors(id) {
                for nb in nbrs {
                    if let Some(nb_state) = self.peers.get(&nb) {
                        let useful = state.buffer.useful_from(&nb_state.buffer);
                        if useful > 0 {
                            weights.push((nb, useful as f64));
                        }
                    }
                }
            }
            out.insert(id, weights);
        }
        out
    }

    /// Aggregated protocol metrics at instant `now`.
    pub fn report(&self, now: SimTime) -> SystemReport {
        SystemReport::compute(self, now)
    }

    fn sample_transfer(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(self.transfer_time.sample(&mut self.rng))
    }

    /// The range of chunks a peer currently wants: from its playback
    /// position (or the live edge for not-yet-started peers) up to the
    /// pull horizon.
    fn desired_range(&self, state: &PeerState) -> (u64, u64) {
        let lookahead = (self.config.window - self.config.serve_behind) as u64;
        match state.playback_pos {
            Some(pos) => (pos, (pos + lookahead).min(self.next_chunk)),
            None => {
                let anchor = self
                    .next_chunk
                    .saturating_sub(2 * self.config.startup_buffer as u64);
                (anchor, self.next_chunk)
            }
        }
    }

    fn handle_schedule(
        &mut self,
        id: NodeId,
        now: SimTime,
        scheduler: &mut Scheduler<StreamEvent>,
    ) {
        if !self.peers.contains_key(&id) {
            return; // departed
        }
        let (from, to) = {
            let state = &self.peers[&id];
            self.desired_range(state)
        };
        let neighbors: Vec<NodeId> = self
            .graph
            .neighbors(id)
            .map(|it| it.collect())
            .unwrap_or_default();
        let is_source_fed = self.source_neighbors.contains(&id);

        // Missing, not-in-flight chunks in the desired range.
        let mut wanted: Vec<u64> = {
            let state = &self.peers[&id];
            (from..to)
                .filter(|&c| !state.buffer.has(c) && !state.pending.contains(&c))
                .collect()
        };
        let capacity = {
            let state = &self.peers[&id];
            self.config.max_pending.saturating_sub(state.pending.len())
        };
        if capacity == 0 || wanted.is_empty() {
            scheduler.schedule_after(self.config.schedule_interval, StreamEvent::Schedule(id));
            return;
        }

        // Provider counts for rarest-first ordering.
        if self.config.strategy == ChunkStrategy::RarestFirst {
            let mut keyed: Vec<(usize, u64)> = wanted
                .iter()
                .map(|&c| {
                    let providers = neighbors
                        .iter()
                        .filter(|nb| self.peers.get(nb).map(|s| s.buffer.has(c)).unwrap_or(false))
                        .count();
                    (providers, c)
                })
                .collect();
            keyed.sort_unstable();
            wanted = keyed.into_iter().map(|(_, c)| c).collect();
        } // DeadlineFirst: already ascending by chunk id.

        let mut issued = 0usize;
        for chunk in wanted {
            if issued >= capacity {
                break;
            }
            // Candidate peer providers with a free upload slot.
            let mut providers: Vec<NodeId> = neighbors
                .iter()
                .copied()
                .filter(|nb| {
                    self.peers
                        .get(nb)
                        .map(|s| s.buffer.has(chunk) && s.can_upload(self.config.max_uploads))
                        .unwrap_or(false)
                })
                .collect();
            self.rng.shuffle(&mut providers);
            if self.config.provider_selection == crate::config::ProviderSelection::LeastUploads {
                // Fair rotation: least-served provider first (shuffle above
                // breaks ties randomly thanks to stable sorting).
                providers
                    .sort_by_key(|nb| self.peers.get(nb).map(|s| s.stats.uploaded).unwrap_or(0));
            }

            let mut served = false;
            let mut denied_any = false;
            for provider in providers {
                if self.policy.authorize(id, provider, chunk, now) {
                    self.peers
                        .get_mut(&provider)
                        .expect("provider is live")
                        .active_uploads += 1;
                    self.peers
                        .get_mut(&id)
                        .expect("peer is live")
                        .pending
                        .insert(chunk);
                    let delay = self.sample_transfer();
                    scheduler.schedule_after(
                        delay,
                        StreamEvent::PeerDelivery {
                            to: id,
                            from: provider,
                            chunk,
                        },
                    );
                    served = true;
                    issued += 1;
                    break;
                }
                denied_any = true;
            }
            if served {
                continue;
            }
            if denied_any {
                self.peers.get_mut(&id).expect("peer is live").stats.denied += 1;
            }
            // Fall back to the source when directly fed by it.
            if is_source_fed
                && chunk < self.next_chunk
                && self.source_active_uploads < self.config.source_uploads
            {
                if self.policy.authorize_source(id, chunk, now) {
                    self.source_active_uploads += 1;
                    self.peers
                        .get_mut(&id)
                        .expect("peer is live")
                        .pending
                        .insert(chunk);
                    let delay = self.sample_transfer();
                    scheduler.schedule_after(delay, StreamEvent::SourceDelivery { to: id, chunk });
                    issued += 1;
                } else {
                    self.peers.get_mut(&id).expect("peer is live").stats.denied += 1;
                }
            }
        }
        scheduler.schedule_after(self.config.schedule_interval, StreamEvent::Schedule(id));
    }

    fn maybe_start_playback(&mut self, id: NodeId, scheduler: &mut Scheduler<StreamEvent>) {
        let period = self.config.playback_period();
        let startup = self.config.startup_buffer;
        if let Some(state) = self.peers.get_mut(&id) {
            if !state.started() && state.buffer.held() >= startup {
                state.playback_pos = state.buffer.first_held();
                scheduler.schedule_after(period, StreamEvent::Playback(id));
            }
        }
    }

    fn handle_playback(&mut self, id: NodeId, scheduler: &mut Scheduler<StreamEvent>) {
        let serve_behind = self.config.serve_behind as u64;
        let next_chunk = self.next_chunk;
        let period = self.config.playback_period();
        if let Some(state) = self.peers.get_mut(&id) {
            let Some(pos) = state.playback_pos else {
                return;
            };
            if pos < next_chunk {
                // A deadline actually passes; at the live edge we just wait.
                if state.buffer.has(pos) {
                    state.stats.played += 1;
                } else {
                    state.stats.missed += 1;
                }
                state.playback_pos = Some(pos + 1);
                let new_base = (pos + 1).saturating_sub(serve_behind);
                state.buffer.advance_to(new_base);
            }
            scheduler.schedule_after(period, StreamEvent::Playback(id));
        }
    }

    fn handle_join(&mut self, attach_degree: usize, scheduler: &mut Scheduler<StreamEvent>) {
        let existing: Vec<NodeId> = self.graph.node_ids().collect();
        let new = self.graph.add_node();
        let want = attach_degree.min(existing.len());
        let mut pool = existing;
        for i in 0..want {
            let j = self.rng.index(pool.len() - i) + i;
            pool.swap(i, j);
        }
        for &nb in pool.iter().take(want) {
            self.graph.add_edge(new, nb).expect("distinct live nodes");
        }
        self.peers.insert(new, PeerState::new(self.config.window));
        scheduler.schedule_after(self.config.schedule_interval, StreamEvent::Schedule(new));
    }

    fn handle_leave(&mut self, id: NodeId) {
        if self.graph.has_node(id) {
            self.graph.remove_node(id).expect("checked live");
        }
        self.peers.remove(&id);
        self.source_neighbors.remove(&id);
        // In-flight deliveries to/from this peer are dropped on arrival by
        // the liveness guards in the delivery handlers.
    }
}

impl<T: TradePolicy> Model for StreamingSystem<T> {
    type Event = StreamEvent;

    fn handle(&mut self, now: SimTime, event: StreamEvent, scheduler: &mut Scheduler<StreamEvent>) {
        match event {
            StreamEvent::Bootstrap => {
                if self.bootstrapped {
                    return;
                }
                self.bootstrapped = true;
                scheduler.schedule_after(SimDuration::ZERO, StreamEvent::SourceChunk);
                // Stagger peers' scheduling phases to avoid a thundering herd.
                let ids: Vec<NodeId> = self.peers.keys().copied().collect();
                let interval_us = self.config.schedule_interval.as_micros();
                for id in ids {
                    let phase =
                        SimDuration::from_micros(self.rng.index(interval_us as usize) as u64);
                    scheduler.schedule_after(phase, StreamEvent::Schedule(id));
                }
            }
            StreamEvent::SourceChunk => {
                self.next_chunk += 1;
                scheduler.schedule_after(self.config.playback_period(), StreamEvent::SourceChunk);
            }
            StreamEvent::Schedule(id) => self.handle_schedule(id, now, scheduler),
            StreamEvent::Playback(id) => self.handle_playback(id, scheduler),
            StreamEvent::PeerDelivery { to, from, chunk } => {
                if let Some(provider) = self.peers.get_mut(&from) {
                    provider.active_uploads = provider.active_uploads.saturating_sub(1);
                    provider.stats.uploaded += 1;
                }
                let receiver_alive = self.peers.contains_key(&to);
                if receiver_alive {
                    {
                        let state = self.peers.get_mut(&to).expect("checked");
                        state.pending.remove(&chunk);
                        state.buffer.insert(chunk);
                        state.stats.received_from_peers += 1;
                    }
                    self.policy.settle(to, from, chunk, now);
                    self.maybe_start_playback(to, scheduler);
                }
            }
            StreamEvent::SourceDelivery { to, chunk } => {
                self.source_active_uploads = self.source_active_uploads.saturating_sub(1);
                if let Some(state) = self.peers.get_mut(&to) {
                    state.pending.remove(&chunk);
                    state.buffer.insert(chunk);
                    state.stats.received_from_source += 1;
                    self.policy.settle_source(to, chunk, now);
                    self.maybe_start_playback(to, scheduler);
                }
            }
            StreamEvent::Join { attach_degree } => self.handle_join(attach_degree, scheduler),
            StreamEvent::Leave(id) => self.handle_leave(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CountingPolicy, FreeTrade};
    use scrip_des::Simulation;
    use scrip_topology::generators::{self, ScaleFreeConfig};

    fn small_system(seed: u64) -> StreamingSystem<FreeTrade> {
        let mut rng = SimRng::seed_from_u64(seed);
        let graph = generators::scale_free(&ScaleFreeConfig::new(40).expect("cfg"), &mut rng)
            .expect("graph");
        StreamingSystem::new(graph, StreamingConfig::default(), FreeTrade, rng).expect("system")
    }

    fn run(
        system: StreamingSystem<FreeTrade>,
        secs: u64,
    ) -> Simulation<StreamingSystem<FreeTrade>> {
        let mut sim = Simulation::new(system);
        sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(secs));
        sim
    }

    #[test]
    fn construction_validates() {
        let rng = SimRng::seed_from_u64(1);
        let empty = Graph::new();
        assert!(StreamingSystem::new(empty, StreamingConfig::default(), FreeTrade, rng).is_err());
        let rng = SimRng::seed_from_u64(1);
        let bad = StreamingConfig {
            window: 0,
            ..Default::default()
        };
        assert!(StreamingSystem::new(generators::complete(4), bad, FreeTrade, rng).is_err());
    }

    #[test]
    fn source_emits_at_chunk_rate() {
        let sim = run(small_system(2), 10);
        // 10 chunks/sec for 10 s (first at t=0) -> 101 chunks.
        assert_eq!(sim.model().stream_head(), 101);
    }

    #[test]
    fn peers_start_and_play() {
        let sim = run(small_system(3), 120);
        let started = sim.model().peers().filter(|(_, s)| s.started()).count();
        assert!(
            started > 35,
            "only {started}/40 peers started playback after 120 s"
        );
        let report = sim.model().report(sim.now());
        assert!(
            report.mean_continuity > 0.6,
            "mean continuity {}",
            report.mean_continuity
        );
    }

    #[test]
    fn chunks_propagate_beyond_source_neighbors() {
        let sim = run(small_system(4), 120);
        let model = sim.model();
        let indirect_received: u64 = model
            .peers()
            .filter(|(id, _)| !model.source_neighbors().contains(id))
            .map(|(_, s)| s.stats.received())
            .sum();
        assert!(
            indirect_received > 100,
            "mesh relaying is not happening: {indirect_received}"
        );
        let peer_uploads: u64 = model.peers().map(|(_, s)| s.stats.uploaded).sum();
        assert!(peer_uploads > 100, "peer uploads {peer_uploads}");
    }

    #[test]
    fn policy_settlements_match_peer_receives() {
        let mut rng = SimRng::seed_from_u64(5);
        let graph = generators::scale_free(&ScaleFreeConfig::new(30).expect("cfg"), &mut rng)
            .expect("graph");
        let system = StreamingSystem::new(
            graph,
            StreamingConfig::default(),
            CountingPolicy::default(),
            rng,
        )
        .expect("system");
        let mut sim = Simulation::new(system);
        sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(60));
        let model = sim.model();
        let received: u64 = model
            .peers()
            .map(|(_, s)| s.stats.received_from_peers)
            .sum();
        assert_eq!(model.policy().settled, received);
        assert!(model.policy().authorized >= model.policy().settled);
    }

    #[test]
    fn availability_weights_are_consistent() {
        let sim = run(small_system(6), 60);
        let model = sim.model();
        let weights = model.availability_weights();
        assert_eq!(weights.len(), model.peer_count());
        for (id, list) in &weights {
            for &(nb, w) in list {
                assert!(model.graph().has_edge(*id, nb), "weight on non-edge");
                assert!(w > 0.0);
            }
        }
    }

    #[test]
    fn join_and_leave_keep_system_running() {
        let mut sim = run(small_system(7), 30);
        let before = sim.model().peer_count();
        sim.schedule(sim.now(), StreamEvent::Join { attach_degree: 8 });
        let victim = sim.model().peers().next().map(|(id, _)| id).expect("some");
        sim.schedule(sim.now(), StreamEvent::Leave(victim));
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(sim.model().peer_count(), before);
        assert!(!sim.model().peers.contains_key(&victim));
        // The joiner eventually receives chunks.
        let max_id = sim.model().peers().map(|(id, _)| id).max().expect("some");
        let joiner = sim.model().peer(max_id).expect("live");
        assert!(joiner.stats.received() > 0, "joiner never received a chunk");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(small_system(42), 60);
        let b = run(small_system(42), 60);
        let ra = a.model().report(a.now());
        let rb = b.model().report(b.now());
        assert_eq!(ra, rb);
    }

    #[test]
    fn bootstrap_is_idempotent() {
        let mut sim = run(small_system(8), 5);
        let head_before = sim.model().stream_head();
        // A second bootstrap must not double the source.
        sim.schedule(sim.now(), StreamEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(10));
        let head_after = sim.model().stream_head();
        assert_eq!(head_after, head_before + 50);
    }
}

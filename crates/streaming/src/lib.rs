//! # scrip-streaming — mesh-pull P2P live streaming
//!
//! The protocol substrate for the `scrip` reproduction of Qiu et al.,
//! *"Exploring the Sustainability of Credit-incentivized Peer-to-Peer
//! Content Distribution"* (ICDCSW 2012).
//!
//! The paper validates its queueing-network theory on "a state-of-the-art
//! mesh-based P2P live streaming system … based on a representative P2P
//! streaming system, UUSee" (Sec. VI). UUSee itself is closed-source, so
//! this crate implements the standard mesh-pull design that UUSee and its
//! academic descriptions share:
//!
//! * a **source** emits a live stream as a sequence of chunks at a fixed
//!   chunk rate;
//! * each peer keeps a **buffer map** — a sliding window of held chunks
//!   around its playback position ([`BufferMap`]);
//! * on a periodic **scheduling tick**, a peer requests missing chunks
//!   from neighbors that hold them (rarest-first or deadline-first,
//!   [`ChunkStrategy`]), subject to the provider's concurrent-upload
//!   capacity;
//! * chunk transfers take random time; on arrival the chunk becomes
//!   available to downstream neighbors (the "mesh" effect);
//! * playback advances at the chunk rate; a missing chunk at its deadline
//!   is skipped and counted against **playback continuity**.
//!
//! Credit trading is injected through the [`TradePolicy`] trait: before a
//! peer-to-peer transfer starts, the policy authorizes it (e.g. "does the
//! buyer have enough credits?"), and on completion it settles payment.
//! [`FreeTrade`] is the no-op policy; the `scrip-core` crate supplies the
//! credit-market policy that reproduces the paper's experiments.
//!
//! ## Example
//!
//! ```
//! use scrip_des::{SimTime, Simulation};
//! use scrip_streaming::{FreeTrade, StreamEvent, StreamingConfig, StreamingSystem};
//! use scrip_topology::generators::{self, ScaleFreeConfig};
//! use scrip_des::SimRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = SimRng::seed_from_u64(7);
//! let graph = generators::scale_free(&ScaleFreeConfig::new(60)?, &mut rng)?;
//! let system = StreamingSystem::new(graph, StreamingConfig::default(), FreeTrade, rng)?;
//! let mut sim = Simulation::new(system);
//! sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
//! sim.run_until(SimTime::from_secs(120));
//! let report = sim.model().report(sim.now());
//! assert!(report.mean_continuity > 0.5, "continuity {}", report.mean_continuity);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod config;
pub mod metrics;
pub mod peer;
pub mod policy;
pub mod system;

pub use chunk::BufferMap;
pub use config::{ChunkStrategy, ProviderSelection, StreamingChurn, StreamingConfig};
pub use metrics::{PeerReport, SystemReport};
pub use peer::{PeerState, PendingSet};
pub use policy::{FreeTrade, TradePolicy};
pub use system::{StreamEvent, StreamingSystem};

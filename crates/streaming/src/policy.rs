//! The trade-authorization hook that couples streaming to the credit
//! market.
//!
//! The paper's protocol transfers credits in the reverse direction of
//! every peer-to-peer chunk transfer. The streaming simulator stays
//! currency-agnostic by delegating the two relevant moments to a
//! [`TradePolicy`]:
//!
//! 1. **authorize** — before a transfer starts: may this buyer purchase
//!    this chunk from this seller? (A broke peer's request is refused —
//!    this is exactly how wealth condensation degrades streaming
//!    performance.)
//! 2. **settle** — after the chunk arrives: move the credits.
//!
//! The `scrip-core` crate implements the paper's credit market on top of
//! this trait; [`FreeTrade`] is the policy-free baseline.

use scrip_des::SimTime;
use scrip_topology::NodeId;

/// Hooks called around every peer-to-peer chunk transfer.
///
/// Source-to-peer transfers never consult the policy: the stream
/// operator seeds content for free, as in deployed systems.
pub trait TradePolicy {
    /// Whether `buyer` may purchase `chunk` from `seller` right now.
    ///
    /// Returning `false` refuses the transfer (the buyer will look for
    /// another provider or retry later).
    fn authorize(&mut self, buyer: NodeId, seller: NodeId, chunk: u64, now: SimTime) -> bool;

    /// Settles payment after `chunk` has been delivered.
    ///
    /// Implementations must tolerate a settlement for a trade whose
    /// buyer's balance changed since authorization (e.g. by capping the
    /// payment), because transfers take simulated time.
    fn settle(&mut self, buyer: NodeId, seller: NodeId, chunk: u64, now: SimTime);

    /// Whether `buyer` may purchase `chunk` directly from the source.
    ///
    /// The default is `true` (a free-seeding operator). Credit-market
    /// policies typically charge for source downloads too and recycle
    /// the income — otherwise source-fed peers earn from relaying
    /// without ever spending, becoming credit sinks that drain the whole
    /// economy.
    fn authorize_source(&mut self, _buyer: NodeId, _chunk: u64, _now: SimTime) -> bool {
        true
    }

    /// Settles a source-to-peer delivery. Default: no payment.
    fn settle_source(&mut self, _buyer: NodeId, _chunk: u64, _now: SimTime) {}

    /// A peer joined the swarm (churn). Credit-market policies endow the
    /// joiner's wallet and register it with the pricing model here.
    /// Default: no-op.
    fn on_join(&mut self, _peer: NodeId, _now: SimTime) {}

    /// A peer left the swarm (churn). Credit-market policies burn the
    /// departing wallet here ("takes away its credits in possession").
    /// Default: no-op.
    fn on_leave(&mut self, _peer: NodeId, _now: SimTime) {}

    /// A periodic sampling tick (see
    /// [`StreamingConfig::sample_interval`]). Credit-market policies
    /// record their wealth-Gini series here. Default: no-op.
    ///
    /// [`StreamingConfig::sample_interval`]: crate::StreamingConfig::sample_interval
    fn sample(&mut self, _now: SimTime) {}
}

/// The no-currency policy: every trade is authorized and settlement is a
/// no-op. Used for protocol-only experiments and as the baseline against
/// credit-constrained runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FreeTrade;

impl TradePolicy for FreeTrade {
    fn authorize(&mut self, _buyer: NodeId, _seller: NodeId, _chunk: u64, _now: SimTime) -> bool {
        true
    }

    fn settle(&mut self, _buyer: NodeId, _seller: NodeId, _chunk: u64, _now: SimTime) {}
}

/// A counting policy for tests and instrumentation: authorizes
/// everything, recording how many authorizations and settlements
/// happened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountingPolicy {
    /// Number of authorize calls.
    pub authorized: u64,
    /// Number of settle calls.
    pub settled: u64,
}

impl TradePolicy for CountingPolicy {
    fn authorize(&mut self, _buyer: NodeId, _seller: NodeId, _chunk: u64, _now: SimTime) -> bool {
        self.authorized += 1;
        true
    }

    fn settle(&mut self, _buyer: NodeId, _seller: NodeId, _chunk: u64, _now: SimTime) {
        self.settled += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_trade_always_authorizes() {
        let mut p = FreeTrade;
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        assert!(p.authorize(a, b, 42, SimTime::ZERO));
        p.settle(a, b, 42, SimTime::ZERO);
    }

    #[test]
    fn counting_policy_counts() {
        let mut p = CountingPolicy::default();
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        assert!(p.authorize(a, b, 1, SimTime::ZERO));
        assert!(p.authorize(a, b, 2, SimTime::ZERO));
        p.settle(a, b, 1, SimTime::ZERO);
        assert_eq!(p.authorized, 2);
        assert_eq!(p.settled, 1);
    }
}

//! Aggregated streaming-quality metrics.

use scrip_des::SimTime;
use scrip_topology::NodeId;

use crate::policy::TradePolicy;
use crate::system::StreamingSystem;

/// Per-peer streaming report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeerReport {
    /// The peer.
    pub id: NodeId,
    /// Playback continuity (fraction of deadlines met).
    pub continuity: f64,
    /// Total chunks received.
    pub received: u64,
    /// Chunks uploaded to others.
    pub uploaded: u64,
    /// Requests denied by the trade policy.
    pub denied: u64,
    /// Whether playback has started.
    pub started: bool,
}

/// System-wide streaming report.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemReport {
    /// Per-peer details in ascending peer-ID order.
    pub peers: Vec<PeerReport>,
    /// Mean playback continuity over all peers.
    pub mean_continuity: f64,
    /// Worst playback continuity.
    pub min_continuity: f64,
    /// Fraction of peers whose playback has started.
    pub started_fraction: f64,
    /// Mean chunk download rate (chunks/sec) over the run.
    pub mean_download_rate: f64,
    /// Total peer-to-peer uploads.
    pub total_uploads: u64,
    /// Total trade denials.
    pub total_denied: u64,
}

impl SystemReport {
    /// Computes the report from the live system state at instant `now`.
    pub fn compute<T: TradePolicy>(system: &StreamingSystem<T>, now: SimTime) -> Self {
        let elapsed = now.as_secs_f64().max(1e-9);
        let mut peers = Vec::with_capacity(system.peer_count());
        let mut sum_continuity = 0.0;
        let mut min_continuity = f64::INFINITY;
        let mut started = 0usize;
        let mut total_received = 0u64;
        let mut total_uploads = 0u64;
        let mut total_denied = 0u64;
        for (id, state) in system.peers() {
            let continuity = state.stats.continuity();
            sum_continuity += continuity;
            min_continuity = min_continuity.min(continuity);
            if state.started() {
                started += 1;
            }
            total_received += state.stats.received();
            total_uploads += state.stats.uploaded;
            total_denied += state.stats.denied;
            peers.push(PeerReport {
                id,
                continuity,
                received: state.stats.received(),
                uploaded: state.stats.uploaded,
                denied: state.stats.denied,
                started: state.started(),
            });
        }
        let n = peers.len().max(1) as f64;
        SystemReport {
            mean_continuity: sum_continuity / n,
            min_continuity: if min_continuity.is_finite() {
                min_continuity
            } else {
                1.0
            },
            started_fraction: started as f64 / n,
            mean_download_rate: total_received as f64 / n / elapsed,
            total_uploads,
            total_denied,
            peers,
        }
    }
}

impl std::fmt::Display for SystemReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peers={} continuity[mean/min]={:.3}/{:.3} started={:.0}% dl_rate={:.2} chunks/s uploads={} denied={}",
            self.peers.len(),
            self.mean_continuity,
            self.min_continuity,
            self.started_fraction * 100.0,
            self.mean_download_rate,
            self.total_uploads,
            self.total_denied
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamingConfig;
    use crate::policy::FreeTrade;
    use crate::system::StreamEvent;
    use scrip_des::{SimRng, Simulation};
    use scrip_topology::generators;

    #[test]
    fn report_on_fresh_system_is_benign() {
        let rng = SimRng::seed_from_u64(1);
        let system = StreamingSystem::new(
            generators::complete(5),
            StreamingConfig::default(),
            FreeTrade,
            rng,
        )
        .expect("system");
        let report = system.report(SimTime::ZERO);
        assert_eq!(report.peers.len(), 5);
        assert_eq!(report.mean_continuity, 1.0);
        assert_eq!(report.started_fraction, 0.0);
        assert_eq!(report.total_uploads, 0);
    }

    #[test]
    fn report_after_run_and_display() {
        let rng = SimRng::seed_from_u64(2);
        let system = StreamingSystem::new(
            generators::complete(20),
            StreamingConfig::default(),
            FreeTrade,
            rng,
        )
        .expect("system");
        let mut sim = Simulation::new(system);
        sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(90));
        let report = sim.model().report(sim.now());
        assert!(report.mean_download_rate > 0.0);
        assert!(report.min_continuity <= report.mean_continuity);
        let text = report.to_string();
        assert!(text.contains("peers=20"));
        assert!(text.contains("continuity"));
    }
}

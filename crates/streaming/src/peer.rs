//! Per-peer protocol state.

use crate::chunk::BufferMap;

/// Playback/transfer counters for one peer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// Chunks played on time.
    pub played: u64,
    /// Chunks missed at their playback deadline.
    pub missed: u64,
    /// Chunks received from other peers.
    pub received_from_peers: u64,
    /// Chunks received directly from the source.
    pub received_from_source: u64,
    /// Chunks uploaded to other peers.
    pub uploaded: u64,
    /// Requests refused by the trade policy (buyer could not pay).
    pub denied: u64,
}

impl PeerStats {
    /// Playback continuity: fraction of deadlines met. 1.0 before any
    /// deadline has passed.
    pub fn continuity(&self) -> f64 {
        let total = self.played + self.missed;
        if total == 0 {
            1.0
        } else {
            self.played as f64 / total as f64
        }
    }

    /// Total chunks received from any provider.
    pub fn received(&self) -> u64 {
        self.received_from_peers + self.received_from_source
    }
}

/// The set of chunk ids a peer is currently fetching: a sorted `Vec`
/// instead of a tree, because it holds at most `max_pending` (≈ a
/// dozen) entries — binary search plus a short memmove beats pointer
/// chasing at that size, and the backing allocation is reused for the
/// peer's whole lifetime (the trade hot path never allocates for it in
/// steady state).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PendingSet {
    chunks: Vec<u64>,
}

impl PendingSet {
    /// An empty set.
    pub fn new() -> Self {
        PendingSet::default()
    }

    /// Whether `chunk` is being fetched.
    #[inline]
    pub fn contains(&self, chunk: u64) -> bool {
        self.chunks.binary_search(&chunk).is_ok()
    }

    /// Starts tracking `chunk`. Returns `true` if newly inserted.
    pub fn insert(&mut self, chunk: u64) -> bool {
        match self.chunks.binary_search(&chunk) {
            Ok(_) => false,
            Err(pos) => {
                self.chunks.insert(pos, chunk);
                true
            }
        }
    }

    /// Stops tracking `chunk`. Returns `true` if it was present.
    pub fn remove(&mut self, chunk: u64) -> bool {
        match self.chunks.binary_search(&chunk) {
            Ok(pos) => {
                self.chunks.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Number of in-flight requests.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether no request is in flight.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// The in-flight chunk ids, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.chunks.iter().copied()
    }
}

/// The protocol state of one streaming peer.
#[derive(Clone, Debug, PartialEq)]
pub struct PeerState {
    /// Held chunks within the sliding window.
    pub buffer: BufferMap,
    /// Next chunk to play, once playback has started.
    pub playback_pos: Option<u64>,
    /// Chunk ids currently being fetched (requests in flight).
    pub pending: PendingSet,
    /// Number of uploads currently in progress from this peer.
    pub active_uploads: usize,
    /// Counters.
    pub stats: PeerStats,
}

impl PeerState {
    /// A fresh peer with an empty buffer of the given window width.
    pub fn new(window: usize) -> Self {
        PeerState {
            buffer: BufferMap::new(window),
            playback_pos: None,
            pending: PendingSet::new(),
            active_uploads: 0,
            stats: PeerStats::default(),
        }
    }

    /// Whether playback has started.
    pub fn started(&self) -> bool {
        self.playback_pos.is_some()
    }

    /// Whether this peer can accept another upload task.
    pub fn can_upload(&self, max_uploads: usize) -> bool {
        self.active_uploads < max_uploads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuity_starts_perfect() {
        let s = PeerStats::default();
        assert_eq!(s.continuity(), 1.0);
    }

    #[test]
    fn continuity_ratio() {
        let s = PeerStats {
            played: 30,
            missed: 10,
            ..Default::default()
        };
        assert!((s.continuity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn received_totals() {
        let s = PeerStats {
            received_from_peers: 5,
            received_from_source: 2,
            ..Default::default()
        };
        assert_eq!(s.received(), 7);
    }

    #[test]
    fn upload_capacity() {
        let mut p = PeerState::new(16);
        assert!(p.can_upload(2));
        p.active_uploads = 2;
        assert!(!p.can_upload(2));
        assert!(!p.started());
        p.playback_pos = Some(3);
        assert!(p.started());
    }

    #[test]
    fn pending_set_behaves_like_a_set() {
        let mut p = PendingSet::new();
        assert!(p.is_empty());
        assert!(p.insert(5));
        assert!(p.insert(2));
        assert!(!p.insert(5), "duplicate insert");
        assert_eq!(p.len(), 2);
        assert!(p.contains(2) && p.contains(5) && !p.contains(3));
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![2, 5], "sorted");
        assert!(p.remove(2));
        assert!(!p.remove(2), "double remove");
        assert_eq!(p.len(), 1);
    }
}

//! Chunk identifiers and sliding-window buffer maps.

/// A peer's buffer map: which chunks it currently holds, within a sliding
/// window of fixed width.
///
/// Chunks are identified by their sequence number (`u64`). The window
/// covers `[base, base + width)`; inserting a chunk beyond the head
/// slides the window forward, discarding the oldest entries — exactly how
/// live-streaming peers cache only a recent interval of the stream.
///
/// ```
/// use scrip_streaming::BufferMap;
///
/// let mut map = BufferMap::new(8);
/// assert!(map.insert(3));
/// assert!(map.has(3));
/// // Inserting far ahead slides the window; chunk 3 falls out.
/// assert!(map.insert(100));
/// assert!(!map.has(3));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BufferMap {
    base: u64,
    bits: Vec<bool>,
    held: usize,
}

impl BufferMap {
    /// Creates an empty buffer map with the given window width (chunks).
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "buffer window must be positive");
        BufferMap {
            base: 0,
            bits: vec![false; width],
            held: 0,
        }
    }

    /// The window width in chunks.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The lowest chunk id still inside the window.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One past the highest chunk id inside the window.
    pub fn head(&self) -> u64 {
        self.base + self.bits.len() as u64
    }

    /// Number of chunks currently held.
    pub fn held(&self) -> usize {
        self.held
    }

    /// Whether the peer holds `chunk`.
    pub fn has(&self, chunk: u64) -> bool {
        if chunk < self.base {
            return false;
        }
        let offset = (chunk - self.base) as usize;
        offset < self.bits.len() && self.bits[offset]
    }

    /// Inserts `chunk`. Chunks older than the window are rejected
    /// (returns `false`); chunks beyond the head slide the window
    /// forward. Returns `true` if newly inserted.
    pub fn insert(&mut self, chunk: u64) -> bool {
        if chunk < self.base {
            return false;
        }
        if chunk >= self.head() {
            let new_base = chunk + 1 - self.bits.len() as u64;
            self.advance_to(new_base);
        }
        let offset = (chunk - self.base) as usize;
        if self.bits[offset] {
            false
        } else {
            self.bits[offset] = true;
            self.held += 1;
            true
        }
    }

    /// Slides the window so that `new_base` is the lowest retained chunk,
    /// discarding anything older. A no-op if `new_base <= base`.
    pub fn advance_to(&mut self, new_base: u64) {
        if new_base <= self.base {
            return;
        }
        let shift = (new_base - self.base) as usize;
        let width = self.bits.len();
        if shift >= width {
            self.bits.fill(false);
            self.held = 0;
        } else {
            for i in 0..width - shift {
                self.bits[i] = self.bits[i + shift];
            }
            for i in width - shift..width {
                self.bits[i] = false;
            }
            self.held = self.bits.iter().filter(|&&b| b).count();
        }
        self.base = new_base;
    }

    /// Iterates over held chunk ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(move |(i, _)| self.base + i as u64)
    }

    /// The chunks in `[from, to)` that the peer does **not** hold (only
    /// positions inside the window are reported).
    pub fn missing_in(&self, from: u64, to: u64) -> Vec<u64> {
        let lo = from.max(self.base);
        let hi = to.min(self.head());
        (lo..hi).filter(|&c| !self.has(c)).collect()
    }

    /// Number of chunks in `other`'s buffer that this map lacks and that
    /// fall within this map's window — the "useful chunks" measure that
    /// drives credit-routing probabilities in the paper ("credit transfer
    /// probabilities to neighbors are decided by their data chunks
    /// availability").
    pub fn useful_from(&self, other: &BufferMap) -> usize {
        other
            .iter()
            .filter(|&c| c >= self.base && c < self.head() && !self.has(c))
            .count()
    }

    /// Lowest held chunk id, if any.
    pub fn first_held(&self) -> Option<u64> {
        self.iter().next()
    }

    /// Length of the contiguous run of held chunks starting at `from`.
    pub fn contiguous_from(&self, from: u64) -> usize {
        let mut count = 0;
        let mut c = from;
        while self.has(c) {
            count += 1;
            c += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut m = BufferMap::new(16);
        assert!(!m.has(0));
        assert!(m.insert(0));
        assert!(!m.insert(0), "duplicate insert");
        assert!(m.insert(5));
        assert_eq!(m.held(), 2);
        assert!(m.has(0) && m.has(5) && !m.has(3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        BufferMap::new(0);
    }

    #[test]
    fn window_slides_on_future_insert() {
        let mut m = BufferMap::new(4);
        m.insert(0);
        m.insert(1);
        m.insert(2);
        m.insert(3);
        assert_eq!(m.held(), 4);
        // Chunk 5 forces base to 2; chunks 0 and 1 drop.
        assert!(m.insert(5));
        assert_eq!(m.base(), 2);
        assert!(!m.has(0) && !m.has(1));
        assert!(m.has(2) && m.has(3) && m.has(5));
        assert_eq!(m.held(), 3);
    }

    #[test]
    fn stale_inserts_rejected() {
        let mut m = BufferMap::new(4);
        m.insert(10);
        assert!(m.base() > 0);
        assert!(!m.insert(0));
        assert_eq!(m.held(), 1);
    }

    #[test]
    fn advance_to_discards() {
        let mut m = BufferMap::new(8);
        for c in 0..8 {
            m.insert(c);
        }
        m.advance_to(5);
        assert_eq!(m.base(), 5);
        assert_eq!(m.held(), 3);
        assert!(!m.has(4) && m.has(5) && m.has(7));
        // Advancing past everything empties the map.
        m.advance_to(100);
        assert_eq!(m.held(), 0);
        assert_eq!(m.base(), 100);
        // No-op backwards.
        m.advance_to(50);
        assert_eq!(m.base(), 100);
    }

    #[test]
    fn iter_ascending() {
        let mut m = BufferMap::new(10);
        for c in [7u64, 2, 5] {
            m.insert(c);
        }
        let held: Vec<u64> = m.iter().collect();
        assert_eq!(held, vec![2, 5, 7]);
    }

    #[test]
    fn missing_in_range() {
        let mut m = BufferMap::new(10);
        m.insert(2);
        m.insert(4);
        assert_eq!(m.missing_in(0, 6), vec![0, 1, 3, 5]);
        // Clamped to the window.
        assert_eq!(m.missing_in(0, 100).len(), 8);
    }

    #[test]
    fn useful_from_counts_gaps() {
        let mut a = BufferMap::new(10);
        a.insert(1);
        let mut b = BufferMap::new(10);
        b.insert(1);
        b.insert(2);
        b.insert(3);
        assert_eq!(a.useful_from(&b), 2);
        assert_eq!(b.useful_from(&a), 0);
    }

    #[test]
    fn contiguous_run() {
        let mut m = BufferMap::new(10);
        for c in [3u64, 4, 5, 7] {
            m.insert(c);
        }
        assert_eq!(m.contiguous_from(3), 3);
        assert_eq!(m.contiguous_from(6), 0);
        assert_eq!(m.first_held(), Some(3));
    }
}

//! Determinism of the parallel batch runner: the same scenario must
//! produce byte-identical aggregated output for every worker-thread
//! count, and replication seeds must follow the documented derivation.

use scrip_bench::scenario::{run_scenario, CaseSpec, Metric, RunnerOptions, Scenario, SweepAxis};
use scrip_core::spec::MarketSpec;

/// A small but non-trivial grid: 2 explicit cases × 2 sweep values ×
/// 3 replications = 12 jobs, with churn in one case so population sizes
/// differ across replications.
fn grid_scenario() -> Scenario {
    let mut sc = Scenario::new("determinism", MarketSpec::new(40, 20));
    sc.base.set("sample", "50").expect("valid");
    sc.run.horizon_secs = 600;
    sc.run.seed = 20_260_728;
    sc.run.replications = 3;
    sc.run.snapshots = vec![300, 600];
    sc.run.metrics = vec![
        Metric::GINI_SERIES,
        Metric::FINAL_BALANCES,
        Metric::SPENDING_RATES,
        Metric::SNAPSHOTS,
    ];
    sc.cases = vec![
        CaseSpec::new("closed"),
        CaseSpec::new("churning").with("churn", "0.2:200:10"),
    ];
    sc.sweep = vec![SweepAxis::new("credits", [10u64, 40])];
    sc
}

#[test]
fn aggregated_output_is_identical_for_1_2_and_8_threads() {
    let scenario = grid_scenario();
    let baseline = run_scenario(&scenario, &RunnerOptions::with_threads(1)).expect("runs");
    let baseline_csv = baseline.to_csv();
    assert!(
        baseline_csv.lines().count() > 50,
        "output should be substantial"
    );

    for threads in [2, 8] {
        let result = run_scenario(&scenario, &RunnerOptions::with_threads(threads)).expect("runs");
        assert_eq!(
            baseline_csv,
            result.to_csv(),
            "{threads}-thread CSV diverged from the serial baseline"
        );
        assert_eq!(baseline.summary_lines(), result.summary_lines());
        for (a, b) in baseline.cases.iter().zip(&result.cases) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.reps, b.reps, "case {} raw data diverged", a.label);
        }
    }
}

/// A chunk-level streaming grid: 2 cases (one churning) × 2
/// replications, recording every metric including the stall series.
fn streaming_grid_scenario() -> Scenario {
    let mut sc = Scenario::new("streaming-determinism", MarketSpec::new(30, 40));
    sc.base.set("streaming", "paced:1").expect("valid");
    sc.base.set("sample", "30").expect("valid");
    sc.run.horizon_secs = 240;
    sc.run.seed = 20_260_728;
    sc.run.replications = 2;
    sc.run.snapshots = vec![120, 240];
    sc.run.metrics = vec![
        Metric::GINI_SERIES,
        Metric::FINAL_BALANCES,
        Metric::SPENDING_RATES,
        Metric::SNAPSHOTS,
        Metric::STALL_SERIES,
    ];
    sc.cases = vec![
        CaseSpec::new("closed"),
        CaseSpec::new("churning").with("churn", "0.2:150:8"),
    ];
    sc
}

#[test]
fn streaming_output_is_identical_for_1_2_and_8_threads() {
    let scenario = streaming_grid_scenario();
    let baseline = run_scenario(&scenario, &RunnerOptions::with_threads(1)).expect("runs");
    let baseline_csv = baseline.to_csv();
    assert!(
        baseline_csv.contains("stall,"),
        "stall series missing from CSV"
    );
    for threads in [2, 8] {
        let result = run_scenario(&scenario, &RunnerOptions::with_threads(threads)).expect("runs");
        assert_eq!(
            baseline_csv,
            result.to_csv(),
            "{threads}-thread streaming CSV diverged from the serial baseline"
        );
        for (a, b) in baseline.cases.iter().zip(&result.cases) {
            assert_eq!(a.reps, b.reps, "case {} raw data diverged", a.label);
        }
    }
}

/// A grid recording the three registry-only probes — throughput,
/// population (with churn so it actually moves), and the Lorenz curve —
/// at both market granularities.
fn new_probe_scenario() -> Scenario {
    let mut sc = Scenario::new("new-probes", MarketSpec::new(40, 20));
    sc.base.set("sample", "50").expect("valid");
    sc.run.horizon_secs = 400;
    sc.run.seed = 20_260_728;
    sc.run.replications = 2;
    sc.run.metrics = vec![
        Metric::THROUGHPUT_SERIES,
        Metric::POPULATION_SERIES,
        Metric::LORENZ,
    ];
    sc.cases = vec![
        CaseSpec::new("queue").with("churn", "0.2:200:10"),
        CaseSpec::new("chunks")
            .with("streaming", "paced:1")
            .with("credits", "40"),
    ];
    sc
}

#[test]
fn new_probe_output_is_identical_for_1_2_and_8_threads() {
    let scenario = new_probe_scenario();
    let baseline = run_scenario(&scenario, &RunnerOptions::with_threads(1)).expect("runs");
    let baseline_csv = baseline.to_csv();
    for needle in [
        "throughput,queue,",
        "throughput,chunks,",
        "population,queue,",
        "population,chunks,",
        "lorenz,queue,",
        "lorenz,chunks,",
    ] {
        assert!(baseline_csv.contains(needle), "CSV missing {needle}");
    }
    for threads in [2, 8] {
        let result = run_scenario(&scenario, &RunnerOptions::with_threads(threads)).expect("runs");
        assert_eq!(
            baseline_csv,
            result.to_csv(),
            "{threads}-thread new-probe CSV diverged from the serial baseline"
        );
        for (a, b) in baseline.cases.iter().zip(&result.cases) {
            assert_eq!(a.reps, b.reps, "case {} raw data diverged", a.label);
        }
    }
}

#[test]
fn repeated_runs_are_identical() {
    let scenario = grid_scenario();
    let options = RunnerOptions::with_threads(4);
    let a = run_scenario(&scenario, &options).expect("runs");
    let b = run_scenario(&scenario, &options).expect("runs");
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn seeds_depend_on_replication_not_on_threads() {
    let scenario = grid_scenario();
    let serial = run_scenario(&scenario, &RunnerOptions::with_threads(1)).expect("runs");
    let parallel = run_scenario(&scenario, &RunnerOptions::with_threads(8)).expect("runs");
    for (a, b) in serial.cases.iter().zip(&parallel.cases) {
        let sa: Vec<u64> = a.reps.iter().map(|r| r.seed).collect();
        let sb: Vec<u64> = b.reps.iter().map(|r| r.seed).collect();
        assert_eq!(sa, sb);
        assert_eq!(
            sa[0], scenario.run.seed,
            "replication 0 keeps the root seed"
        );
        assert_eq!(sa.len(), 3);
    }
    // Common random numbers: every case shares the replication seeds.
    let first: Vec<u64> = serial.cases[0].reps.iter().map(|r| r.seed).collect();
    for case in &serial.cases[1..] {
        let seeds: Vec<u64> = case.reps.iter().map(|r| r.seed).collect();
        assert_eq!(first, seeds);
    }
}

#[test]
fn more_threads_than_jobs_is_fine() {
    let mut sc = Scenario::new("tiny", MarketSpec::new(30, 10));
    sc.run.horizon_secs = 200;
    let result = run_scenario(&sc, &RunnerOptions::with_threads(64)).expect("runs");
    assert_eq!(result.cases.len(), 1);
    assert_eq!(result.cases[0].reps.len(), 1);
}

//! Process-level crash-safety of `scrip-sim serve`: kill the daemon
//! mid-job with SIGKILL, restart it on the same state directory, and
//! require the resumed job's served CSV to be byte-identical to a
//! straight `scrip-sim run` of the same scenario.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use scrip_bench::serve::{Client, THROTTLE_ENV};

const SIM: &str = env!("CARGO_BIN_EXE_scrip-sim");

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scrip-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns a daemon on an ephemeral port over `state_dir` and waits for
/// its addr file; `throttle_ms` > 0 slows the worker at every sampling
/// boundary so the test can reliably kill it mid-run.
fn spawn_daemon(state_dir: &std::path::Path, throttle_ms: u64) -> (Child, String) {
    let addr_file = state_dir.join("addr");
    let _ = std::fs::remove_file(&addr_file);
    let mut command = Command::new(SIM);
    command
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--state-dir",
        ])
        .arg(state_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if throttle_ms > 0 {
        command.env(THROTTLE_ENV, throttle_ms.to_string());
    }
    let mut child = command.spawn().expect("daemon spawns");
    for _ in 0..400 {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            return (child, addr.trim().to_string());
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!("daemon never wrote its addr file");
}

/// The batch-run CSV for a scenario file: `scrip-sim run FILE --csv`
/// stdout from its `# scenario:` line onward (the summary lines above
/// it are not part of the CSV).
fn batch_csv(scn: &std::path::Path) -> String {
    let output = Command::new(SIM)
        .args(["run"])
        .arg(scn)
        .args(["--csv", "--serial"])
        .output()
        .expect("batch run executes");
    assert!(output.status.success(), "batch run succeeds");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    let start = stdout.find("# scenario:").expect("CSV header present");
    stdout[start..].to_string()
}

#[test]
fn killed_daemon_resumes_and_serves_the_batch_identical_csv() {
    let dir = temp_dir("kill");
    let scn = repo_path("examples/scenarios/fault_recovery.scn");
    let text = std::fs::read_to_string(&scn).expect("scenario readable");

    // Throttled daemon: ~40ms per sampling boundary gives a wide window
    // in which the job is running with a checkpoint on disk.
    let (mut daemon, addr) = spawn_daemon(&dir, 40);
    let mut client = Client::connect(&addr).expect("connects");
    let job = client
        .submit(&text, Some("recovery"), None, Some(100))
        .expect("submits");
    let ckpt = dir.join(format!("job-{job}.ckpt"));
    let mut armed = false;
    for _ in 0..600 {
        let running = client.status(&job).expect("status") == "running";
        if running && ckpt.exists() {
            armed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(armed, "job must be mid-run with a checkpoint on disk");
    daemon.kill().expect("SIGKILL lands");
    daemon.wait().expect("daemon reaped");

    // Same state directory, fresh daemon, no throttle: the journal
    // replays, the job re-queues, and the worker resumes from the
    // snapshot instead of starting over.
    let (mut daemon, addr) = spawn_daemon(&dir, 0);
    let mut client = Client::connect(&addr).expect("reconnects");
    let state = client.wait_terminal(&job, 120).expect("job finishes");
    assert_eq!(state, "completed", "recovered job completes");
    let served = client.result_csv(&job).expect("served CSV");
    assert_eq!(
        served,
        batch_csv(&scn),
        "served CSV after kill-and-restart must equal the batch CSV"
    );
    let stats = client.stats().expect("stats");
    assert!(stats.contains("completed=1"), "stats: {stats}");
    client.drain().expect("drains");
    daemon.wait().expect("daemon exits after drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tail_follow_prints_the_sample_stream_through_the_end_frame() {
    let dir = temp_dir("tail");
    let scn = repo_path("examples/scenarios/fault_recovery.scn");
    let text = std::fs::read_to_string(&scn).expect("scenario readable");

    let (mut daemon, addr) = spawn_daemon(&dir, 0);
    let mut client = Client::connect(&addr).expect("connects");
    // --follow starts before the job so the tailer sees the file grow.
    let job = client.submit(&text, None, None, None).expect("submits");
    let tail = Command::new(SIM)
        .args(["tail", "--follow"])
        .arg(dir.join(format!("job-{job}.samples.trc")))
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("tail spawns");
    let state = client.wait_terminal(&job, 120).expect("job finishes");
    assert_eq!(state, "completed");
    let output = tail
        .wait_with_output()
        .expect("tail exits at the end frame");
    assert!(output.status.success(), "tail exits cleanly");
    let stdout = String::from_utf8(output.stdout).expect("utf-8");
    // fault_recovery: horizon 1000s on a 60s grid = 16 boundaries.
    let events = stdout.lines().filter(|l| l.starts_with("event ")).count();
    assert_eq!(events, 16, "tail output:\n{stdout}");
    assert!(
        stdout.lines().any(|l| l.starts_with("end ")),
        "tail must print the end frame: {stdout}"
    );
    client.drain().expect("drains");
    daemon.wait().expect("daemon exits after drain");
    let _ = std::fs::remove_dir_all(&dir);
}

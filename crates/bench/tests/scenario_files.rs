//! Golden-file tests for the scenario engine: every shipped example
//! file parses, validates, round-trips through the serializer, and the
//! `fig07.scn` golden stays in sync with the built-in fig07 scenario.

use std::path::PathBuf;

use scrip_bench::figures;
use scrip_bench::scale::RunScale;
use scrip_bench::scenario::Scenario;

fn scenario_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios")
}

fn read(name: &str) -> String {
    let path = scenario_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn example_files() -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(scenario_dir())
        .expect("examples/scenarios exists")
        .filter_map(|entry| {
            let name = entry.expect("readable entry").file_name();
            let name = name.to_string_lossy().into_owned();
            name.ends_with(".scn").then_some(name)
        })
        .collect();
    names.sort();
    names
}

#[test]
fn all_example_files_parse_validate_and_round_trip() {
    let files = example_files();
    assert!(
        files.len() >= 3,
        "expected ≥ 3 example files, got {files:?}"
    );
    for name in files {
        let text = read(&name);
        let scenario = Scenario::parse_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        // Round trip: serialize and reparse — must reproduce the same
        // scenario, and the serialized form must be a fixed point.
        let serialized = scenario.to_file_string();
        let reparsed =
            Scenario::parse_str(&serialized).unwrap_or_else(|e| panic!("{name} (serialized): {e}"));
        assert_eq!(
            scenario, reparsed,
            "{name}: round trip changed the scenario"
        );
        assert_eq!(
            serialized,
            reparsed.to_file_string(),
            "{name}: serializer is not a fixed point"
        );
    }
}

#[test]
fn fig07_golden_matches_builtin_scenario() {
    let from_file = Scenario::parse_str(&read("fig07.scn")).expect("golden parses");
    let builtin = figures::fig07_scenario(RunScale::Full);
    assert_eq!(
        from_file, builtin,
        "examples/scenarios/fig07.scn drifted from figures::fig07_scenario \
         (regenerate with `scrip-sim export fig07`)"
    );
}

#[test]
fn streaming_golden_matches_builtin_scenario() {
    let from_file = Scenario::parse_str(&read("streaming.scn")).expect("golden parses");
    let builtin = figures::streaming_scenario(RunScale::Full);
    assert_eq!(
        from_file, builtin,
        "examples/scenarios/streaming.scn drifted from figures::streaming_scenario \
         (regenerate with `scrip-sim export streaming`) — keep docs/SCENARIOS.md's \
         streaming.* key documentation in step with it"
    );
}

#[test]
fn streaming_example_files_expand_to_the_documented_cases() {
    let flash = Scenario::parse_str(&read("streaming_flash_crowd.scn")).expect("parses");
    let labels: Vec<String> = flash
        .expand()
        .expect("expands")
        .into_iter()
        .map(|c| c.label)
        .collect();
    assert_eq!(labels, ["static", "steady", "flash"]);

    let free_rider = Scenario::parse_str(&read("free_rider_stall.scn")).expect("parses");
    assert_eq!(
        free_rider.expand().expect("expands").len(),
        8,
        "2 price levels × 4 endowments"
    );

    let seeder = Scenario::parse_str(&read("seeder_incentive.scn")).expect("parses");
    let seeder_cases = seeder.expand().expect("expands");
    assert_eq!(seeder_cases.len(), 6, "2 wealth cases × 3 capacities");
    // The sweep axis drives a streaming protocol sub-key.
    assert_eq!(
        seeder_cases[0]
            .spec
            .config()
            .streaming
            .as_ref()
            .map(|s| s.source_uploads),
        Some(1)
    );
    assert_eq!(
        seeder_cases[2]
            .spec
            .config()
            .streaming
            .as_ref()
            .map(|s| s.source_uploads),
        Some(16)
    );
}

#[test]
fn example_files_expand_to_the_documented_cases() {
    let flash = Scenario::parse_str(&read("flash_crowd.scn")).expect("parses");
    let labels: Vec<String> = flash
        .expand()
        .expect("expands")
        .into_iter()
        .map(|c| c.label)
        .collect();
    assert_eq!(labels, ["static", "steady", "flash"]);
    assert_eq!(flash.run.replications, 3);

    let hetero = Scenario::parse_str(&read("service_heterogeneity.scn")).expect("parses");
    assert_eq!(
        hetero.expand().expect("expands").len(),
        8,
        "4 spreads × 2 wealths"
    );
}

#[test]
fn malformed_inputs_fail_with_line_numbers() {
    // A quick end-to-end sanity check that file-level errors are
    // reported usably (the parser unit tests cover the full matrix).
    let broken = "name = \"x\"\n[market]\npeers = 60\nprofile = \"sideways\"\n";
    let err = Scenario::parse_str(broken).expect_err("invalid profile");
    assert_eq!(err.line, 4);
    assert!(err.message.contains("profile"), "{err}");

    let truncated = read("flash_crowd.scn").replace("[case.flash]", "[case.flash");
    assert!(
        Scenario::parse_str(&truncated).is_err(),
        "malformed section"
    );
}

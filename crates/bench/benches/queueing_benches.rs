//! Performance benches for the queueing-network analytics (the engines
//! behind the paper's Figs. 2–4 and the market analysis).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scrip_core::des::SimRng;
use scrip_core::model::uniform_routing;
use scrip_core::queueing::approx::{eq8_symmetric_marginal, exact_symmetric_marginal};
use scrip_core::queueing::closed::ClosedJackson;
use scrip_core::queueing::condensation::empirical_threshold;
use scrip_core::queueing::stationary::{direct_solve, power_iteration, PowerOptions};
use scrip_core::topology::generators::{self, ScaleFreeConfig};

fn jittered_utilizations(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut u: Vec<f64> = (0..n).map(|_| 0.8 + 0.2 * rng.uniform_f64()).collect();
    u[0] = 1.0;
    u
}

fn bench_buzen(c: &mut Criterion) {
    let mut group = c.benchmark_group("buzen_convolution");
    for (n, m) in [(50usize, 5_000usize), (200, 20_000), (500, 50_000)] {
        let network =
            ClosedJackson::from_utilizations(&jittered_utilizations(n, 7)).expect("valid");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("N{n}_M{m}")),
            &(network, m),
            |b, (network, m)| b.iter(|| black_box(network.convolution(*m))),
        );
    }
    group.finish();
}

fn bench_expected_lengths(c: &mut Criterion) {
    let mut group = c.benchmark_group("mean_wealth");
    let n = 200;
    let m = 20_000;
    let network = ClosedJackson::from_utilizations(&jittered_utilizations(n, 9)).expect("valid");
    group.bench_function("buzen_expected_lengths", |b| {
        b.iter(|| black_box(network.expected_lengths(m)))
    });
    group.bench_function("mva", |b| b.iter(|| black_box(network.mva(m))));
    group.finish();
}

fn bench_stationary_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("stationary_flows");
    for n in [100usize, 300] {
        let mut rng = SimRng::seed_from_u64(n as u64);
        let g = generators::scale_free(&ScaleFreeConfig::new(n).expect("cfg"), &mut rng)
            .expect("graph");
        let (_, p) = uniform_routing(&g).expect("routing");
        group.bench_with_input(BenchmarkId::new("direct", n), &p, |b, p| {
            b.iter(|| black_box(direct_solve(p).expect("solves")))
        });
        group.bench_with_input(BenchmarkId::new("power", n), &p, |b, p| {
            b.iter(|| black_box(power_iteration(p, PowerOptions::default()).expect("solves")))
        });
    }
    group.finish();
}

fn bench_marginals(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric_marginals");
    let (m, n) = (50_000usize, 50usize);
    group.bench_function("eq8_binomial", |b| {
        b.iter(|| black_box(eq8_symmetric_marginal(m, n).expect("valid")))
    });
    group.bench_function("exact_product_form", |b| {
        b.iter(|| black_box(exact_symmetric_marginal(m, n).expect("valid")))
    });
    group.finish();
}

fn bench_threshold(c: &mut Criterion) {
    let u = jittered_utilizations(10_000, 11);
    c.bench_function("condensation_threshold_n10000", |b| {
        b.iter(|| black_box(empirical_threshold(&u, 1e-6).expect("valid")))
    });
}

criterion_group!(
    benches,
    bench_buzen,
    bench_expected_lengths,
    bench_stationary_solvers,
    bench_marginals,
    bench_threshold
);
criterion_main!(benches);

//! Performance benches for the inequality metrics.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scrip_core::des::SimRng;
use scrip_core::econ::lorenz::LorenzCurve;
use scrip_core::econ::{gini, gini_from_pmf};
use scrip_core::queueing::approx::exact_symmetric_marginal;

fn bench_gini(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(1);
    let sample: Vec<f64> = (0..100_000).map(|_| rng.uniform_f64() * 1_000.0).collect();
    c.bench_function("gini_sample_100k", |b| {
        b.iter(|| black_box(gini(&sample).expect("valid")))
    });
    let pmf = exact_symmetric_marginal(50_000, 50).expect("valid");
    c.bench_function("gini_from_pmf_50k", |b| {
        b.iter(|| black_box(gini_from_pmf(&pmf).expect("valid")))
    });
    c.bench_function("lorenz_from_pmf_50k", |b| {
        b.iter(|| black_box(LorenzCurve::from_pmf(&pmf).expect("valid")))
    });
}

criterion_group!(benches, bench_gini);
criterion_main!(benches);

//! End-to-end figure-regeneration benches (quick scale): how long each
//! experiment of the paper's evaluation takes to reproduce.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scrip_bench::figures;
use scrip_bench::scale::RunScale;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_quick_scale");
    group.sample_size(10);
    group.bench_function("fig01", |b| {
        b.iter(|| black_box(figures::fig01_spending_rates(RunScale::Quick).expect("runs")))
    });
    group.bench_function("fig02", |b| {
        b.iter(|| black_box(figures::fig02_lorenz_pmf(RunScale::Quick).expect("runs")))
    });
    group.bench_function("fig04", |b| {
        b.iter(|| black_box(figures::fig04_efficiency(RunScale::Quick).expect("runs")))
    });
    group.bench_function("fig07", |b| {
        b.iter(|| {
            black_box(figures::fig07_gini_evolution_symmetric(RunScale::Quick).expect("runs"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

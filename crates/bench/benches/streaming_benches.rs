//! Performance benches for the chunk-level streaming trade loop.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scrip_core::des::{SimDuration, SimTime};
use scrip_core::market::{ChurnConfig, MarketConfig};
use scrip_core::protocol::run_streaming_market;
use scrip_core::streaming::StreamingConfig;

fn paced_config(n: usize, credits: u64) -> MarketConfig {
    MarketConfig::new(n, credits)
        .streaming_market(StreamingConfig::market_paced(1.0))
        .sample_interval(SimDuration::from_secs(50))
}

/// End-to-end chunk-trade throughput: the whole protocol stack (pull
/// scheduling, deliveries, playback, settlements through the shared
/// ledger) at two swarm sizes.
fn bench_trade_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_trade_loop_200s");
    group.sample_size(10);
    for n in [100usize, 300] {
        group.bench_with_input(BenchmarkId::new("market_paced", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    run_streaming_market(&paced_config(n, 50), 7, SimTime::from_secs(200))
                        .expect("runs"),
                )
            })
        });
    }
    group.finish();
}

/// The starved regime: most authorizations are denied, so the bench
/// exercises the deny/retry path of the scheduling round rather than
/// the delivery path.
fn bench_starved_swarm(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_starved_200s");
    group.sample_size(10);
    group.bench_function("credits_2", |b| {
        b.iter(|| {
            black_box(
                run_streaming_market(&paced_config(200, 2), 7, SimTime::from_secs(200))
                    .expect("runs"),
            )
        })
    });
    group.finish();
}

/// Chunk-level churn: joins rewire the overlay and mint wallets, leaves
/// burn them — the swap-remove discipline across graph, arena, peer
/// states and policy accounting.
fn bench_churning_swarm(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_churn_200s");
    group.sample_size(10);
    group.bench_function("expected_200_peers", |b| {
        let config = paced_config(200, 50).churn(ChurnConfig::new(1.0, 200.0, 12).expect("valid"));
        b.iter(|| {
            black_box(run_streaming_market(&config, 7, SimTime::from_secs(200)).expect("runs"))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trade_loop,
    bench_starved_swarm,
    bench_churning_swarm
);
criterion_main!(benches);

//! Performance benches for overlay generation and metrics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scrip_core::des::SimRng;
use scrip_core::topology::generators::{self, ScaleFreeConfig};
use scrip_core::topology::metrics::TopologyReport;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    for n in [500usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("scale_free", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = SimRng::seed_from_u64(1);
                black_box(
                    generators::scale_free(&ScaleFreeConfig::new(n).expect("cfg"), &mut rng)
                        .expect("graph"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("barabasi_albert_m10", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = SimRng::seed_from_u64(1);
                black_box(generators::barabasi_albert(n, 10, &mut rng).expect("graph"))
            })
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(5);
    let g = generators::scale_free(&ScaleFreeConfig::new(1_000).expect("cfg"), &mut rng)
        .expect("graph");
    c.bench_function("topology_report_n1000", |b| {
        b.iter(|| black_box(TopologyReport::of(&g)))
    });
}

criterion_group!(benches, bench_generators, bench_metrics);
criterion_main!(benches);

//! Performance benches for the market simulators.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scrip_core::des::SimTime;
use scrip_core::market::{run_market, MarketConfig, TopologyKind};
use scrip_core::pricing::PricingConfig;

fn bench_queue_market(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_market_1000s");
    group.sample_size(10);
    for n in [100usize, 300] {
        group.bench_with_input(BenchmarkId::new("symmetric", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    run_market(
                        MarketConfig::new(n, 50).symmetric(),
                        7,
                        SimTime::from_secs(1_000),
                    )
                    .expect("runs"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("asymmetric_poisson", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    run_market(
                        MarketConfig::new(n, 50)
                            .asymmetric()
                            .pricing(PricingConfig::ChunkPoisson { mean: 1.0 }),
                        7,
                        SimTime::from_secs(1_000),
                    )
                    .expect("runs"),
                )
            })
        });
    }
    group.finish();
}

/// Spend-loop throughput on the two routing shapes the arena refactor
/// optimized: complete-mixing picks from the dense peer list, and
/// scale-free neighbor picks from the graph's sorted slices.
fn bench_spend_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("spend_loop_500s");
    group.sample_size(10);
    for (label, config) in [
        (
            "complete_mixing",
            MarketConfig::new(300, 50)
                .symmetric()
                .topology(TopologyKind::Complete),
        ),
        (
            "scale_free_neighbors",
            MarketConfig::new(300, 50).asymmetric(),
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    run_market(black_box(config.clone()), 11, SimTime::from_secs(500))
                        .expect("runs"),
                )
            })
        });
    }
    group.finish();
}

/// The availability-feedback seller pick: the weighted scan over the
/// neighbor slice through the reused scratch buffer (formerly two Vec
/// allocations per spend).
fn bench_availability_feedback(c: &mut Criterion) {
    let mut group = c.benchmark_group("availability_feedback_500s");
    group.sample_size(10);
    for n in [300usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("weighted_pick", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    run_market(
                        MarketConfig::new(n, 50)
                            .asymmetric()
                            .with_availability_feedback(),
                        11,
                        SimTime::from_secs(500),
                    )
                    .expect("runs"),
                )
            })
        });
    }
    group.finish();
}

/// A wealth-Gini sample at n = 10k: O(1) from the ledger's incremental
/// accumulator (formerly an O(n log n) sort per sample).
fn bench_gini_sampling(c: &mut Criterion) {
    let market = run_market(
        MarketConfig::new(10_000, 50).asymmetric(),
        11,
        SimTime::from_secs(20),
    )
    .expect("runs");
    let mut group = c.benchmark_group("gini_sample_n10k");
    group.bench_function("wealth_gini", |b| {
        b.iter(|| black_box(black_box(&market).wealth_gini().expect("non-empty")))
    });
    group.finish();
}

fn bench_protocol_market(c: &mut Criterion) {
    use scrip_core::des::SimRng;
    use scrip_core::protocol::StreamingMarket;
    use scrip_core::streaming::StreamingConfig;
    use scrip_core::topology::generators::{self, ScaleFreeConfig};

    let mut group = c.benchmark_group("protocol_market_120s");
    group.sample_size(10);
    group.bench_function("n50_rate1", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(3);
            let g = generators::scale_free(&ScaleFreeConfig::new(50).expect("cfg"), &mut rng)
                .expect("graph");
            black_box(
                StreamingMarket::new(50)
                    .streaming(StreamingConfig::market_paced(1.0))
                    .run(g, 3, SimTime::from_secs(120))
                    .expect("runs"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_queue_market,
    bench_spend_loop,
    bench_availability_feedback,
    bench_gini_sampling,
    bench_protocol_market
);
criterion_main!(benches);

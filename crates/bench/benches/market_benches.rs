//! Performance benches for the market simulators.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scrip_core::des::SimTime;
use scrip_core::market::{run_market, MarketConfig};
use scrip_core::pricing::PricingConfig;

fn bench_queue_market(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_market_1000s");
    group.sample_size(10);
    for n in [100usize, 300] {
        group.bench_with_input(BenchmarkId::new("symmetric", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    run_market(
                        MarketConfig::new(n, 50).symmetric(),
                        7,
                        SimTime::from_secs(1_000),
                    )
                    .expect("runs"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("asymmetric_poisson", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    run_market(
                        MarketConfig::new(n, 50)
                            .asymmetric()
                            .pricing(PricingConfig::ChunkPoisson { mean: 1.0 }),
                        7,
                        SimTime::from_secs(1_000),
                    )
                    .expect("runs"),
                )
            })
        });
    }
    group.finish();
}

fn bench_protocol_market(c: &mut Criterion) {
    use scrip_core::des::SimRng;
    use scrip_core::protocol::StreamingMarket;
    use scrip_core::streaming::StreamingConfig;
    use scrip_core::topology::generators::{self, ScaleFreeConfig};

    let mut group = c.benchmark_group("protocol_market_120s");
    group.sample_size(10);
    group.bench_function("n50_rate1", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(3);
            let g = generators::scale_free(&ScaleFreeConfig::new(50).expect("cfg"), &mut rng)
                .expect("graph");
            black_box(
                StreamingMarket::new(50)
                    .streaming(StreamingConfig::market_paced(1.0))
                    .run(g, 3, SimTime::from_secs(120))
                    .expect("runs"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queue_market, bench_protocol_market);
criterion_main!(benches);

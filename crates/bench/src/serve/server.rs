//! The daemon: listener, connection handlers, and the shared state the
//! worker pool drains.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use scrip_core::des::trace::{TraceFrame, TraceTailer};

use super::journal::{recoverable, JobRecord, JobState, Journal};
use super::protocol::Request;
use super::{worker, ADDR_FILE};
use crate::scenario::Scenario;

/// Largest scenario file the daemon accepts over the wire (4 MiB — two
/// orders of magnitude above every scenario in the repo).
const MAX_SCENARIO_BYTES: usize = 4 << 20;

/// How often a subscriber re-polls the job's sample log.
const SUBSCRIBE_POLL: Duration = Duration::from_millis(25);

/// Extra polls a subscriber grants a terminal job for its end frame to
/// land (the worker writes it before journaling the terminal state, so
/// this only expires for jobs that never started a sample log).
const SUBSCRIBE_GRACE_POLLS: u32 = 40;

/// How the daemon is launched: bind address, state directory, worker
/// count.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:7177`; port `0` picks an
    /// ephemeral port (read it back from the `addr` file or
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Directory holding the journal, submitted scenarios, checkpoints,
    /// sample logs, and result CSVs. Created if absent.
    pub state_dir: PathBuf,
    /// Fixed worker-pool size.
    pub workers: usize,
}

impl ServeOptions {
    /// Options for `addr` with the given state directory and two
    /// workers.
    pub fn new(addr: impl Into<String>, state_dir: impl Into<PathBuf>) -> Self {
        ServeOptions {
            addr: addr.into(),
            state_dir: state_dir.into(),
            workers: 2,
        }
    }
}

/// Everything the listener, connection handlers, and workers share.
pub(super) struct Shared {
    /// The daemon's state directory.
    pub(super) state_dir: PathBuf,
    /// Queue, job table, journal — everything that must move together.
    pub(super) inner: Mutex<Inner>,
    /// Signalled on every queue or lifecycle change.
    pub(super) work: Condvar,
    /// Total bytes of sample lines written to subscribers.
    pub(super) bytes_streamed: AtomicU64,
    /// Worker-pool size (for `stats`).
    pub(super) workers: usize,
    /// The bound address (for the drain self-connect).
    local_addr: SocketAddr,
}

/// The daemon's mutable state, guarded by one mutex.
pub(super) struct Inner {
    /// Every job ever journaled, keyed by id.
    pub(super) jobs: BTreeMap<String, JobRecord>,
    /// Ids waiting for a worker, in acceptance order.
    pub(super) queue: VecDeque<String>,
    /// The append side of the persistent queue.
    pub(super) journal: Journal,
    /// When set, submissions are refused and the daemon winds down.
    pub(super) draining: bool,
    /// When set, workers and the listener exit.
    pub(super) shutdown: bool,
    /// Next numeric job id.
    pub(super) next_id: u64,
    /// Jobs currently executing on workers.
    pub(super) running: usize,
}

impl Shared {
    /// Whether `job` has a pending cancel request (checked by workers at
    /// sampling boundaries).
    pub(super) fn cancel_requested(&self, job: &str) -> bool {
        let inner = self.inner.lock().expect("serve lock");
        inner.jobs.get(job).is_some_and(|j| j.cancel_requested)
    }
}

/// A running daemon: the listener thread, its worker pool, and the
/// shared state. Dropping it does NOT stop the daemon — send `drain`
/// and call [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, replays the journal (re-enqueueing every
    /// job a previous daemon left unfinished), writes the `addr` file,
    /// and spawns the worker pool plus the accept loop.
    ///
    /// # Errors
    /// Returns a message when the state directory, journal, or socket
    /// cannot be set up.
    pub fn start(options: &ServeOptions) -> Result<Server, String> {
        std::fs::create_dir_all(&options.state_dir)
            .map_err(|e| format!("{}: {e}", options.state_dir.display()))?;
        let (journal, jobs, next_id) = Journal::open(&options.state_dir)?;
        let queue: VecDeque<String> = recoverable(&jobs).into();
        let recovered = queue.len();
        let listener =
            TcpListener::bind(&options.addr).map_err(|e| format!("bind {}: {e}", options.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;
        let shared = Arc::new(Shared {
            state_dir: options.state_dir.clone(),
            inner: Mutex::new(Inner {
                jobs,
                queue,
                journal,
                draining: false,
                shutdown: false,
                next_id,
                running: 0,
            }),
            work: Condvar::new(),
            bytes_streamed: AtomicU64::new(0),
            workers: options.workers.max(1),
            local_addr,
        });
        // The addr file lands via rename so a polling script never
        // reads a partial write.
        let addr_tmp = options.state_dir.join(format!("{ADDR_FILE}.tmp"));
        let addr_path = options.state_dir.join(ADDR_FILE);
        std::fs::write(&addr_tmp, format!("{local_addr}\n"))
            .and_then(|()| std::fs::rename(&addr_tmp, &addr_path))
            .map_err(|e| format!("{}: {e}", addr_path.display()))?;
        eprintln!(
            "serve: listening on {local_addr} ({} workers, state dir {}{})",
            shared.workers,
            options.state_dir.display(),
            if recovered > 0 {
                format!(", {recovered} job(s) recovered")
            } else {
                String::new()
            }
        );
        let workers = (0..shared.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker::worker_loop(&shared))
            })
            .collect();
        let accept_shared = Arc::clone(&shared);
        let listener_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.inner.lock().expect("serve lock").shutdown {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || handle_connection(&shared, stream));
            }
        });
        Ok(Server {
            shared,
            listener: Some(listener_thread),
            workers,
        })
    }

    /// The bound address (useful when serving on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Waits for the daemon to shut down (a client must send `drain`).
    pub fn join(mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Serves one client connection until EOF, error, or a terminating verb
/// (`subscribe` after its stream, `drain` after shutdown).
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        let request = match Request::parse(trimmed) {
            Ok(request) => request,
            Err(e) => {
                if writeln!(writer, "err {e}").is_err() {
                    return;
                }
                continue;
            }
        };
        let outcome = match request {
            Request::Ping => writeln!(writer, "ok pong").map_err(|e| e.to_string()),
            Request::Submit {
                nbytes,
                name,
                timeout_secs,
                checkpoint_every,
            } => handle_submit(
                shared,
                &mut reader,
                &mut writer,
                nbytes,
                name,
                timeout_secs,
                checkpoint_every,
            ),
            Request::Status { job } => handle_status(shared, &mut writer, &job),
            Request::Result { job } => handle_result(shared, &mut writer, &job),
            Request::Cancel { job } => handle_cancel(shared, &mut writer, &job),
            Request::Stats => handle_stats(shared, &mut writer),
            Request::Subscribe { job } => {
                let _ = handle_subscribe(shared, &mut writer, &job);
                return;
            }
            Request::Drain => {
                let _ = handle_drain(shared, &mut writer);
                return;
            }
        };
        if outcome.is_err() {
            return;
        }
    }
}

/// Reports a protocol-level error to the client; connection-level I/O
/// failures bubble as `Err`.
fn refuse(writer: &mut TcpStream, msg: &str) -> Result<(), String> {
    writeln!(writer, "err {msg}").map_err(|e| e.to_string())
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    shared: &Arc<Shared>,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    nbytes: usize,
    name: Option<String>,
    timeout_secs: Option<u64>,
    checkpoint_every: Option<u64>,
) -> Result<(), String> {
    if nbytes > MAX_SCENARIO_BYTES {
        return refuse(writer, "scenario too large");
    }
    let mut bytes = vec![0u8; nbytes];
    reader
        .read_exact(&mut bytes)
        .map_err(|e| format!("short submit body: {e}"))?;
    let Ok(text) = String::from_utf8(bytes) else {
        return refuse(writer, "scenario must be UTF-8");
    };
    // Validate up front so a bad scenario is the submitter's error, not
    // a failed job: parse, parameter checks, expansion, config builds.
    let scenario = match Scenario::parse_str(&text) {
        Ok(scenario) => scenario,
        Err(e) => return refuse(writer, &one_line(&format!("bad scenario: {e}"))),
    };
    if let Err(e) = scenario.validate() {
        return refuse(writer, &one_line(&format!("bad scenario: {e}")));
    }
    let cases = match scenario.expand() {
        Ok(cases) => cases,
        Err(e) => return refuse(writer, &one_line(&format!("bad scenario: {e}"))),
    };
    for case in &cases {
        if let Err(e) = case.spec.build() {
            return refuse(
                writer,
                &one_line(&format!("bad scenario: case {:?}: {e}", case.label)),
            );
        }
    }
    let name = sanitize_token(name.as_deref().unwrap_or(&scenario.name));
    // Default checkpoint cadence: a tenth of the horizon, at least 1s.
    let checkpoint_every =
        checkpoint_every.unwrap_or_else(|| (scenario.run.horizon_secs / 10).max(1));
    let timeout_secs = timeout_secs.unwrap_or(0);

    let mut inner = shared.inner.lock().expect("serve lock");
    if inner.draining {
        drop(inner);
        return refuse(writer, "draining: no new jobs");
    }
    let id = format!("j{}", inner.next_id);
    inner.next_id += 1;
    // Scenario bytes land before the journal line: a crash in between
    // leaves an orphan file, never a job without its scenario.
    let scn_path = shared.state_dir.join(format!("job-{id}.scn"));
    if let Err(e) = std::fs::write(&scn_path, &text) {
        drop(inner);
        return refuse(writer, &format!("store scenario: {e}"));
    }
    inner
        .journal
        .append(&format!(
            "accepted {id} {name} timeout={timeout_secs} ckpt={checkpoint_every}"
        ))
        .map_err(|e| e.to_string())?;
    inner.jobs.insert(
        id.clone(),
        JobRecord {
            id: id.clone(),
            name,
            timeout_secs,
            checkpoint_every,
            state: JobState::Queued,
            cancel_requested: false,
        },
    );
    inner.queue.push_back(id.clone());
    drop(inner);
    shared.work.notify_all();
    writeln!(writer, "ok submitted {id}").map_err(|e| e.to_string())
}

fn handle_status(shared: &Arc<Shared>, writer: &mut TcpStream, job: &str) -> Result<(), String> {
    let inner = shared.inner.lock().expect("serve lock");
    let Some(record) = inner.jobs.get(job) else {
        drop(inner);
        return refuse(writer, &format!("no such job {job}"));
    };
    let detail = match (&record.state, record.cancel_requested) {
        (JobState::Failed(msg), _) => format!(" {}", one_line(msg)),
        (state, true) if !state.terminal() => " cancelling".to_string(),
        _ => String::new(),
    };
    let line = format!("ok status {job} {}{detail}", record.state.word());
    drop(inner);
    writeln!(writer, "{line}").map_err(|e| e.to_string())
}

fn handle_result(shared: &Arc<Shared>, writer: &mut TcpStream, job: &str) -> Result<(), String> {
    let state = {
        let inner = shared.inner.lock().expect("serve lock");
        match inner.jobs.get(job) {
            Some(record) => record.state.clone(),
            None => {
                drop(inner);
                return refuse(writer, &format!("no such job {job}"));
            }
        }
    };
    if state != JobState::Completed {
        return refuse(
            writer,
            &format!("job {job} is {}, not completed", state.word()),
        );
    }
    let path = shared.state_dir.join(format!("job-{job}.csv"));
    let csv = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(writer, "ok result {job} {}", csv.len()).map_err(|e| e.to_string())?;
    writer.write_all(&csv).map_err(|e| e.to_string())
}

fn handle_cancel(shared: &Arc<Shared>, writer: &mut TcpStream, job: &str) -> Result<(), String> {
    let mut inner = shared.inner.lock().expect("serve lock");
    let Some(record) = inner.jobs.get(job).cloned() else {
        drop(inner);
        return refuse(writer, &format!("no such job {job}"));
    };
    if record.state.terminal() {
        drop(inner);
        return refuse(
            writer,
            &format!("job {job} already {}", record.state.word()),
        );
    }
    inner
        .journal
        .append(&format!("cancel-requested {job}"))
        .map_err(|e| e.to_string())?;
    let line = if record.state == JobState::Queued {
        // Never started: cancel immediately, no worker involved.
        inner
            .journal
            .append(&format!("cancelled {job}"))
            .map_err(|e| e.to_string())?;
        inner.queue.retain(|id| id != job);
        if let Some(r) = inner.jobs.get_mut(job) {
            r.state = JobState::Cancelled;
            r.cancel_requested = false;
        }
        format!("ok cancelled {job}")
    } else {
        if let Some(r) = inner.jobs.get_mut(job) {
            r.cancel_requested = true;
        }
        format!("ok cancelling {job}")
    };
    drop(inner);
    shared.work.notify_all();
    writeln!(writer, "{line}").map_err(|e| e.to_string())
}

fn handle_stats(shared: &Arc<Shared>, writer: &mut TcpStream) -> Result<(), String> {
    let inner = shared.inner.lock().expect("serve lock");
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut cancelled = 0u64;
    for job in inner.jobs.values() {
        match job.state {
            JobState::Completed => completed += 1,
            JobState::Failed(_) => failed += 1,
            JobState::Cancelled => cancelled += 1,
            _ => {}
        }
    }
    let line = format!(
        "ok stats accepted={} queued={} running={} completed={completed} failed={failed} \
         cancelled={cancelled} workers={} busy={} bytes_streamed={}",
        inner.jobs.len(),
        inner.queue.len(),
        inner.running,
        shared.workers,
        inner.running,
        shared.bytes_streamed.load(Ordering::Relaxed),
    );
    drop(inner);
    writeln!(writer, "{line}").map_err(|e| e.to_string())
}

/// Streams a job's live samples until its end-of-log frame, then
/// reports the job's final state. The worker flushes its sample log at
/// every boundary and closes it with an end frame *before* journaling
/// the terminal state, so a subscriber observing a terminal job only
/// needs a short grace period for the tail of the file.
fn handle_subscribe(shared: &Arc<Shared>, writer: &mut TcpStream, job: &str) -> Result<(), String> {
    {
        let inner = shared.inner.lock().expect("serve lock");
        if !inner.jobs.contains_key(job) {
            drop(inner);
            return refuse(writer, &format!("no such job {job}"));
        }
    }
    writeln!(writer, "ok subscribed {job}").map_err(|e| e.to_string())?;
    let path = shared.state_dir.join(format!("job-{job}.samples.trc"));
    let mut tailer = TraceTailer::new(&path);
    let mut grace = SUBSCRIBE_GRACE_POLLS;
    loop {
        let frames = match tailer.poll() {
            Ok(frames) => frames,
            Err(e) => return refuse(writer, &format!("sample log: {e}")),
        };
        for frame in frames {
            if let TraceFrame::Event { payload, .. } = frame {
                let line = format!("sample {}\n", String::from_utf8_lossy(&payload));
                writer
                    .write_all(line.as_bytes())
                    .map_err(|e| e.to_string())?;
                shared
                    .bytes_streamed
                    .fetch_add(line.len() as u64, Ordering::Relaxed);
            }
        }
        let state = {
            let inner = shared.inner.lock().expect("serve lock");
            inner.jobs.get(job).map(|j| j.state.clone())
        };
        let terminal = state.as_ref().is_some_and(JobState::terminal);
        if tailer.finished() || (terminal && grace == 0) {
            let word = state.map_or("unknown", |s| s.word());
            return writeln!(writer, "end {job} {word}").map_err(|e| e.to_string());
        }
        if terminal {
            grace -= 1;
        }
        std::thread::sleep(SUBSCRIBE_POLL);
    }
}

/// Refuses further submissions, waits for the queue and workers to go
/// idle, acknowledges, then shuts the daemon down.
fn handle_drain(shared: &Arc<Shared>, writer: &mut TcpStream) -> Result<(), String> {
    let mut inner = shared.inner.lock().expect("serve lock");
    inner.draining = true;
    while !(inner.queue.is_empty() && inner.running == 0) {
        inner = shared.work.wait(inner).expect("serve lock");
    }
    inner.shutdown = true;
    drop(inner);
    shared.work.notify_all();
    writeln!(writer, "ok drained").map_err(|e| e.to_string())?;
    // Unblock the accept loop so the listener thread can observe the
    // shutdown flag and exit.
    let _ = TcpStream::connect(shared.local_addr);
    Ok(())
}

/// Collapses a multi-line message into one protocol-safe line.
fn one_line(msg: &str) -> String {
    msg.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Restricts a job name to one protocol-safe token.
fn sanitize_token(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_whitespace() { '-' } else { c })
        .collect();
    if cleaned.is_empty() {
        "job".to_string()
    } else {
        cleaned
    }
}

//! `scrip-sim serve`: a crash-safe scenario job daemon with live
//! telemetry streaming.
//!
//! The daemon listens on a TCP socket and speaks a small line-delimited
//! protocol (see [`protocol::Request`]): clients submit scenario files
//! over the wire, poll job status, fetch finished CSVs, cancel jobs,
//! subscribe to a live stream of per-boundary probe samples, read
//! daemon counters, and drain the daemon for shutdown.
//!
//! Three pieces make it crash-safe and deterministic:
//!
//! * **A persistent queue.** Every job transition is one appended line
//!   in `journal.log` inside the state directory (the `journal`
//!   module); the
//!   submitted scenario bytes live next to it as `job-<id>.scn`. On
//!   restart the daemon replays the journal and re-enqueues every job
//!   that had not reached a terminal state.
//! * **Periodic checkpoints.** Workers run jobs through the existing
//!   [`Session`](scrip_core::obs::Session)/scenario runner, snapshotting
//!   qualifying runs (one case, one replication, queue-level, one
//!   shard) at interior multiples of the checkpoint interval. A
//!   restarted daemon resumes such a job from its latest `SCRIPCKP`
//!   snapshot — and because resume→finish is byte-identical to an
//!   uninterrupted run (the PR 8 invariant), the served CSV equals the
//!   batch `scrip-sim run` CSV even across a kill.
//! * **Tailable telemetry.** Each job appends one frame per sampling
//!   boundary to `job-<id>.samples.trc` — a `SCRIPTRC` container whose
//!   event payloads are human-readable sample lines — flushed at every
//!   boundary and closed with the format's end frame. Subscribers (and
//!   `scrip-sim tail`) follow it with
//!   [`TraceTailer`](scrip_des::trace::TraceTailer), the consumer side
//!   of `TraceReader::extend`.
//!
//! The daemon never re-simulates inside the protocol layer: results are
//! whatever the worker wrote, so a served run's output is the scenario
//! runner's output, byte for byte.

mod client;
mod journal;
mod protocol;
mod server;
mod worker;

pub use client::Client;
pub use journal::{JobRecord, JobState};
pub use protocol::Request;
pub use server::{ServeOptions, Server};

/// Name of the per-daemon address file inside the state directory:
/// written once the listener is bound, so scripts (and the integration
/// tests) can serve on port 0 and discover the ephemeral port.
pub const ADDR_FILE: &str = "addr";

/// Environment variable naming a per-boundary worker sleep in
/// milliseconds. Test pacing hook: it slows a job down without touching
/// its deterministic output, so a test can reliably kill the daemon
/// mid-run and exercise restart recovery.
pub const THROTTLE_ENV: &str = "SCRIP_SERVE_THROTTLE_MS";

//! The daemon's line-delimited wire protocol.
//!
//! Every request is one ASCII line. Responses start with `ok` or `err`;
//! two verbs continue past their first line: `result` (followed by the
//! announced number of raw CSV bytes) and `subscribe` (followed by
//! `sample <payload>` lines and a final `end <job> <state>` line).
//!
//! ```text
//! submit <nbytes> [name=<token>] [timeout=<secs>] [ckpt=<simsecs>]
//!   → ok submitted <job>            (after <nbytes> raw scenario bytes)
//! status <job>                      → ok status <job> <state> [detail]
//! result <job>                      → ok result <job> <nbytes>\n<bytes>
//! cancel <job>                      → ok cancelled <job> | ok cancelling <job>
//! subscribe <job>                   → ok subscribed <job>, then the stream
//! stats                             → ok stats k=v ...
//! drain                             → ok drained        (when idle)
//! ping                              → ok pong
//! ```

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a scenario: `nbytes` of raw scenario-file bytes follow
    /// the request line.
    Submit {
        /// Raw byte length of the scenario file that follows.
        nbytes: usize,
        /// Client-chosen job name (defaults to the scenario's own name).
        name: Option<String>,
        /// Wall-clock budget; the worker fails the job past it.
        timeout_secs: Option<u64>,
        /// Checkpoint interval in simulated seconds (qualifying jobs
        /// only); defaults to a tenth of the horizon.
        checkpoint_every: Option<u64>,
    },
    /// Query one job's state.
    Status {
        /// The job id (`j1`, `j2`, …).
        job: String,
    },
    /// Fetch a completed job's CSV.
    Result {
        /// The job id.
        job: String,
    },
    /// Request cancellation at the job's next sampling boundary.
    Cancel {
        /// The job id.
        job: String,
    },
    /// Stream the job's live samples until its end-of-log frame.
    Subscribe {
        /// The job id.
        job: String,
    },
    /// Read the daemon's counters.
    Stats,
    /// Stop accepting submissions, wait for the queue to empty, then
    /// shut the daemon down.
    Drain,
    /// Liveness check.
    Ping,
}

impl Request {
    /// Parses one request line (no trailing newline).
    ///
    /// # Errors
    /// Returns a human-readable message for unknown verbs, missing
    /// operands, or malformed key=value options.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut words = line.split_whitespace();
        let verb = words.next().ok_or("empty request")?;
        let mut job_operand = |verb: &str| -> Result<String, String> {
            match words.next() {
                Some(job) => Ok(job.to_string()),
                None => Err(format!("{verb} needs a job id")),
            }
        };
        match verb {
            "status" => Ok(Request::Status {
                job: job_operand("status")?,
            }),
            "result" => Ok(Request::Result {
                job: job_operand("result")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: job_operand("cancel")?,
            }),
            "subscribe" => Ok(Request::Subscribe {
                job: job_operand("subscribe")?,
            }),
            "stats" => Ok(Request::Stats),
            "drain" => Ok(Request::Drain),
            "ping" => Ok(Request::Ping),
            "submit" => {
                let nbytes: usize = words
                    .next()
                    .ok_or("submit needs a byte count")?
                    .parse()
                    .map_err(|_| "submit byte count must be an integer".to_string())?;
                let mut name = None;
                let mut timeout_secs = None;
                let mut checkpoint_every = None;
                for opt in words {
                    let (key, value) = opt
                        .split_once('=')
                        .ok_or_else(|| format!("malformed submit option {opt:?}"))?;
                    match key {
                        "name" => name = Some(value.to_string()),
                        "timeout" => {
                            timeout_secs = Some(value.parse().map_err(|_| {
                                format!("timeout must be an integer, got {value:?}")
                            })?);
                        }
                        "ckpt" => {
                            checkpoint_every =
                                Some(value.parse().map_err(|_| {
                                    format!("ckpt must be an integer, got {value:?}")
                                })?);
                        }
                        _ => return Err(format!("unknown submit option {key:?}")),
                    }
                }
                Ok(Request::Submit {
                    nbytes,
                    name,
                    timeout_secs,
                    checkpoint_every,
                })
            }
            _ => Err(format!("unknown verb {verb:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse_with_their_operands() {
        assert_eq!(
            Request::parse("submit 120 name=night-sweep timeout=30 ckpt=100"),
            Ok(Request::Submit {
                nbytes: 120,
                name: Some("night-sweep".into()),
                timeout_secs: Some(30),
                checkpoint_every: Some(100),
            })
        );
        assert_eq!(
            Request::parse("submit 7"),
            Ok(Request::Submit {
                nbytes: 7,
                name: None,
                timeout_secs: None,
                checkpoint_every: None,
            })
        );
        assert_eq!(
            Request::parse("status j3"),
            Ok(Request::Status { job: "j3".into() })
        );
        assert_eq!(
            Request::parse("subscribe j1"),
            Ok(Request::Subscribe { job: "j1".into() })
        );
        assert_eq!(Request::parse("stats"), Ok(Request::Stats));
        assert_eq!(Request::parse("drain"), Ok(Request::Drain));
        assert_eq!(Request::parse("ping"), Ok(Request::Ping));
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("launch j1").is_err());
        assert!(Request::parse("status").is_err());
        assert!(Request::parse("submit").is_err());
        assert!(Request::parse("submit many").is_err());
        assert!(Request::parse("submit 9 timeout=soon").is_err());
        assert!(Request::parse("submit 9 color=red").is_err());
        assert!(Request::parse("submit 9 name").is_err());
    }
}

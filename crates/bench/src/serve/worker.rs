//! The worker pool: claims jobs off the shared queue and runs them
//! through the scenario runner's exact execution recipe, with periodic
//! checkpoints, live sample streaming, cancel-at-boundary, and
//! wall-clock timeouts.
//!
//! **Determinism.** A worker reproduces [`run_scenario`]'s output byte
//! for byte: same case expansion order, same per-replication seed
//! derivation (`SeedSequence::new(seed).replication_seed(rep)`), same
//! probe set ([`session_probes`]), same `WEALTH_GINI` guard — only the
//! CSV bytes are persisted, and the CSV contains no wall-clock values.
//! Chunked `run_until` calls at checkpoint/sample boundaries are
//! output-neutral (the session contract), and a resumed checkpoint
//! finishes byte-identically to an uninterrupted run (the PR 8
//! invariant), so a served CSV equals `scrip-sim run`'s even across a
//! daemon kill.

use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use scrip_core::des::trace::{TraceHeader, TraceWriter};
use scrip_core::des::{SeedSequence, SimTime};
use scrip_core::obs::{ids, LiveSample, Session};

use super::journal::{JobRecord, JobState};
use super::server::Shared;
use super::THROTTLE_ENV;
use crate::scenario::{session_probes, CaseResult, ReplicationRun, Scenario, ScenarioResult};

/// Claims and runs jobs until shutdown.
pub(super) fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut inner = shared.inner.lock().expect("serve lock");
            loop {
                if inner.shutdown {
                    return;
                }
                if let Some(id) = inner.queue.pop_front() {
                    if inner.journal.append(&format!("running {id}")).is_err() {
                        // Journal write failure is fatal for the job,
                        // not the daemon.
                        continue;
                    }
                    inner.running += 1;
                    let record = inner.jobs.get_mut(&id).expect("queued job exists");
                    record.state = JobState::Running;
                    break record.clone();
                }
                inner = shared.work.wait(inner).expect("serve lock");
            }
        };
        shared.work.notify_all();
        let outcome = run_job(shared, &job);
        let mut inner = shared.inner.lock().expect("serve lock");
        let line = match &outcome {
            JobState::Completed => format!("completed {}", job.id),
            JobState::Cancelled => format!("cancelled {}", job.id),
            JobState::Failed(msg) => format!("failed {} {msg}", job.id),
            _ => unreachable!("run_job returns terminal states"),
        };
        let _ = inner.journal.append(&line);
        if let Some(record) = inner.jobs.get_mut(&job.id) {
            record.state = outcome;
            record.cancel_requested = false;
        }
        inner.running -= 1;
        drop(inner);
        shared.work.notify_all();
    }
}

/// The live sample log: a `SCRIPTRC` container whose event payloads are
/// human-readable sample lines, flushed per sample so tailing
/// subscribers see each boundary as it lands.
struct SampleLog {
    writer: TraceWriter<BufWriter<std::fs::File>>,
    seq: u64,
}

impl SampleLog {
    fn create(path: &Path, name: &str, seed: u64) -> Result<SampleLog, String> {
        let file = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut writer = TraceWriter::new(
            BufWriter::new(file),
            TraceHeader {
                fingerprint: fnv64(name.as_bytes()),
                seed,
            },
        );
        // Flush the header immediately so subscribers can validate it
        // before the first boundary lands.
        writer.flush().map_err(|e| e.to_string())?;
        Ok(SampleLog { writer, seq: 0 })
    }

    /// Appends one boundary sample. Telemetry is best-effort: I/O
    /// failures drop the frame, never the job.
    fn push(&mut self, label: &str, seed: u64, sample: &LiveSample) {
        let gini = match sample.wealth_gini {
            Some(g) => format!("{g:.6}"),
            None => "na".to_string(),
        };
        let payload = format!(
            "case={label} seed={seed} t_us={} events={} peers={} purchases={} denied={} \
             spent={} gini={gini}",
            sample.time.as_micros(),
            sample.events_processed,
            sample.peers,
            sample.purchases,
            sample.denied,
            sample.total_spent,
        );
        let seq = self.seq;
        self.seq += 1;
        let _ = self
            .writer
            .event(sample.time, seq, payload.as_bytes())
            .and_then(|()| self.writer.flush());
    }

    /// Closes the log with the format's end frame (written on every
    /// terminal state, so subscribers always see an explicit end).
    fn end(&mut self, time: SimTime, events: u64) {
        let _ = self
            .writer
            .end(time, events)
            .and_then(|()| self.writer.flush());
    }
}

/// Runs one job to a terminal state. Never panics the worker: every
/// failure becomes `JobState::Failed`.
fn run_job(shared: &Arc<Shared>, job: &JobRecord) -> JobState {
    match execute(shared, job) {
        Ok(state) => state,
        Err(msg) => JobState::Failed(one_line(&msg)),
    }
}

fn execute(shared: &Arc<Shared>, job: &JobRecord) -> Result<JobState, String> {
    let dir = &shared.state_dir;
    let scn_path = dir.join(format!("job-{}.scn", job.id));
    let ckpt_path = dir.join(format!("job-{}.ckpt", job.id));
    let samples_path = dir.join(format!("job-{}.samples.trc", job.id));

    let text =
        std::fs::read_to_string(&scn_path).map_err(|e| format!("{}: {e}", scn_path.display()))?;
    let scenario = Scenario::parse_str(&text).map_err(|e| e.to_string())?;
    let cases = scenario.expand().map_err(|e| e.to_string())?;
    let configs: Vec<_> = cases
        .iter()
        .map(|c| {
            c.spec
                .build()
                .map_err(|e| format!("case {:?}: {e}", c.label))
        })
        .collect::<Result<_, _>>()?;
    let reps = scenario.run.replications;
    let horizon = SimTime::from_secs(scenario.run.horizon_secs);
    // Only this shape can checkpoint (Session::checkpoint's contract);
    // anything else restarts from scratch after a daemon kill, which is
    // merely slower, not wrong.
    let qualifying = cases.len() == 1
        && reps == 1
        && configs
            .first()
            .is_some_and(|c: &scrip_core::market::MarketConfig| {
                c.streaming.is_none() && c.shards == 1
            });
    // Truncating on (re)start keeps the sample log consistent with this
    // execution: a resumed job streams only post-resume boundaries.
    let samples = Arc::new(Mutex::new(SampleLog::create(
        &samples_path,
        &job.name,
        scenario.run.seed,
    )?));
    let throttle = std::env::var(THROTTLE_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis);
    let deadline =
        (job.timeout_secs > 0).then(|| Instant::now() + Duration::from_secs(job.timeout_secs));
    let seq = SeedSequence::new(scenario.run.seed);
    let start = Instant::now();

    let mut case_results: Vec<CaseResult> = cases
        .iter()
        .map(|c| CaseResult {
            label: c.label.clone(),
            spec: c.spec.clone(),
            reps: Vec::with_capacity(reps),
            wall: Duration::ZERO,
        })
        .collect();
    let mut total_events = 0u64;
    let mut clock = SimTime::ZERO;

    for (ci, case) in cases.iter().enumerate() {
        for rep in 0..reps as u64 {
            let seed = seq.replication_seed(rep);
            let probes = session_probes(&scenario.run);
            let rep_start = Instant::now();
            let mut session = if qualifying && ckpt_path.exists() {
                let bytes = std::fs::read(&ckpt_path)
                    .map_err(|e| format!("{}: {e}", ckpt_path.display()))?;
                match Session::resume(&configs[ci], probes, &bytes) {
                    Ok(session) => session,
                    Err(_) => {
                        // A stale or damaged snapshot falls back to a
                        // clean start — slower, still deterministic.
                        let _ = std::fs::remove_file(&ckpt_path);
                        fresh_session(&configs[ci], seed, &scenario)?
                    }
                }
            } else {
                fresh_session(&configs[ci], seed, &scenario)?
            };
            let label = case.label.clone();
            let log = Arc::clone(&samples);
            session.stream_samples_to(Box::new(move |sample: &LiveSample| {
                log.lock()
                    .expect("sample log lock")
                    .push(&label, seed, sample);
            }));

            // Advance in chunks so cancel/timeout are honored at
            // boundaries and checkpoints land at their cadence.
            for stop in stop_schedule(&configs[ci], job.checkpoint_every, horizon) {
                if stop <= session.now() {
                    continue;
                }
                session.run_until(stop);
                if let Some(pause) = throttle {
                    std::thread::sleep(pause);
                }
                let at_ckpt = qualifying
                    && job.checkpoint_every > 0
                    && stop.as_micros() % (job.checkpoint_every * 1_000_000) == 0
                    && stop < horizon;
                if at_ckpt {
                    let bytes = session.checkpoint().map_err(|e| e.to_string())?;
                    write_atomic(&ckpt_path, &bytes)?;
                }
                if shared.cancel_requested(&job.id) {
                    // Stop at this boundary: persist a final snapshot
                    // (qualifying jobs), close the sample log, report
                    // cancelled — not failed.
                    if qualifying {
                        let bytes = session.checkpoint().map_err(|e| e.to_string())?;
                        write_atomic(&ckpt_path, &bytes)?;
                    }
                    let events = session.stats().events_processed;
                    samples
                        .lock()
                        .expect("sample log lock")
                        .end(session.now(), total_events + events);
                    return Ok(JobState::Cancelled);
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    let events = session.stats().events_processed;
                    samples
                        .lock()
                        .expect("sample log lock")
                        .end(session.now(), total_events + events);
                    return Ok(JobState::Failed(format!(
                        "timed out after {}s",
                        job.timeout_secs
                    )));
                }
            }
            session.run_until(horizon);
            total_events += session.stats().events_processed;
            clock = session.now();
            let (record, _model) = session.finish();
            if record.get(ids::WEALTH_GINI).is_none() {
                return Ok(JobState::Failed(format!(
                    "seed {seed}: market has no peers at the horizon"
                )));
            }
            case_results[ci].reps.push(ReplicationRun { seed, record });
            case_results[ci].wall += rep_start.elapsed();
        }
    }

    let result = ScenarioResult {
        scenario: scenario.clone(),
        cases: case_results,
        wall: start.elapsed(),
    };
    write_atomic(
        &dir.join(format!("job-{}.csv", job.id)),
        result.to_csv().as_bytes(),
    )?;
    let _ = std::fs::remove_file(&ckpt_path);
    samples
        .lock()
        .expect("sample log lock")
        .end(clock, total_events);
    Ok(JobState::Completed)
}

fn fresh_session(
    config: &scrip_core::market::MarketConfig,
    seed: u64,
    scenario: &Scenario,
) -> Result<Session, String> {
    let mut session = Session::from_config(config, seed).map_err(|e| e.to_string())?;
    for probe in session_probes(&scenario.run) {
        session.attach(probe);
    }
    Ok(session)
}

/// The ascending union of sampling-grid and checkpoint-cadence
/// boundaries strictly inside the horizon: where the worker pauses to
/// honor cancels/timeouts and to snapshot.
fn stop_schedule(
    config: &scrip_core::market::MarketConfig,
    checkpoint_every: u64,
    horizon: SimTime,
) -> Vec<SimTime> {
    let mut stops: Vec<u64> = Vec::new();
    let horizon_us = horizon.as_micros();
    let interval_us = config.sample_interval.as_micros();
    if interval_us > 0 {
        let mut t = interval_us;
        while t < horizon_us {
            stops.push(t);
            t += interval_us;
        }
    }
    let ckpt_us = checkpoint_every.saturating_mul(1_000_000);
    if ckpt_us > 0 {
        let mut t = ckpt_us;
        while t < horizon_us {
            stops.push(t);
            t += ckpt_us;
        }
    }
    stops.sort_unstable();
    stops.dedup();
    stops.into_iter().map(SimTime::from_micros).collect()
}

/// Writes via a temp file + rename so readers (and a resuming daemon)
/// never observe a partial file.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp: PathBuf = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))
}

/// FNV-1a over bytes — the sample-log header fingerprint (job-name
/// derived; informational, not a replay key).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Collapses a multi-line failure into one journal/protocol-safe line.
fn one_line(msg: &str) -> String {
    msg.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, RunnerOptions};
    use crate::serve::{Client, ServeOptions, Server};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scrip-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_scenario_text() -> String {
        let mut sc = Scenario::new("tiny-served", scrip_core::spec::MarketSpec::new(30, 10));
        sc.base.set("sample", "50").expect("valid");
        sc.run.horizon_secs = 400;
        sc.run.seed = 7;
        sc.to_file_string()
    }

    #[test]
    fn served_job_matches_batch_runner_byte_for_byte() {
        let dir = temp_dir("match");
        let server = Server::start(&ServeOptions::new("127.0.0.1:0", &dir)).expect("server starts");
        let addr = server.local_addr().to_string();
        let text = tiny_scenario_text();

        let mut client = Client::connect(&addr).expect("connects");
        assert_eq!(client.ping().as_deref(), Ok("pong"));
        let job = client
            .submit(&text, Some("tiny"), None, None)
            .expect("submits");
        assert_eq!(job, "j1");
        let state = client.wait_terminal(&job, 60).expect("finishes");
        assert_eq!(state, "completed");
        let served = client.result_csv(&job).expect("result");

        let scenario = Scenario::parse_str(&text).expect("parses");
        let batch = run_scenario(&scenario, &RunnerOptions::with_threads(1))
            .expect("runs")
            .to_csv();
        assert_eq!(served, batch, "served CSV must equal the batch CSV");

        let stats = client.stats().expect("stats");
        assert!(stats.contains("completed=1"), "stats: {stats}");
        client.drain().expect("drains");
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn subscribe_streams_samples_until_the_end_frame() {
        let dir = temp_dir("stream");
        let server = Server::start(&ServeOptions::new("127.0.0.1:0", &dir)).expect("server starts");
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).expect("connects");
        let job = client
            .submit(&tiny_scenario_text(), None, None, None)
            .expect("submits");

        let mut lines = Vec::new();
        let watcher = Client::connect(&addr).expect("connects");
        let state = watcher
            .subscribe(&job, |line| lines.push(line.to_string()))
            .expect("streams");
        assert_eq!(state, "completed");
        // Boundaries at 50..400 with sample=50: 8 samples.
        assert_eq!(lines.len(), 8, "lines: {lines:?}");
        assert!(lines[0].contains("case=base") || lines[0].contains("case="));
        assert!(lines
            .iter()
            .all(|l| l.contains("events=") && l.contains("gini=")));

        let stats = client.stats().expect("stats");
        let streamed: u64 = stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("bytes_streamed="))
            .and_then(|v| v.parse().ok())
            .expect("counter present");
        assert!(streamed > 0);
        client.drain().expect("drains");
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_jobs_end_cancelled_not_failed() {
        let dir = temp_dir("cancel");
        // One worker, two jobs: the second sits queued and cancels
        // instantly; the first is throttled via a long scenario so a
        // mid-run cancel lands at a boundary.
        let mut options = ServeOptions::new("127.0.0.1:0", &dir);
        options.workers = 1;
        let server = Server::start(&options).expect("server starts");
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).expect("connects");

        let mut sc = Scenario::new("slow", scrip_core::spec::MarketSpec::new(50, 10));
        sc.base.set("sample", "10").expect("valid");
        sc.run.horizon_secs = 100_000;
        let slow = sc.to_file_string();
        let running = client.submit(&slow, None, None, None).expect("submits");
        let queued = client
            .submit(&tiny_scenario_text(), None, None, None)
            .expect("submits");

        let reply = client.cancel(&queued).expect("cancels queued");
        assert!(reply.starts_with("cancelled"), "reply: {reply}");
        assert_eq!(client.status(&queued).expect("status"), "cancelled");

        // Wait until the long job is actually running, then cancel it.
        let mut state = String::new();
        for _ in 0..400 {
            state = client.status(&running).expect("status");
            if state == "running" {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        assert_eq!(state, "running");
        client.cancel(&running).expect("cancels running");
        let terminal = client.wait_terminal(&running, 60).expect("terminates");
        assert_eq!(terminal, "cancelled", "cancel is not a failure");

        client.drain().expect("drains");
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeouts_fail_the_job_with_a_reason() {
        let dir = temp_dir("timeout");
        let server = Server::start(&ServeOptions::new("127.0.0.1:0", &dir)).expect("server starts");
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).expect("connects");
        let mut sc = Scenario::new("slow", scrip_core::spec::MarketSpec::new(50, 10));
        sc.base.set("sample", "10").expect("valid");
        sc.run.horizon_secs = 1_000_000;
        let job = client
            .submit(&sc.to_file_string(), None, Some(1), None)
            .expect("submits");
        let state = client.wait_terminal(&job, 120).expect("terminates");
        assert_eq!(state, "failed");
        let status = client.status(&job).expect("status");
        assert!(status.contains("timed out"), "status: {status}");
        client.drain().expect("drains");
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_schedule_unions_sampling_and_checkpoint_boundaries() {
        let config = scrip_core::spec::MarketSpec::new(10, 10)
            .build()
            .expect("builds");
        // Default sample interval is 100s; checkpoints every 250s.
        let stops = stop_schedule(&config, 250, SimTime::from_secs(600));
        let secs: Vec<u64> = stops.iter().map(|t| t.as_micros() / 1_000_000).collect();
        assert_eq!(secs, vec![100, 200, 250, 300, 400, 500]);
    }
}

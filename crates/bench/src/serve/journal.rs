//! The daemon's persistent queue: an append-only, line-oriented job
//! journal.
//!
//! Every job transition is one appended line in `journal.log`:
//!
//! ```text
//! accepted j1 <name> timeout=<secs> ckpt=<simsecs>
//! running j1
//! completed j1
//! failed j1 <message…>
//! cancel-requested j1
//! cancelled j1
//! ```
//!
//! Lines are written with a plain `write(2)` per transition (no
//! userspace buffering), so a `kill -9` of the daemon loses at most the
//! transition being written — and an interrupted final line is simply
//! ignored on replay. Replay folds the log into per-job records: jobs
//! whose last state is not terminal go back on the queue (a `running`
//! job restarts, resuming from its checkpoint when one exists), and a
//! non-terminal job with a pending cancel request is finalized as
//! cancelled.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// File name of the journal inside the state directory.
pub const JOURNAL_FILE: &str = "journal.log";

/// A job's lifecycle state, as recorded in the journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; its CSV is on disk.
    Completed,
    /// Errored or timed out, with the reason.
    Failed(String),
    /// Stopped by a cancel request (not a failure).
    Cancelled,
}

impl JobState {
    /// Whether the state is terminal (no worker will touch the job
    /// again).
    pub fn terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed(_) | JobState::Cancelled
        )
    }

    /// The state's wire word (the failure detail travels separately).
    pub fn word(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One job as reconstructed from (and maintained alongside) the
/// journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRecord {
    /// The job id (`j1`, `j2`, … in acceptance order).
    pub id: String,
    /// The job's display name.
    pub name: String,
    /// Wall-clock budget in seconds (`0` = none).
    pub timeout_secs: u64,
    /// Checkpoint interval in simulated seconds (`0` = never).
    pub checkpoint_every: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Whether a cancel has been requested but not yet honored.
    pub cancel_requested: bool,
}

/// The append side of the journal plus the replayed state.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Opens (creating if absent) the journal in `state_dir` and replays
    /// it. Returns the journal handle, every job keyed by id, and the
    /// next unused numeric job id.
    ///
    /// # Errors
    /// Returns a message when the state directory or journal cannot be
    /// opened. Malformed lines (at most one, from an interrupted final
    /// write) are skipped, not fatal.
    pub fn open(state_dir: &Path) -> Result<(Journal, BTreeMap<String, JobRecord>, u64), String> {
        let path = state_dir.join(JOURNAL_FILE);
        let mut jobs: BTreeMap<String, JobRecord> = BTreeMap::new();
        let mut next_id = 1u64;
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        {
            for line in text.lines() {
                let mut words = line.splitn(3, ' ');
                let (Some(verb), Some(id)) = (words.next(), words.next()) else {
                    continue;
                };
                let rest = words.next().unwrap_or("");
                match verb {
                    "accepted" => {
                        let mut fields = rest.split(' ');
                        let name = fields.next().unwrap_or("job").to_string();
                        let mut timeout_secs = 0;
                        let mut checkpoint_every = 0;
                        for field in fields {
                            if let Some(v) = field.strip_prefix("timeout=") {
                                timeout_secs = v.parse().unwrap_or(0);
                            } else if let Some(v) = field.strip_prefix("ckpt=") {
                                checkpoint_every = v.parse().unwrap_or(0);
                            }
                        }
                        if let Some(n) = id.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()) {
                            next_id = next_id.max(n + 1);
                        }
                        jobs.insert(
                            id.to_string(),
                            JobRecord {
                                id: id.to_string(),
                                name,
                                timeout_secs,
                                checkpoint_every,
                                state: JobState::Queued,
                                cancel_requested: false,
                            },
                        );
                    }
                    "running" | "completed" | "failed" | "cancelled" | "cancel-requested" => {
                        let Some(job) = jobs.get_mut(id) else {
                            continue;
                        };
                        match verb {
                            "running" => job.state = JobState::Running,
                            "completed" => job.state = JobState::Completed,
                            "failed" => job.state = JobState::Failed(rest.to_string()),
                            "cancelled" => {
                                job.state = JobState::Cancelled;
                                job.cancel_requested = false;
                            }
                            _ => job.cancel_requested = true,
                        }
                    }
                    _ => {}
                }
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let mut journal = Journal { file };
        // A torn, newline-less fragment from a crash mid-append must
        // not splice into the next line: terminate it now.
        if !text.is_empty() && !text.ends_with('\n') {
            journal.append("")?;
        }
        // Finalize cancels interrupted by a crash: the request is
        // durable, the worker that would honor it is gone.
        for job in jobs.values_mut() {
            if job.cancel_requested && !job.state.terminal() {
                job.state = JobState::Cancelled;
                job.cancel_requested = false;
                journal.append(&format!("cancelled {}", job.id))?;
            }
        }
        Ok((journal, jobs, next_id))
    }

    /// Appends one journal line, issuing the write immediately.
    ///
    /// # Errors
    /// Returns a message on I/O failure.
    pub fn append(&mut self, line: &str) -> Result<(), String> {
        self.file
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("journal: {e}"))
    }
}

/// Ids of replayed jobs that need a worker, in acceptance order:
/// queued jobs plus jobs a dead daemon left running.
pub fn recoverable(jobs: &BTreeMap<String, JobRecord>) -> Vec<String> {
    let mut ids: Vec<&JobRecord> = jobs.values().filter(|j| !j.state.terminal()).collect();
    ids.sort_by_key(|j| {
        j.id.strip_prefix('j')
            .and_then(|n| n.parse::<u64>().ok())
            .unwrap_or(u64::MAX)
    });
    ids.into_iter().map(|j| j.id.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_state_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scrip-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create state dir");
        dir
    }

    #[test]
    fn replay_restores_states_and_requeues_interrupted_jobs() {
        let dir = temp_state_dir("replay");
        {
            let (mut journal, jobs, next) = Journal::open(&dir).expect("opens");
            assert!(jobs.is_empty());
            assert_eq!(next, 1);
            journal
                .append("accepted j1 alpha timeout=0 ckpt=100")
                .expect("append");
            journal.append("running j1").expect("append");
            journal.append("completed j1").expect("append");
            journal
                .append("accepted j2 beta timeout=30 ckpt=0")
                .expect("append");
            journal.append("running j2").expect("append");
            journal
                .append("accepted j3 gamma timeout=0 ckpt=0")
                .expect("append");
        }
        let (_journal, jobs, next) = Journal::open(&dir).expect("replays");
        assert_eq!(next, 4);
        assert_eq!(jobs["j1"].state, JobState::Completed);
        assert_eq!(jobs["j2"].state, JobState::Running);
        assert_eq!(jobs["j2"].timeout_secs, 30);
        assert_eq!(jobs["j3"].state, JobState::Queued);
        assert_eq!(jobs["j1"].checkpoint_every, 100);
        assert_eq!(recoverable(&jobs), vec!["j2", "j3"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pending_cancels_finalize_as_cancelled_on_replay() {
        let dir = temp_state_dir("cancel");
        {
            let (mut journal, _, _) = Journal::open(&dir).expect("opens");
            journal
                .append("accepted j1 alpha timeout=0 ckpt=0")
                .expect("append");
            journal.append("running j1").expect("append");
            journal.append("cancel-requested j1").expect("append");
        }
        let (_journal, jobs, _) = Journal::open(&dir).expect("replays");
        assert_eq!(jobs["j1"].state, JobState::Cancelled);
        assert!(!jobs["j1"].cancel_requested);
        assert!(recoverable(&jobs).is_empty());
        // The finalization is itself journaled: a third replay agrees.
        let (_journal, jobs, _) = Journal::open(&dir).expect("replays again");
        assert_eq!(jobs["j1"].state, JobState::Cancelled);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_ignored() {
        let dir = temp_state_dir("torn");
        {
            let (mut journal, _, _) = Journal::open(&dir).expect("opens");
            journal
                .append("accepted j1 alpha timeout=0 ckpt=0")
                .expect("append");
        }
        // Simulate a crash mid-append: a torn, newline-less fragment.
        let path = dir.join(JOURNAL_FILE);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("open");
        file.write_all(b"runni").expect("torn write");
        let (_journal, jobs, next) = Journal::open(&dir).expect("replays");
        assert_eq!(jobs["j1"].state, JobState::Queued);
        assert_eq!(next, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! A small blocking client for the daemon's wire protocol, shared by
//! the `scrip-sim` subcommands (`submit`, `status`, `watch`, …), the
//! `serve_stream` bench regime, and the integration tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One connection to a `scrip-sim serve` daemon.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to the daemon at `addr` (`host:port`).
    ///
    /// # Errors
    /// Returns a message when the connection cannot be established.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let writer = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let read_half = writer
            .try_clone()
            .map_err(|e| format!("connect {addr}: {e}"))?;
        Ok(Client {
            writer,
            reader: BufReader::new(read_half),
        })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("send: {e}"))
    }

    fn read_reply(&mut self) -> Result<String, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("connection closed".into());
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        match trimmed.strip_prefix("ok") {
            Some(rest) => Ok(rest.trim_start().to_string()),
            None => Err(trimmed.strip_prefix("err ").unwrap_or(trimmed).to_string()),
        }
    }

    fn round_trip(&mut self, line: &str) -> Result<String, String> {
        self.send(line)?;
        self.read_reply()
    }

    /// Liveness check; returns `"pong"`.
    ///
    /// # Errors
    /// Returns the daemon's error message or a transport error.
    pub fn ping(&mut self) -> Result<String, String> {
        self.round_trip("ping")
    }

    /// Submits a scenario file's text; returns the new job id.
    ///
    /// # Errors
    /// Returns the daemon's refusal (e.g. a scenario validation error)
    /// or a transport error.
    pub fn submit(
        &mut self,
        scenario_text: &str,
        name: Option<&str>,
        timeout_secs: Option<u64>,
        checkpoint_every: Option<u64>,
    ) -> Result<String, String> {
        let mut line = format!("submit {}", scenario_text.len());
        if let Some(name) = name {
            line.push_str(&format!(" name={name}"));
        }
        if let Some(t) = timeout_secs {
            line.push_str(&format!(" timeout={t}"));
        }
        if let Some(c) = checkpoint_every {
            line.push_str(&format!(" ckpt={c}"));
        }
        self.send(&line)?;
        self.writer
            .write_all(scenario_text.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let reply = self.read_reply()?;
        reply
            .strip_prefix("submitted ")
            .map(str::to_string)
            .ok_or(reply)
    }

    /// Queries a job's state: the state word plus any detail (a failure
    /// reason, or `cancelling` while a cancel is pending).
    ///
    /// # Errors
    /// Returns the daemon's error (e.g. unknown job) or a transport
    /// error.
    pub fn status(&mut self, job: &str) -> Result<String, String> {
        let reply = self.round_trip(&format!("status {job}"))?;
        reply
            .strip_prefix(&format!("status {job} "))
            .map(str::to_string)
            .ok_or(reply)
    }

    /// Polls `status` until the job reaches a terminal state; returns
    /// the state word (`completed`, `failed`, or `cancelled`).
    ///
    /// # Errors
    /// Returns `timed out waiting …` after `wait_secs`, or any
    /// status-query error.
    pub fn wait_terminal(&mut self, job: &str, wait_secs: u64) -> Result<String, String> {
        let deadline = Instant::now() + Duration::from_secs(wait_secs);
        loop {
            let status = self.status(job)?;
            let word = status.split_whitespace().next().unwrap_or("").to_string();
            if matches!(word.as_str(), "completed" | "failed" | "cancelled") {
                return Ok(word);
            }
            if Instant::now() >= deadline {
                return Err(format!("timed out waiting for {job} (last: {status})"));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Fetches a completed job's CSV.
    ///
    /// # Errors
    /// Returns the daemon's refusal (job missing or not completed) or a
    /// transport error.
    pub fn result_csv(&mut self, job: &str) -> Result<String, String> {
        let reply = self.round_trip(&format!("result {job}"))?;
        let nbytes: usize = reply
            .strip_prefix(&format!("result {job} "))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| reply.clone())?;
        let mut bytes = vec![0u8; nbytes];
        self.reader
            .read_exact(&mut bytes)
            .map_err(|e| format!("recv result body: {e}"))?;
        String::from_utf8(bytes).map_err(|e| format!("result not UTF-8: {e}"))
    }

    /// Requests cancellation; returns the daemon's acknowledgement
    /// (`cancelled <job>` for queued jobs, `cancelling <job>` for
    /// running ones).
    ///
    /// # Errors
    /// Returns the daemon's refusal (unknown or already-terminal job)
    /// or a transport error.
    pub fn cancel(&mut self, job: &str) -> Result<String, String> {
        self.round_trip(&format!("cancel {job}"))
    }

    /// Reads the daemon's counters as one `k=v …` line.
    ///
    /// # Errors
    /// Returns a transport error.
    pub fn stats(&mut self) -> Result<String, String> {
        let reply = self.round_trip("stats")?;
        Ok(reply.strip_prefix("stats ").unwrap_or(&reply).to_string())
    }

    /// Streams the job's live samples, invoking `on_sample` with each
    /// sample payload, until the daemon reports the end of the stream;
    /// returns the job's final state word. Consumes the client — the
    /// daemon dedicates the connection to the stream.
    ///
    /// # Errors
    /// Returns the daemon's refusal (unknown job, corrupt sample log)
    /// or a transport error.
    pub fn subscribe(
        mut self,
        job: &str,
        mut on_sample: impl FnMut(&str),
    ) -> Result<String, String> {
        self.send(&format!("subscribe {job}"))?;
        let first = self.read_reply()?;
        if first.strip_prefix("subscribed").is_none() {
            return Err(first);
        }
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Err("stream closed before end".into());
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if let Some(payload) = trimmed.strip_prefix("sample ") {
                on_sample(payload);
            } else if let Some(rest) = trimmed.strip_prefix(&format!("end {job} ")) {
                return Ok(rest.to_string());
            } else if let Some(err) = trimmed.strip_prefix("err ") {
                return Err(err.to_string());
            } else {
                return Err(format!("unexpected stream line {trimmed:?}"));
            }
        }
    }

    /// Asks the daemon to drain: refuse new jobs, finish the queue,
    /// shut down. Blocks until the daemon acknowledges.
    ///
    /// # Errors
    /// Returns a transport error.
    pub fn drain(&mut self) -> Result<(), String> {
        let reply = self.round_trip("drain")?;
        if reply == "drained" {
            Ok(())
        } else {
            Err(reply)
        }
    }
}

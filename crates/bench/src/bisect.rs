//! Divergence bisection: locate where a live re-execution departs from
//! a recorded event trace.
//!
//! A `SCRIPTRC` trace ([`scrip_des::trace`]) carries a state-digest
//! frame at every sampling boundary of the recorded run. Bisection
//! binary-searches those frames — re-executing the scenario live and
//! comparing [`scrip_core::obs::MarketView::state_digest`] at each
//! probed boundary — to bracket the first divergent boundary window,
//! hopping forward via [`Session::checkpoint`]/[`Session::resume`] so
//! no prefix is ever re-simulated more than O(log n) times. The final
//! window is then replayed event-by-event
//! ([`Session::replay_resume`]), which pins the divergence to its exact
//! `(time, seq)` identity.

use std::path::Path;

use scrip_core::des::{SimTime, TraceFrame, TraceReader};
use scrip_core::market::MarketConfig;
use scrip_core::obs::{Session, TraceDivergence};

/// What a [`bisect_trace`] run found.
#[derive(Clone, Debug)]
pub struct BisectReport {
    /// Digest probes executed during the binary search.
    pub probes: usize,
    /// The bracketed window `(last good boundary, first bad boundary]`;
    /// the right edge is the horizon when every recorded digest
    /// matched.
    pub window: (SimTime, SimTime),
    /// The exact divergence, or [`None`] when the live run matches the
    /// recorded trace completely.
    pub divergence: Option<TraceDivergence>,
}

/// Bisects the trace at `trace` against a live re-execution of
/// `config` under `seed`, running to `horizon`.
///
/// Requires a queue-level, unsharded configuration (`shards = 1`, no
/// streaming): the search advances via checkpoints, which only the
/// serial kernel supports. The trace itself may have been recorded at
/// any shard count — traces are execution-strategy independent.
///
/// # Errors
/// Returns a message for unsupported configurations, unreadable or
/// corrupt traces, a trace header that does not match `config`/`seed`,
/// or checkpoint failures mid-search.
pub fn bisect_trace(
    config: &MarketConfig,
    seed: u64,
    horizon: SimTime,
    trace: &Path,
) -> Result<BisectReport, String> {
    if config.streaming.is_some() {
        return Err("bisect requires a queue-level scenario (streaming cannot checkpoint)".into());
    }
    if config.shards != 1 {
        return Err(format!(
            "bisect requires shards = 1 (the search hops via checkpoints); got {}",
            config.shards
        ));
    }

    // Collect the recorded digest schedule.
    let mut reader =
        TraceReader::from_path(trace).map_err(|e| format!("{}: {e}", trace.display()))?;
    let consumer = reader.register_consumer();
    let mut digests: Vec<(SimTime, u64)> = Vec::new();
    while let Some(frame) = reader
        .next_frame(consumer)
        .map_err(|e| format!("{}: {e}", trace.display()))?
    {
        if let TraceFrame::Digest { time, digest, .. } = frame {
            digests.push((time, digest));
        }
    }

    // Left anchor: a checkpoint of the freshly bootstrapped session.
    let mut session = Session::from_config(config, seed).map_err(|e| e.to_string())?;
    session.run_until(SimTime::ZERO);
    let mut lo_time = SimTime::ZERO;
    let mut lo_ckpt = session.checkpoint().map_err(|e| e.to_string())?;
    drop(session);

    // Binary search for the first recorded digest the live run fails to
    // reproduce. Probing a boundary that matches advances the anchor
    // checkpoint, so each probe simulates only from the last good
    // boundary.
    let mut probes = 0usize;
    let mut lo_idx: Option<usize> = None;
    let mut hi_idx: Option<usize> = None;
    loop {
        let lower = lo_idx.map_or(0, |i| i + 1);
        let upper = hi_idx.unwrap_or(digests.len());
        if lower >= upper {
            break;
        }
        let mid = lower + (upper - lower) / 2;
        let (boundary, recorded) = digests[mid];
        let mut probe = Session::resume(config, Vec::new(), &lo_ckpt).map_err(|e| e.to_string())?;
        probe.run_until(boundary);
        probes += 1;
        if probe.view().state_digest() == recorded {
            lo_idx = Some(mid);
            lo_time = boundary;
            lo_ckpt = probe.checkpoint().map_err(|e| e.to_string())?;
        } else {
            hi_idx = Some(mid);
        }
    }
    let hi_time = hi_idx.map_or(horizon, |i| digests[i].0);

    // Event-level pass over the bracketed window: replay-verify from
    // the anchor checkpoint to the first bad boundary (or the horizon).
    let mut tail = Session::resume(config, Vec::new(), &lo_ckpt).map_err(|e| e.to_string())?;
    let tail_reader =
        TraceReader::from_path(trace).map_err(|e| format!("{}: {e}", trace.display()))?;
    tail.replay_resume(tail_reader).map_err(|e| e.to_string())?;
    tail.run_until(hi_time);
    let divergence = tail.trace_divergence().cloned();
    if divergence.is_none() {
        // Either the whole run matches, or the recorded run continued
        // past this one — surface the latter as an error.
        tail.finish_trace().map_err(|e| e.to_string())?;
    }
    Ok(BisectReport {
        probes,
        window: (lo_time, hi_time),
        divergence,
    })
}

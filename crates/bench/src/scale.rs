//! Experiment scale control.

/// At which scale to run an experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RunScale {
    /// The paper's scale (500–1000 peers, horizons up to 40 000 s).
    #[default]
    Full,
    /// A reduced scale for smoke tests and CI.
    Quick,
}

impl RunScale {
    /// Reads the scale from the environment: `SCRIP_QUICK=1` selects
    /// [`RunScale::Quick`].
    pub fn from_env() -> Self {
        match std::env::var("SCRIP_QUICK") {
            Ok(v) if v != "0" && !v.is_empty() => RunScale::Quick,
            _ => RunScale::Full,
        }
    }

    /// Chooses between the full-scale and quick values.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            RunScale::Full => full,
            RunScale::Quick => quick,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects() {
        assert_eq!(RunScale::Full.pick(10, 2), 10);
        assert_eq!(RunScale::Quick.pick(10, 2), 2);
    }
}

//! Experiment scale control.

/// At which scale to run an experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RunScale {
    /// The paper's scale (500–1000 peers, horizons up to 40 000 s).
    #[default]
    Full,
    /// A reduced scale for smoke tests and CI.
    Quick,
}

impl RunScale {
    /// Reads the scale from the environment: `SCRIP_QUICK=1` selects
    /// [`RunScale::Quick`].
    pub fn from_env() -> Self {
        match std::env::var("SCRIP_QUICK") {
            Ok(v) if v != "0" && !v.is_empty() => RunScale::Quick,
            _ => RunScale::Full,
        }
    }

    /// Chooses between the full-scale and quick values.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            RunScale::Full => full,
            RunScale::Quick => quick,
        }
    }

    /// The canonical market-experiment parameters at this scale, as used
    /// by the figure regenerators: `(peers, horizon_secs, sample_secs)`.
    pub fn market_params(self) -> (usize, u64, u64) {
        (
            self.pick(500, 60),
            self.pick(40_000, 2_000),
            self.pick(200, 100),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects() {
        assert_eq!(RunScale::Full.pick(10, 2), 10);
        assert_eq!(RunScale::Quick.pick(10, 2), 2);
    }

    #[test]
    fn default_is_full_scale() {
        assert_eq!(RunScale::default(), RunScale::Full);
    }

    /// Serializes env-mutating tests and restores the prior value even
    /// if an assertion panics mid-test.
    struct EnvGuard {
        original: Option<String>,
        _lock: std::sync::MutexGuard<'static, ()>,
    }

    impl EnvGuard {
        fn lock() -> Self {
            static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
            let lock = ENV_LOCK
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            EnvGuard {
                original: std::env::var("SCRIP_QUICK").ok(),
                _lock: lock,
            }
        }
    }

    impl Drop for EnvGuard {
        fn drop(&mut self) {
            match self.original.take() {
                Some(v) => std::env::set_var("SCRIP_QUICK", v),
                None => std::env::remove_var("SCRIP_QUICK"),
            }
        }
    }

    /// All `SCRIP_QUICK` readings in one test: env mutation is process
    /// global, so the cases run sequentially under [`EnvGuard`].
    #[test]
    fn from_env_parses_scrip_quick() {
        let _guard = EnvGuard::lock();

        std::env::remove_var("SCRIP_QUICK");
        assert_eq!(RunScale::from_env(), RunScale::Full, "unset -> full");

        std::env::set_var("SCRIP_QUICK", "1");
        assert_eq!(RunScale::from_env(), RunScale::Quick, "1 -> quick");

        std::env::set_var("SCRIP_QUICK", "true");
        assert_eq!(RunScale::from_env(), RunScale::Quick, "non-zero -> quick");

        std::env::set_var("SCRIP_QUICK", "0");
        assert_eq!(RunScale::from_env(), RunScale::Full, "0 -> full");

        std::env::set_var("SCRIP_QUICK", "");
        assert_eq!(RunScale::from_env(), RunScale::Full, "empty -> full");
    }

    /// Both parameter sets are constructible and the quick one is
    /// strictly smaller in every dimension, so CI runs shrink for real.
    #[test]
    fn quick_params_strictly_smaller_than_full() {
        let (full_n, full_horizon, full_sample) = RunScale::Full.market_params();
        let (quick_n, quick_horizon, quick_sample) = RunScale::Quick.market_params();
        assert!(quick_n > 0 && quick_horizon > 0 && quick_sample > 0);
        assert!(quick_n < full_n, "{quick_n} !< {full_n}");
        assert!(
            quick_horizon < full_horizon,
            "{quick_horizon} !< {full_horizon}"
        );
        assert!(
            quick_sample < full_sample,
            "{quick_sample} !< {full_sample}"
        );
        // Sampling must fit inside the horizon at both scales.
        assert!(full_sample < full_horizon);
        assert!(quick_sample < quick_horizon);
    }
}

//! Fig. 11 — impact of peer dynamics (churn) on the skewness of the
//! credit distribution; three panels:
//!
//! 1. fixed overlay size (arrival × lifespan = 1000) vs a static overlay;
//! 2. fixed mean lifespan 500 s, arrival rate ∈ {1, 2, 4}/s;
//! 3. fixed arrival rate 1/s, lifespan ∈ {500, 1000, 2000} s.
//!
//! Paper observations: dynamic overlays have smaller Gini than static
//! ones (peers depart before accumulating); arrival rate has little
//! effect; longer lifespans increase skewness.
//!
//! One scenario with six explicit cases overriding the `churn` key
//! (panel 2 also reuses `p1_lifespan500_arr2`; panel 3 reuses
//! `p1_lifespan1000_arr1` and `p2_lifespan500_arr1` — each distinct
//! configuration runs once).

use scrip_core::spec::MarketSpec;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;
use crate::scenario::{run_scenario, CaseSpec, Metric, RunnerOptions, Scenario, ScenarioError};

/// The declarative scenario behind Fig. 11.
pub fn fig11_scenario(scale: RunScale) -> Scenario {
    // Scale the population; churn parameters keep arrival×lifespan = n.
    let n = scale.pick(1_000, 60);
    let scale_factor = n as f64 / 1_000.0;
    let attach = 20;
    let churn =
        |arrival: f64, lifespan: f64| format!("{}:{lifespan}:{attach}", arrival * scale_factor);

    let mut base = MarketSpec::new(n, 100);
    base.set("sample", &scale.pick(100, 60).to_string())
        .expect("valid");
    let mut scenario = Scenario::new("fig11", base);
    scenario.title = "Impact of peer dynamics on the skewness of the credit distribution".into();
    scenario.run.horizon_secs = scale.pick(8_000, 1_200);
    scenario.run.seed = 1_234;
    scenario.run.metrics = vec![Metric::GINI_SERIES];
    scenario.cases = vec![
        CaseSpec::new("p1_lifespan1000_arr1").with("churn", churn(1.0, 1_000.0)),
        CaseSpec::new("p1_lifespan500_arr2").with("churn", churn(2.0, 500.0)),
        CaseSpec::new("p1_static"),
        CaseSpec::new("p2_lifespan500_arr1").with("churn", churn(1.0, 500.0)),
        CaseSpec::new("p2_lifespan500_arr4").with("churn", churn(4.0, 500.0)),
        CaseSpec::new("p3_lifespan2000_arr1").with("churn", churn(1.0, 2_000.0)),
    ];
    scenario
}

/// Regenerates Fig. 11 (all three panels as one series set).
///
/// # Errors
/// Returns [`ScenarioError`] when the underlying scenario fails to run.
pub fn fig11_churn(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let scenario = fig11_scenario(scale);
    let result = run_scenario(&scenario, &RunnerOptions::from_env())?;
    let mut series = Vec::new();
    let mut notes = Vec::new();
    let mut plateaus: Vec<(String, f64)> = Vec::new();
    for case in &result.cases {
        let rep = case.single();
        let panel = &case.label[1..2];
        let s = Series::new(case.label.clone(), rep.gini().to_vec());
        let plateau = s.tail_mean(10).unwrap_or(0.0);
        notes.push(format!(
            "panel {panel} {}: plateau Gini = {plateau:.3}, final population = {}",
            case.label,
            rep.peer_count()
        ));
        plateaus.push((case.label.clone(), plateau));
        series.push(s);
    }
    let get = |name: &str| {
        plateaus
            .iter()
            .find(|(l, _)| l.contains(name))
            .map(|&(_, g)| g)
            .unwrap_or(0.0)
    };
    notes.push(format!(
        "static vs churn: static {:.3} vs lifespan1000 {:.3} (paper: churn lowers Gini)",
        get("static"),
        get("lifespan1000")
    ));
    notes.push(format!(
        "lifespan effect at arr 1/s: 500 s -> {:.3}, 1000 s -> {:.3}, 2000 s -> {:.3} (paper: \
         longer life, more skew)",
        get("p2_lifespan500_arr1"),
        get("p1_lifespan1000_arr1"),
        get("p3_lifespan2000_arr1")
    ));
    Ok(FigureResult {
        id: "fig11".into(),
        title: scenario.title,
        paper_expectation:
            "dynamic overlays show smaller Gini than static; arrival rate has little impact; \
             longer lifespans increase skewness"
                .into(),
        x_label: "time (s)".into(),
        y_label: "Gini index".into(),
        series,
        notes,
    })
}

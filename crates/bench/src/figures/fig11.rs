//! Fig. 11 — impact of peer dynamics (churn) on the skewness of the
//! credit distribution; three panels:
//!
//! 1. fixed overlay size (arrival × lifespan = 1000) vs a static overlay;
//! 2. fixed mean lifespan 500 s, arrival rate ∈ {1, 2, 4}/s;
//! 3. fixed arrival rate 1/s, lifespan ∈ {500, 1000, 2000} s.
//!
//! Paper observations: dynamic overlays have smaller Gini than static
//! ones (peers depart before accumulating); arrival rate has little
//! effect; longer lifespans increase skewness.

use scrip_core::des::{SimDuration, SimTime};
use scrip_core::market::{run_market, ChurnConfig, MarketConfig};

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;

/// Regenerates Fig. 11 (all three panels as one series set).
pub fn fig11_churn(scale: RunScale) -> FigureResult {
    // Scale the population; churn parameters keep arrival×lifespan = n.
    let n = scale.pick(1_000, 60);
    let horizon = SimTime::from_secs(scale.pick(8_000, 1_200));
    let sample = SimDuration::from_secs(scale.pick(100, 60));
    let scale_factor = n as f64 / 1_000.0;
    let attach = 20;

    // (panel, label, churn config or None for static)
    let mut cases: Vec<(u8, String, Option<ChurnConfig>)> = vec![
        (
            1,
            "p1_lifespan1000_arr1".into(),
            Some(ChurnConfig::new(1.0 * scale_factor, 1_000.0, attach).expect("valid")),
        ),
        (
            1,
            "p1_lifespan500_arr2".into(),
            Some(ChurnConfig::new(2.0 * scale_factor, 500.0, attach).expect("valid")),
        ),
        (1, "p1_static".into(), None),
        (
            2,
            "p2_lifespan500_arr1".into(),
            Some(ChurnConfig::new(1.0 * scale_factor, 500.0, attach).expect("valid")),
        ),
        (
            2,
            "p2_lifespan500_arr4".into(),
            Some(ChurnConfig::new(4.0 * scale_factor, 500.0, attach).expect("valid")),
        ),
        (
            3,
            "p3_lifespan2000_arr1".into(),
            Some(ChurnConfig::new(1.0 * scale_factor, 2_000.0, attach).expect("valid")),
        ),
    ];
    // Panel 2 also reuses p1_lifespan500_arr2; panel 3 reuses
    // p1_lifespan1000_arr1 and p2_lifespan500_arr1 — run each distinct
    // configuration once.
    let mut series = Vec::new();
    let mut notes = Vec::new();
    let mut plateaus: Vec<(String, f64)> = Vec::new();
    for (panel, label, churn) in cases.drain(..) {
        let mut config = MarketConfig::new(n, 100)
            .asymmetric()
            .sample_interval(sample);
        if let Some(c) = churn {
            config = config.churn(c);
        }
        let market = run_market(config, 1_234, horizon).expect("market runs");
        let plateau = market.gini_series().tail_mean(10).unwrap_or(0.0);
        notes.push(format!(
            "panel {panel} {label}: plateau Gini = {plateau:.3}, final population = {}",
            market.peer_count()
        ));
        plateaus.push((label.clone(), plateau));
        let points = market
            .gini_series()
            .samples()
            .iter()
            .map(|&(t, g)| (t.as_secs_f64(), g))
            .collect();
        series.push(Series::new(label, points));
    }
    let get = |name: &str| {
        plateaus
            .iter()
            .find(|(l, _)| l.contains(name))
            .map(|&(_, g)| g)
            .unwrap_or(0.0)
    };
    notes.push(format!(
        "static vs churn: static {:.3} vs lifespan1000 {:.3} (paper: churn lowers Gini)",
        get("static"),
        get("lifespan1000")
    ));
    notes.push(format!(
        "lifespan effect at arr 1/s: 500 s -> {:.3}, 1000 s -> {:.3}, 2000 s -> {:.3} (paper: \
         longer life, more skew)",
        get("p2_lifespan500_arr1"),
        get("p1_lifespan1000_arr1"),
        get("p3_lifespan2000_arr1")
    ));
    FigureResult {
        id: "fig11".into(),
        title: "Impact of peer dynamics on the skewness of the credit distribution".into(),
        paper_expectation:
            "dynamic overlays show smaller Gini than static; arrival rate has little impact; \
             longer lifespans increase skewness"
                .into(),
        x_label: "time (s)".into(),
        y_label: "Gini index".into(),
        series,
        notes,
    }
}

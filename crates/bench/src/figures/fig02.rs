//! Fig. 2 — Lorenz curves of the marginal wealth PMF of Eq. (8).
//!
//! The paper plots the Lorenz curves of `Binomial(M, 1/N)` for
//! `(M, N) ∈ {(2000, 100), (25000, 50), (50000, 50)}` and reads from
//! them that "the distribution is more skewed with a larger average
//! wealth c". The binomial's relative dispersion actually *shrinks* with
//! `c = M/N` (Gini ≈ 1/√(πc)); we regenerate both the paper's literal
//! Eq. (8) curves and the **exact** product-form marginals, whose
//! heavier tail is what the prose describes.

use scrip_core::econ::lorenz::LorenzCurve;
use scrip_core::queueing::approx::{eq8_symmetric_marginal, exact_symmetric_marginal};

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;
use crate::scenario::ScenarioError;

const CASES: [(usize, usize); 3] = [(2_000, 100), (25_000, 50), (50_000, 50)];

/// Regenerates Fig. 2 (plus the exact-marginal comparison).
///
/// # Errors
/// Infallible today (purely analytic); the `Result` keeps every
/// registered experiment uniformly fallible.
pub fn fig02_lorenz_pmf(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let grid = scale.pick(100, 25);
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for &(m, n) in &CASES {
        let pmf = eq8_symmetric_marginal(m, n).expect("valid binomial");
        let curve = LorenzCurve::from_pmf(&pmf).expect("valid PMF");
        notes.push(format!(
            "Eq.(8) binomial M={m} N={n} (c={}): Gini = {:.3}",
            m / n,
            curve.gini()
        ));
        series.push(Series::new(format!("eq8_M{m}_N{n}"), curve.sample(grid)));

        let exact = exact_symmetric_marginal(m, n).expect("valid exact marginal");
        let exact_curve = LorenzCurve::from_pmf(&exact).expect("valid PMF");
        notes.push(format!(
            "exact product form M={m} N={n}: Gini = {:.3}",
            exact_curve.gini()
        ));
        series.push(Series::new(
            format!("exact_M{m}_N{n}"),
            exact_curve.sample(grid),
        ));
    }
    Ok(FigureResult {
        id: "fig02".into(),
        title: "Lorenz curves of the marginal wealth PMF (Eq. 8) and of the exact product form"
            .into(),
        paper_expectation:
            "three Lorenz curves below the equality line; the paper's prose claims more skew at \
             larger c (its Eq. (8) binomial actually implies the opposite; the exact product-form \
             marginal is the heavier-tailed one)"
                .into(),
        x_label: "cumulative fraction of peers".into(),
        y_label: "cumulative fraction of credits".into(),
        series,
        notes,
    })
}

//! The chunk-level streaming market experiment — beyond the paper.
//!
//! The paper's Fig. 1 measures credit condensation inside a live
//! streaming swarm but reports only spending rates; this experiment
//! closes the loop the paper argues verbally: as average wealth drops,
//! trade denials climb and surface as *playback stalls*, coupling the
//! wealth Gini to user-visible quality. One scenario, a sweep of
//! `credits` over three wealth levels on the chunk-granularity market
//! (`streaming = paced:1`, uniform pricing), reporting both the
//! stall-rate and Gini trajectories.

use scrip_core::spec::MarketSpec;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;
use crate::scenario::{run_scenario, Metric, RunnerOptions, Scenario, ScenarioError, SweepAxis};

/// Average wealth levels swept: starved, adequate, rich.
const WEALTH_LEVELS: [u64; 3] = [2, 20, 100];

/// The declarative scenario behind the streaming experiment.
pub fn streaming_scenario(scale: RunScale) -> Scenario {
    let peers = scale.pick(300, 40);
    let horizon_secs = scale.pick(2_000, 300);
    let sample_secs = scale.pick(50, 25);
    let mut base = MarketSpec::new(peers, WEALTH_LEVELS[0]);
    base.set("streaming", "paced:1").expect("valid streaming");
    base.set("sample", &sample_secs.to_string()).expect("valid");
    let mut scenario = Scenario::new("streaming", base);
    scenario.title = "Chunk-level market: playback stalls vs average wealth".into();
    scenario.run.horizon_secs = horizon_secs;
    scenario.run.seed = 4242;
    scenario.run.metrics = vec![Metric::GINI_SERIES, Metric::STALL_SERIES];
    scenario.sweep = vec![SweepAxis::new("credits", WEALTH_LEVELS)];
    scenario
}

/// Regenerates the streaming experiment: stall-rate and Gini evolution
/// at chunk granularity for three wealth levels.
///
/// # Errors
/// Returns [`ScenarioError`] when the underlying scenario fails to run.
pub fn streaming_stall_vs_wealth(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let scenario = streaming_scenario(scale);
    let result = run_scenario(&scenario, &RunnerOptions::from_env())?;
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for (case, &c) in result.cases.iter().zip(&WEALTH_LEVELS) {
        let rep = case.single();
        let stall = Series::new(format!("stall_c{c}"), rep.stalls().to_vec());
        let gini = Series::new(format!("gini_c{c}"), rep.gini().to_vec());
        notes.push(format!(
            "c={c}: final stall rate = {:.3}, final wealth Gini = {:.3}, settlements = {}, \
             denials = {}",
            stall.last_y().unwrap_or(1.0),
            rep.wealth_gini(),
            rep.purchases(),
            rep.denied(),
        ));
        series.push(stall);
        series.push(gini);
    }
    Ok(FigureResult {
        id: "streaming".into(),
        title: scenario.title,
        paper_expectation:
            "beyond the paper: the poorer the swarm, the more chunk trades are refused and the \
             higher the stall rate — bankruptcy surfaces as user-visible playback quality, the \
             failure mode the paper's sustainability argument predicts"
                .into(),
        x_label: "time (s)".into(),
        y_label: "stall rate / Gini".into(),
        series,
        notes,
    })
}

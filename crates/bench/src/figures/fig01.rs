//! Fig. 1 — distribution of per-peer credit spending rates with and
//! without wealth condensation.
//!
//! Paper setup (Sec. III-A): 500 peers, scale-free overlay. Case 1:
//! initial credits 200, per-chunk Poisson(1) prices → Gini 0.9
//! (condensed). Case 2: initial credits 12, uniform 1-credit pricing →
//! Gini 0.1 (balanced).
//!
//! One scenario with two explicit cases; the balanced market is the
//! base, the condensed market overrides credits, pricing, profile, and
//! availability feedback.

use scrip_core::econ::gini;
use scrip_core::spec::MarketSpec;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;
use crate::scenario::{run_scenario, CaseSpec, Metric, RunnerOptions, Scenario, ScenarioError};

/// The declarative scenario behind Fig. 1.
pub fn fig01_scenario(scale: RunScale) -> Scenario {
    let n = scale.pick(500, 60);
    let mut base = MarketSpec::new(n, 12);
    base.set("profile", "symmetric").expect("valid");
    let mut scenario = Scenario::new("fig01", base);
    scenario.title =
        "Distribution of credit spending rates, with and without wealth condensation".into();
    scenario.run.horizon_secs = scale.pick(20_000, 1_500);
    scenario.run.seed = 42;
    scenario.run.metrics = vec![Metric::SPENDING_RATES, Metric::FINAL_BALANCES];
    scenario.cases = vec![
        // Case 2 (balanced): c = 12, uniform pricing, symmetric
        // utilization — the streaming-with-uniform-pricing regime of
        // Sec. V-C.
        CaseSpec::new("balanced_c12_uniform"),
        // Case 1 (condensed): c = 200, Poisson per-chunk prices,
        // asymmetric utilization with availability feedback (broke peers
        // stop earning).
        CaseSpec::new("condensed_c200_poisson")
            .with("credits", "200")
            .with("profile", "asymmetric")
            .with("pricing", "chunk-poisson:1")
            .with("availability-feedback", "true"),
    ];
    scenario
}

/// Regenerates Fig. 1.
///
/// # Errors
/// Returns [`ScenarioError`] when the underlying scenario fails to run.
pub fn fig01_spending_rates(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let scenario = fig01_scenario(scale);
    let result = run_scenario(&scenario, &RunnerOptions::from_env())?;
    let balanced = result.cases[0].single();
    let condensed = result.cases[1].single();

    let g_balanced = gini(balanced.spending_rates()).expect("non-empty");
    let g_condensed = gini(condensed.spending_rates()).expect("non-empty");
    let broke = |balances: &[u64]| balances.iter().filter(|&&b| b == 0).count();

    let to_points = |rates: &[f64]| {
        rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as f64, r))
            .collect()
    };

    Ok(FigureResult {
        id: "fig01".into(),
        title: scenario.title,
        paper_expectation:
            "balanced case (c=12, uniform price) Gini ≈ 0.1; condensed case (c=200, Poisson \
             prices) Gini ≈ 0.9 with most peers spending near zero"
                .into(),
        x_label: "peer rank (sorted by spending rate)".into(),
        y_label: "credit spending rate (credits/sec)".into(),
        series: vec![
            Series::new("balanced_c12_uniform", to_points(balanced.spending_rates())),
            Series::new(
                "condensed_c200_poisson",
                to_points(condensed.spending_rates()),
            ),
        ],
        notes: vec![
            format!("balanced spending-rate Gini = {g_balanced:.3}"),
            format!("condensed spending-rate Gini = {g_condensed:.3}"),
            format!(
                "condensed market broke peers = {}/{} vs balanced {}/{}",
                broke(condensed.final_balances()),
                condensed.peer_count(),
                broke(balanced.final_balances()),
                balanced.peer_count(),
            ),
        ],
    })
}

//! Fig. 1 — distribution of per-peer credit spending rates with and
//! without wealth condensation.
//!
//! Paper setup (Sec. III-A): 500 peers, scale-free overlay. Case 1:
//! initial credits 200, per-chunk Poisson(1) prices → Gini 0.9
//! (condensed). Case 2: initial credits 12, uniform 1-credit pricing →
//! Gini 0.1 (balanced).

use scrip_core::des::SimTime;
use scrip_core::econ::gini;
use scrip_core::market::{run_market, MarketConfig};
use scrip_core::pricing::PricingConfig;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;

/// Regenerates Fig. 1.
pub fn fig01_spending_rates(scale: RunScale) -> FigureResult {
    let n = scale.pick(500, 60);
    let horizon = SimTime::from_secs(scale.pick(20_000, 1_500));

    // Case 2 (balanced): c = 12, uniform pricing, symmetric utilization —
    // the streaming-with-uniform-pricing regime of Sec. V-C.
    let balanced = run_market(MarketConfig::new(n, 12).symmetric(), 42, horizon)
        .expect("balanced market runs");
    // Case 1 (condensed): c = 200, Poisson per-chunk prices, asymmetric
    // utilization with availability feedback (broke peers stop earning).
    let condensed = run_market(
        MarketConfig::new(n, 200)
            .asymmetric()
            .pricing(PricingConfig::ChunkPoisson { mean: 1.0 })
            .with_availability_feedback(),
        42,
        horizon,
    )
    .expect("condensed market runs");

    let balanced_rates = balanced.spending_rates_sorted(horizon);
    let condensed_rates = condensed.spending_rates_sorted(horizon);
    let g_balanced = gini(&balanced_rates).expect("non-empty");
    let g_condensed = gini(&condensed_rates).expect("non-empty");

    let to_points = |rates: &[f64]| {
        rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as f64, r))
            .collect()
    };

    FigureResult {
        id: "fig01".into(),
        title: "Distribution of credit spending rates, with and without wealth condensation".into(),
        paper_expectation:
            "balanced case (c=12, uniform price) Gini ≈ 0.1; condensed case (c=200, Poisson \
             prices) Gini ≈ 0.9 with most peers spending near zero"
                .into(),
        x_label: "peer rank (sorted by spending rate)".into(),
        y_label: "credit spending rate (credits/sec)".into(),
        series: vec![
            Series::new("balanced_c12_uniform", to_points(&balanced_rates)),
            Series::new("condensed_c200_poisson", to_points(&condensed_rates)),
        ],
        notes: vec![
            format!("balanced spending-rate Gini = {g_balanced:.3}"),
            format!("condensed spending-rate Gini = {g_condensed:.3}"),
            format!(
                "condensed market broke peers = {}/{} vs balanced {}/{}",
                condensed
                    .ledger()
                    .balances_vec()
                    .iter()
                    .filter(|&&b| b == 0)
                    .count(),
                condensed.peer_count(),
                balanced
                    .ledger()
                    .balances_vec()
                    .iter()
                    .filter(|&&b| b == 0)
                    .count(),
                balanced.peer_count(),
            ),
        ],
    }
}

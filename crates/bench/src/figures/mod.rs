//! Figure regenerators: one function per figure of the paper's
//! evaluation, each returning a typed [`FigureResult`].

mod ablations;
mod fig01;
mod fig02;
mod fig03;
mod fig04;
mod fig05_06;
mod fig07_08;
mod fig09;
mod fig10;
mod fig11;

pub use ablations::{ablation_approx_vs_exact, ablation_queue_vs_protocol, ablation_solvers};
pub use fig01::fig01_spending_rates;
pub use fig02::fig02_lorenz_pmf;
pub use fig03::fig03_gini_vs_wealth;
pub use fig04::fig04_efficiency;
pub use fig05_06::{fig05_convergence_early, fig06_convergence_late};
pub use fig07_08::{fig07_gini_evolution_symmetric, fig08_gini_evolution_asymmetric};
pub use fig09::fig09_taxation;
pub use fig10::fig10_dynamic_spending;
pub use fig11::fig11_churn;

/// One plotted series: a label and `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The final y value, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Mean of the last `k` y values ([`None`] when empty).
    pub fn tail_mean(&self, k: usize) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.len().saturating_sub(k);
        let tail = &self.points[start..];
        Some(tail.iter().map(|&(_, y)| y).sum::<f64>() / tail.len() as f64)
    }
}

/// A regenerated figure: identification, axis names, series, and
/// free-form notes (the measured headline numbers recorded in
/// `EXPERIMENTS.md`).
#[derive(Clone, Debug, PartialEq)]
pub struct FigureResult {
    /// Figure identifier, e.g. `"fig01"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// What the paper reports for this figure (the expectation we check
    /// against).
    pub paper_expectation: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The regenerated series.
    pub series: Vec<Series>,
    /// Measured headline numbers and commentary.
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Renders the figure as CSV with `#`-prefixed metadata lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}: {}\n", self.id, self.title));
        out.push_str(&format!("# paper: {}\n", self.paper_expectation));
        for note in &self.notes {
            out.push_str(&format!("# measured: {note}\n"));
        }
        out.push_str(&format!("series,{},{}\n", self.x_label, self.y_label));
        for s in &self.series {
            for &(x, y) in &s.points {
                out.push_str(&format!("{},{x:.6},{y:.6}\n", s.label));
            }
        }
        out
    }

    /// Finds a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_helpers() {
        let s = Series::new("a", vec![(0.0, 1.0), (1.0, 3.0)]);
        assert_eq!(s.last_y(), Some(3.0));
        assert_eq!(s.tail_mean(2), Some(2.0));
        assert_eq!(Series::new("e", vec![]).tail_mean(3), None);
    }

    #[test]
    fn csv_rendering() {
        let fig = FigureResult {
            id: "figX".into(),
            title: "demo".into(),
            paper_expectation: "up and to the right".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series::new("a", vec![(1.0, 2.0)])],
            notes: vec!["note".into()],
        };
        let csv = fig.to_csv();
        assert!(csv.contains("# figX: demo"));
        assert!(csv.contains("# measured: note"));
        assert!(csv.contains("a,1.000000,2.000000"));
        assert!(fig.series("a").is_some());
        assert!(fig.series("b").is_none());
    }
}

//! Figure regenerators: one function per figure of the paper's
//! evaluation, each returning a typed [`FigureResult`].
//!
//! Every market-driven figure is implemented as a declarative
//! [`crate::scenario::Scenario`] (exposed via [`scenarios`]) plus a thin
//! post-processing step that turns the batch-runner output into series
//! and notes; the purely analytic figures (2, 3 and the first two
//! ablations) evaluate closed-form queueing results directly. The
//! [`experiments`] registry lists everything in canonical order for
//! `fig_all` and `scrip-sim`.

mod ablations;
mod fig01;
mod fig02;
mod fig03;
mod fig04;
mod fig05_06;
mod fig07_08;
mod fig09;
mod fig10;
mod fig11;
mod streaming;

pub use ablations::{
    ablation3_queue_scenario, ablation_approx_vs_exact, ablation_queue_vs_protocol,
    ablation_solvers,
};
pub use fig01::{fig01_scenario, fig01_spending_rates};
pub use fig02::fig02_lorenz_pmf;
pub use fig03::fig03_gini_vs_wealth;
pub use fig04::{fig04_efficiency, fig04_scenario};
pub use fig05_06::{
    fig05_convergence_early, fig05_scenario, fig06_convergence_late, fig06_scenario,
};
pub use fig07_08::{
    fig07_gini_evolution_symmetric, fig07_scenario, fig08_gini_evolution_asymmetric, fig08_scenario,
};
pub use fig09::{fig09_scenario, fig09_taxation};
pub use fig10::{fig10_dynamic_spending, fig10_scenario};
pub use fig11::{fig11_churn, fig11_scenario};
pub use streaming::{streaming_scenario, streaming_stall_vs_wealth};

use crate::scale::RunScale;
use crate::scenario::{Scenario, ScenarioError};

/// A figure/ablation regenerator.
pub type ExperimentFn = fn(RunScale) -> Result<FigureResult, ScenarioError>;

/// A scenario emitter: the declarative description behind a
/// market-driven experiment.
pub type ScenarioFn = fn(RunScale) -> Scenario;

/// Every experiment of the paper's evaluation (11 figures, 3 ablations)
/// in canonical order — the work list of `fig_all` and `scrip-sim all`.
pub fn experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig01", fig01_spending_rates as ExperimentFn),
        ("fig02", fig02_lorenz_pmf),
        ("fig03", fig03_gini_vs_wealth),
        ("fig04", fig04_efficiency),
        ("fig05", fig05_convergence_early),
        ("fig06", fig06_convergence_late),
        ("fig07", fig07_gini_evolution_symmetric),
        ("fig08", fig08_gini_evolution_asymmetric),
        ("fig09", fig09_taxation),
        ("fig10", fig10_dynamic_spending),
        ("fig11", fig11_churn),
        ("ablation1", ablation_approx_vs_exact),
        ("ablation2", ablation_solvers),
        ("ablation3", ablation_queue_vs_protocol),
        ("streaming", streaming_stall_vs_wealth),
    ]
}

/// A finished full-evaluation run: every experiment's result plus
/// timing, as produced by [`run_all_experiments`].
pub struct EvaluationReport {
    /// `(name, result, wall)` per experiment, in canonical order.
    pub results: Vec<(&'static str, FigureResult, std::time::Duration)>,
    /// End-to-end wall-clock of the whole batch.
    pub total: std::time::Duration,
    /// Worker threads the batch dispatched on.
    pub workers: usize,
}

impl EvaluationReport {
    /// Prints every figure to stdout (deterministic — no timing) and
    /// the per-scenario timing summary + total wall-clock to stderr.
    pub fn print(&self, dump_csv: bool) {
        for (_, fig, _) in &self.results {
            print_figure(fig, dump_csv);
        }
        eprintln!();
        eprintln!("per-scenario timing:");
        for (name, _, wall) in &self.results {
            eprintln!("  {name:<10} {wall:>10.1?}");
        }
        let serial: std::time::Duration = self.results.iter().map(|&(_, _, wall)| wall).sum();
        let speedup = serial.as_secs_f64() / self.total.as_secs_f64().max(1e-9);
        eprintln!(
            "total wall-clock: {:.1?} on {} worker thread(s); sum of per-scenario times \
             {serial:.1?} (speedup {speedup:.2}x)",
            self.total, self.workers
        );
    }
}

/// Prints one figure's header, expectation, and measured notes to
/// stdout (plus the CSV when `dump_csv`). Deterministic: timing never
/// goes to stdout.
pub fn print_figure(fig: &FigureResult, dump_csv: bool) {
    println!("== {} — {}", fig.id, fig.title);
    println!("   paper: {}", fig.paper_expectation);
    for note in &fig.notes {
        println!("   measured: {note}");
    }
    if dump_csv {
        print!("{}", fig.to_csv());
    }
}

/// Runs every registered experiment, sharded over up to `threads`
/// worker threads (0 = one per core), and returns the results in
/// canonical order regardless of completion order.
///
/// To keep `threads` an actual cap on concurrency, experiments fan out
/// across the workers while each experiment's internal batch runner is
/// forced serial for the duration (via
/// [`crate::scenario::set_thread_override`] — process-global, so don't
/// call this concurrently with other scenario runs).
///
/// # Errors
/// Returns the first failing experiment's [`ScenarioError`], prefixed
/// with its name (in canonical order — every experiment still runs).
pub fn run_all_experiments(
    scale: RunScale,
    threads: usize,
) -> Result<EvaluationReport, ScenarioError> {
    let experiments = experiments();
    let workers =
        crate::scenario::RunnerOptions::with_threads(threads).effective_threads(experiments.len());
    let previous = crate::scenario::set_thread_override(Some(1));
    let start = std::time::Instant::now();
    let results = crate::scenario::parallel_map(experiments.len(), threads, |i| {
        let t0 = std::time::Instant::now();
        let fig = (experiments[i].1)(scale);
        (fig, t0.elapsed())
    });
    let total = start.elapsed();
    crate::scenario::set_thread_override(previous);
    let mut collected = Vec::with_capacity(results.len());
    for ((name, _), (fig, wall)) in experiments.into_iter().zip(results) {
        let fig = fig.map_err(|e| ScenarioError::Run(format!("{name}: {e}")))?;
        collected.push((name, fig, wall));
    }
    Ok(EvaluationReport {
        results: collected,
        total,
        workers,
    })
}

/// The declarative scenarios behind the market-driven experiments
/// (`scrip-sim export` serializes these to scenario files). The purely
/// analytic experiments (fig02, fig03, ablation1, ablation2) have no
/// market scenario and are absent.
pub fn scenarios() -> Vec<(&'static str, ScenarioFn)> {
    vec![
        ("fig01", fig01_scenario as ScenarioFn),
        ("fig04", fig04_scenario),
        ("fig05", fig05_scenario),
        ("fig06", fig06_scenario),
        ("fig07", fig07_scenario),
        ("fig08", fig08_scenario),
        ("fig09", fig09_scenario),
        ("fig10", fig10_scenario),
        ("fig11", fig11_scenario),
        ("ablation3", ablation3_queue_scenario),
        ("streaming", streaming_scenario),
    ]
}

/// One plotted series: a label and `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The final y value, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Mean of the last `k` y values ([`None`] when empty).
    pub fn tail_mean(&self, k: usize) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.len().saturating_sub(k);
        let tail = &self.points[start..];
        Some(tail.iter().map(|&(_, y)| y).sum::<f64>() / tail.len() as f64)
    }

    /// Whether the series has settled: the last `window` y values all
    /// lie within ±`tolerance` of their mean (`false` with fewer than
    /// `window` points). Mirrors
    /// [`scrip_core::des::stats::TimeSeries::has_converged`].
    pub fn has_converged(&self, window: usize, tolerance: f64) -> bool {
        if self.points.len() < window || window == 0 {
            return false;
        }
        let tail = &self.points[self.points.len() - window..];
        let mean = tail.iter().map(|&(_, y)| y).sum::<f64>() / window as f64;
        tail.iter().all(|&(_, y)| (y - mean).abs() <= tolerance)
    }
}

/// A regenerated figure: identification, axis names, series, and
/// free-form notes (the measured headline numbers recorded in
/// `EXPERIMENTS.md`).
#[derive(Clone, Debug, PartialEq)]
pub struct FigureResult {
    /// Figure identifier, e.g. `"fig01"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// What the paper reports for this figure (the expectation we check
    /// against).
    pub paper_expectation: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The regenerated series.
    pub series: Vec<Series>,
    /// Measured headline numbers and commentary.
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Renders the figure as CSV with `#`-prefixed metadata lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}: {}\n", self.id, self.title));
        out.push_str(&format!("# paper: {}\n", self.paper_expectation));
        for note in &self.notes {
            out.push_str(&format!("# measured: {note}\n"));
        }
        out.push_str(&format!("series,{},{}\n", self.x_label, self.y_label));
        for s in &self.series {
            for &(x, y) in &s.points {
                out.push_str(&format!("{},{x:.6},{y:.6}\n", s.label));
            }
        }
        out
    }

    /// Finds a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_helpers() {
        let s = Series::new("a", vec![(0.0, 1.0), (1.0, 3.0)]);
        assert_eq!(s.last_y(), Some(3.0));
        assert_eq!(s.tail_mean(2), Some(2.0));
        assert_eq!(Series::new("e", vec![]).tail_mean(3), None);
    }

    #[test]
    fn series_convergence() {
        let flat = Series::new("f", (0..10).map(|i| (i as f64, 0.5)).collect());
        assert!(flat.has_converged(5, 1e-9));
        let ramp = Series::new("r", (0..10).map(|i| (i as f64, i as f64)).collect());
        assert!(!ramp.has_converged(5, 0.1));
        assert!(!ramp.has_converged(20, 10.0), "needs window points");
    }

    #[test]
    fn registries_are_complete() {
        let experiments = experiments();
        assert_eq!(
            experiments.len(),
            15,
            "11 figures + 3 ablations + streaming"
        );
        let names: Vec<&str> = experiments.iter().map(|&(n, _)| n).collect();
        assert_eq!(names[0], "fig01");
        assert_eq!(names[13], "ablation3");
        assert_eq!(names[14], "streaming");
        // Every scenario emitter corresponds to a registered experiment
        // (fig04's scenario covers only its simulated series; fig02,
        // fig03, ablation1, ablation2 are purely analytic).
        for (name, emit) in scenarios() {
            assert!(names.contains(&name), "unknown scenario {name}");
            let scenario = emit(RunScale::Quick);
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn csv_rendering() {
        let fig = FigureResult {
            id: "figX".into(),
            title: "demo".into(),
            paper_expectation: "up and to the right".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series::new("a", vec![(1.0, 2.0)])],
            notes: vec!["note".into()],
        };
        let csv = fig.to_csv();
        assert!(csv.contains("# figX: demo"));
        assert!(csv.contains("# measured: note"));
        assert!(csv.contains("a,1.000000,2.000000"));
        assert!(fig.series("a").is_some());
        assert!(fig.series("b").is_none());
    }
}

//! Ablation studies over the design choices called out in `DESIGN.md`.

use std::collections::BTreeMap;

use scrip_core::des::{SimRng, SimTime};
use scrip_core::econ::{gini, gini_from_pmf};
use scrip_core::protocol::StreamingMarket;
use scrip_core::queueing::approx::{eq8_symmetric_marginal, exact_symmetric_marginal};
use scrip_core::queueing::closed::ClosedJackson;
use scrip_core::queueing::stationary::{
    direct_solve, is_stationary, power_iteration, PowerOptions,
};
use scrip_core::spec::MarketSpec;
use scrip_core::streaming::StreamingConfig;
use scrip_core::topology::generators::{self, ScaleFreeConfig};
use scrip_core::topology::NodeId;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;
use crate::scenario::{run_scenario, Metric, RunnerOptions, Scenario, ScenarioError};

/// Ablation: the paper's Eq. (6)/(8) binomial approximation vs the
/// exact product-form marginal. Reports total-variation distance and
/// the Gini of each, over a grid of average wealths.
///
/// # Errors
/// Infallible today (purely analytic); the `Result` keeps every
/// registered experiment uniformly fallible.
pub fn ablation_approx_vs_exact(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let n = 50;
    let grid: Vec<usize> = scale.pick(vec![1, 5, 20, 100, 500], vec![5, 100]);
    let mut tv_points = Vec::new();
    let mut gini_exact = Vec::new();
    let mut gini_approx = Vec::new();
    let mut notes = Vec::new();
    for &c in &grid {
        let m = c * n;
        let exact = exact_symmetric_marginal(m, n).expect("valid");
        let approx = eq8_symmetric_marginal(m, n).expect("valid");
        let tv: f64 = 0.5
            * exact
                .iter()
                .zip(&approx)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        let ge = gini_from_pmf(&exact).expect("valid");
        let ga = gini_from_pmf(&approx).expect("valid");
        tv_points.push((c as f64, tv));
        gini_exact.push((c as f64, ge));
        gini_approx.push((c as f64, ga));
        notes.push(format!(
            "c={c}: TV distance = {tv:.3}, exact Gini = {ge:.3}, binomial Gini = {ga:.3}"
        ));
    }
    Ok(FigureResult {
        id: "ablation_approx_vs_exact".into(),
        title: "Paper's multinomial (binomial) approximation vs exact product form".into(),
        paper_expectation:
            "the approximation is light-tailed: its Gini shrinks with c while the exact \
             marginal's stays ≈ 0.5 — quantifies the error of Eqs. (6)–(8)"
                .into(),
        x_label: "average wealth c".into(),
        y_label: "TV distance / Gini".into(),
        series: vec![
            Series::new("tv_distance", tv_points),
            Series::new("gini_exact", gini_exact),
            Series::new("gini_binomial", gini_approx),
        ],
        notes,
    })
}

/// Ablation: stationary-flow solvers (direct elimination vs lazy power
/// iteration) and mean-wealth computation (Buzen convolution vs MVA).
///
/// # Errors
/// Infallible today (purely analytic); the `Result` keeps every
/// registered experiment uniformly fallible.
pub fn ablation_solvers(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let sizes: Vec<usize> = scale.pick(vec![50, 100, 200, 400], vec![40, 80]);
    let mut max_flow_diff = Vec::new();
    let mut max_wealth_diff = Vec::new();
    let mut notes = Vec::new();
    for &n in &sizes {
        let mut rng = SimRng::seed_from_u64(n as u64);
        let g = generators::scale_free(&ScaleFreeConfig::new(n).expect("cfg"), &mut rng)
            .expect("graph");
        let (_, p) = scrip_core::model::uniform_routing(&g).expect("routing");
        let d = direct_solve(&p).expect("direct");
        let w = power_iteration(&p, PowerOptions::default()).expect("power");
        assert!(is_stationary(&p, &d, 1e-8));
        let flow_diff = d
            .iter()
            .zip(&w)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        max_flow_diff.push((n as f64, flow_diff));

        let rates = vec![1.0; n];
        let network = ClosedJackson::new(&d, &rates).expect("network");
        let m = 20 * n;
        let conv = network.expected_lengths(m);
        let mva = network.mva(m).mean_lengths;
        let wealth_diff = conv
            .iter()
            .zip(&mva)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        max_wealth_diff.push((n as f64, wealth_diff));
        notes.push(format!(
            "N={n}: max |direct − power| = {flow_diff:.2e}, max |Buzen − MVA| = {wealth_diff:.2e}"
        ));
    }
    Ok(FigureResult {
        id: "ablation_solvers".into(),
        title: "Solver cross-checks: direct vs power iteration; Buzen vs MVA".into(),
        paper_expectation:
            "independent algorithms agree to numerical precision (validates the analytic \
             pipeline behind Figs. 2–4)"
                .into(),
        x_label: "network size N".into(),
        y_label: "max absolute disagreement".into(),
        series: vec![
            Series::new("stationary_flow_diff", max_flow_diff),
            Series::new("mean_wealth_diff", max_wealth_diff),
        ],
        notes,
    })
}

/// The declarative scenario behind the queue-level half of
/// [`ablation_queue_vs_protocol`] (the protocol-level half is a
/// [`StreamingMarket`], outside the scenario grammar).
pub fn ablation3_queue_scenario(scale: RunScale) -> Scenario {
    let n = scale.pick(200, 50);
    // Queue level: uniform pricing, asymmetric utilization.
    let mut scenario = Scenario::new("ablation3-queue", MarketSpec::new(n, 100));
    scenario.title = "Queue-level market vs emergent protocol-level market".into();
    scenario.run.horizon_secs = scale.pick(4_000, 600);
    scenario.run.seed = 31;
    scenario.run.metrics = vec![Metric::SPENDING_RATES, Metric::GINI_SERIES];
    scenario
}

/// Ablation: queue-level market vs protocol-level streaming market on
/// the same overlay — how much of the paper's story survives when the
/// market emerges from real chunk transfers instead of configured
/// rates.
///
/// # Errors
/// Returns [`ScenarioError`] when either half fails to run.
pub fn ablation_queue_vs_protocol(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let scenario = ablation3_queue_scenario(scale);
    let n = scenario.base.config().n;
    let horizon_secs = scenario.run.horizon_secs;
    let horizon = SimTime::from_secs(horizon_secs);
    let c = 100u64;

    let queue_result = run_scenario(&scenario, &RunnerOptions::from_env())?;
    let queue_market = queue_result.cases[0].single();
    let queue_rates = &queue_market.spending_rates();
    let queue_gini = gini(queue_rates).expect("non-empty");
    let queue_wealth_gini = queue_market.wealth_gini();

    // Protocol level: same overlay family, 1 chunk/s economy.
    let mut rng = SimRng::seed_from_u64(31);
    let g =
        generators::scale_free(&ScaleFreeConfig::new(n).expect("cfg"), &mut rng).expect("graph");
    let system = StreamingMarket::new(c)
        .streaming(StreamingConfig::market_paced(1.0))
        .run(g, 31, horizon)
        .map_err(|e| ScenarioError::Run(format!("protocol market: {e}")))?;
    let protocol_rates = system.policy().spending_rates_sorted(horizon);
    let protocol_gini = gini(&protocol_rates).expect("non-empty");
    let balances: BTreeMap<NodeId, u64> = system.policy().ledger().iter().collect();
    let protocol_wealth_gini =
        gini(&balances.values().map(|&b| b as f64).collect::<Vec<_>>()).expect("non-empty");

    let to_points = |rates: &[f64]| {
        rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as f64 / rates.len() as f64, r))
            .collect()
    };
    Ok(FigureResult {
        id: "ablation_queue_vs_protocol".into(),
        title: scenario.title,
        paper_expectation:
            "the paper simulates at the queue level with configured rates; the fully emergent \
             protocol market condenses harder (bankruptcy is absorbing: broke peers lose their \
             inventory and hence their income)"
                .into(),
        x_label: "peer quantile".into(),
        y_label: "spending rate (credits/s)".into(),
        series: vec![
            Series::new("queue_level", to_points(queue_rates)),
            Series::new("protocol_level", to_points(&protocol_rates)),
        ],
        notes: vec![
            format!(
                "queue level: rate Gini = {queue_gini:.3}, wealth Gini = {queue_wealth_gini:.3}"
            ),
            format!(
                "protocol level: rate Gini = {protocol_gini:.3}, wealth Gini = \
                 {protocol_wealth_gini:.3}"
            ),
            format!(
                "protocol denials = {}, settlements = {}",
                system.policy().denials,
                system.policy().settlements
            ),
        ],
    })
}

//! Fig. 4 — content-exchange efficiency `1 − Q{B_i = 0}` vs average
//! wealth `c` (paper Eq. 9).
//!
//! The analytic curve `1 − ((N−1)/N)^{cN} ≈ 1 − e^{−c}` rises steeply
//! and saturates near 1 by `c ≈ 5`: too few initial credits throttle
//! downloads. We also verify it against the simulated fraction of
//! non-broke spending in a symmetric market — a scenario sweeping
//! `credits` over the simulation grid; the analytic curves are
//! post-processing.

use scrip_core::queueing::approx::{efficiency_vs_wealth, idle_probability_symmetric};
use scrip_core::spec::MarketSpec;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;
use crate::scenario::{run_scenario, Metric, RunnerOptions, Scenario, ScenarioError, SweepAxis};

fn sim_grid(scale: RunScale) -> Vec<u64> {
    scale.pick(vec![1, 2, 3, 5, 8], vec![1, 5])
}

/// The declarative scenario behind Fig. 4's simulated series.
pub fn fig04_scenario(scale: RunScale) -> Scenario {
    let n_sim = scale.pick(200, 50);
    let mut base = MarketSpec::new(n_sim, 1);
    base.set("profile", "symmetric").expect("valid");
    let mut scenario = Scenario::new("fig04", base);
    scenario.title = "1 − Q{B_i = 0} vs average wealth c".into();
    scenario.run.horizon_secs = scale.pick(4_000, 800);
    scenario.run.seed = 7;
    scenario.run.metrics = vec![Metric::SPENDING_RATES];
    scenario.sweep = vec![SweepAxis::new("credits", sim_grid(scale))];
    scenario
}

/// Regenerates Fig. 4.
///
/// # Errors
/// Returns [`ScenarioError`] when the underlying scenario fails to run.
pub fn fig04_efficiency(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let n_analytic = 1_000;
    let grid: Vec<f64> = (0..=40).map(|k| k as f64 * 0.25).collect();

    let exact: Vec<(f64, f64)> = grid
        .iter()
        .map(|&c| {
            let m = (c * n_analytic as f64).round() as usize;
            let idle = idle_probability_symmetric(n_analytic, m).expect("valid");
            (c, 1.0 - idle)
        })
        .collect();
    let limit: Vec<(f64, f64)> = grid.iter().map(|&c| (c, efficiency_vs_wealth(c))).collect();
    // The exact product-form value: P{B=0} = 1/(1+c) for the geometric
    // marginal, so efficiency = c/(1+c). The simulation follows this
    // curve, quantifying the bias of the paper's approximation.
    let exact_equilibrium: Vec<(f64, f64)> = grid.iter().map(|&c| (c, c / (1.0 + c))).collect();

    // Simulation cross-check: effective spending rate / maximum rate in a
    // symmetric market equals 1 − Q{B = 0}.
    let scenario = fig04_scenario(scale);
    let n_sim = scenario.base.config().n;
    let horizon_secs = scenario.run.horizon_secs;
    let result = run_scenario(&scenario, &RunnerOptions::from_env())?;
    let mut simulated = Vec::new();
    let mut notes = Vec::new();
    for (case, c) in result.cases.iter().zip(sim_grid(scale)) {
        // Base rate is 1 credit/sec, so the max possible is n·horizon.
        let efficiency = case.single().total_spent() as f64 / (n_sim as f64 * horizon_secs as f64);
        simulated.push((c as f64, efficiency));
        notes.push(format!(
            "simulated efficiency at c={c}: {efficiency:.3} (exact c/(1+c) = {:.3}, Eq. 9 = {:.3})",
            c as f64 / (1.0 + c as f64),
            efficiency_vs_wealth(c as f64)
        ));
    }

    Ok(FigureResult {
        id: "fig04".into(),
        title: scenario.title,
        paper_expectation:
            "efficiency rises steeply with c and saturates near 1 by c ≈ 5; initial credits \
             should not be too small"
                .into(),
        x_label: "average wealth c".into(),
        y_label: "1 − Q{B_i = 0}".into(),
        series: vec![
            Series::new("exact_((N-1)/N)^M", exact),
            Series::new("limit_1-exp(-c)", limit),
            Series::new("exact_equilibrium_c/(1+c)", exact_equilibrium),
            Series::new("simulated_symmetric_market", simulated),
        ],
        notes,
    })
}

//! Fig. 3 — Gini index of the equilibrium credit distribution vs the
//! average wealth `c`, for system sizes N ∈ {50, 100, 200, 400}.
//!
//! The paper's curves grow quickly in `c` and then flatten — the
//! signature of the condensation threshold: once `c` exceeds `T`, every
//! extra credit lands on the condensate peers, and the Gini saturates.
//! We regenerate this analytically with the exact product-form
//! machinery on a mildly heterogeneous (near-symmetric) utilization
//! vector, and additionally plot the paper's literal Eq. (8) Gini,
//! which *decreases* in `c` (a documented inconsistency between the
//! paper's formula and its prose).

use scrip_core::des::SimRng;
use scrip_core::econ::gini_from_pmf;
use scrip_core::queueing::approx::eq8_symmetric_marginal;
use scrip_core::queueing::closed::ClosedJackson;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;
use crate::scenario::ScenarioError;

/// Jitter half-width of the near-symmetric utilization vector (matches
/// the market simulator's quasi-symmetric regime).
const SPREAD: f64 = 0.05;

/// Near-symmetric utilizations for `n` peers: `u_i = min_j μ_j / μ_i`
/// with `μ_i = 1 + ε_i`, `ε ~ U(−SPREAD, SPREAD)`.
fn jittered_utilizations(n: usize, rng: &mut SimRng) -> Vec<f64> {
    let mu: Vec<f64> = (0..n)
        .map(|_| 1.0 + (rng.uniform_f64() * 2.0 - 1.0) * SPREAD)
        .collect();
    let ratios: Vec<f64> = mu.iter().map(|&m| 1.0 / m).collect();
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    ratios.into_iter().map(|r| r / max).collect()
}

/// The population-mixture Gini of the exact product-form equilibrium.
fn population_gini(u: &[f64], m: usize) -> f64 {
    let network = ClosedJackson::from_utilizations(u).expect("valid utilizations");
    let gc = network.convolution(m);
    let n = u.len();
    let mut mixture = vec![0.0f64; m + 1];
    for i in 0..n {
        for (b, p) in network.marginal_pmf(i, m, &gc).into_iter().enumerate() {
            mixture[b] += p / n as f64;
        }
    }
    gini_from_pmf(&mixture).expect("valid mixture")
}

/// Regenerates Fig. 3.
///
/// # Errors
/// Infallible today (purely analytic); the `Result` keeps every
/// registered experiment uniformly fallible.
pub fn fig03_gini_vs_wealth(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let sizes: Vec<usize> = scale.pick(vec![50, 100, 200, 400], vec![50, 100]);
    let wealth_grid: Vec<u64> = scale.pick(
        vec![1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
        vec![2, 10, 40, 100],
    );
    let mut series = Vec::new();
    let mut notes = Vec::new();

    for &n in &sizes {
        let mut rng = SimRng::seed_from_u64(1_000 + n as u64);
        let u = jittered_utilizations(n, &mut rng);
        let points: Vec<(f64, f64)> = wealth_grid
            .iter()
            .map(|&c| {
                let m = (c as usize) * n;
                (c as f64, population_gini(&u, m))
            })
            .collect();
        let first = points.first().map(|&(_, g)| g).unwrap_or(0.0);
        let last = points.last().map(|&(_, g)| g).unwrap_or(0.0);
        notes.push(format!(
            "N={n}: Gini rises from {first:.3} (c={}) to {last:.3} (c={})",
            wealth_grid[0],
            wealth_grid[wealth_grid.len() - 1]
        ));
        series.push(Series::new(format!("product_form_N{n}"), points));
    }

    // The paper's literal Eq. (8) Gini for one representative N.
    let n_ref = sizes[0];
    let eq8_points: Vec<(f64, f64)> = wealth_grid
        .iter()
        .map(|&c| {
            let m = (c as usize) * n_ref;
            let pmf = eq8_symmetric_marginal(m, n_ref).expect("valid");
            (c as f64, gini_from_pmf(&pmf).expect("valid"))
        })
        .collect();
    notes.push(format!(
        "Eq.(8) binomial N={n_ref}: Gini decreases from {:.3} to {:.3} — opposite to the \
         paper's prose; see EXPERIMENTS.md",
        eq8_points.first().map(|&(_, g)| g).unwrap_or(0.0),
        eq8_points.last().map(|&(_, g)| g).unwrap_or(0.0),
    ));
    series.push(Series::new(format!("eq8_binomial_N{n_ref}"), eq8_points));

    Ok(FigureResult {
        id: "fig03".into(),
        title: "Gini index vs average wealth c".into(),
        paper_expectation:
            "Gini grows rapidly in c at first, then slowly saturates; more initial credits mean \
             more condensation risk"
                .into(),
        x_label: "average wealth c".into(),
        y_label: "Gini index".into(),
        series,
        notes,
    })
}

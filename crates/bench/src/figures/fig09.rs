//! Fig. 9 — skewness of the credit distribution under income taxation,
//! at different tax rates and thresholds.
//!
//! Paper setup: asymmetric utilization, c = 100; configurations
//! {no tax} ∪ {rate ∈ {0.1, 0.2}} × {threshold ∈ {50, 80}}.
//! Observations: (1) taxation inhibits skewness; (2) increasing the tax
//! threshold reduces the Gini; (3) at a too-low threshold the tax rate
//! barely matters, while near the average wealth a higher rate
//! redistributes effectively.

use scrip_core::des::{SimDuration, SimTime};
use scrip_core::market::{run_market, MarketConfig};
use scrip_core::policy::TaxConfig;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;

/// Utilization jitter of the quasi-symmetric market used here. The
/// paper's Fig. 9 uses its "asymmetric utilization" configured-rates
/// case; our degree-driven asymmetric profile condenses far more
/// violently (threshold T ≈ 0.1), leaving taxation no flow to tax. The
/// near-symmetric profile with ±10% rate jitter (T ≈ 20) matches the
/// paper's regime where taxation visibly competes with condensation.
const SPREAD: f64 = 0.1;

/// Regenerates Fig. 9.
pub fn fig09_taxation(scale: RunScale) -> FigureResult {
    let n = scale.pick(500, 60);
    let horizon = SimTime::from_secs(scale.pick(20_000, 2_000));
    let sample = SimDuration::from_secs(scale.pick(200, 100));
    let configs: Vec<(String, Option<TaxConfig>)> = vec![
        ("no_taxation".into(), None),
        (
            "rate0.1_thr50".into(),
            Some(TaxConfig::new(0.1, 50).expect("valid")),
        ),
        (
            "rate0.2_thr50".into(),
            Some(TaxConfig::new(0.2, 50).expect("valid")),
        ),
        (
            "rate0.1_thr80".into(),
            Some(TaxConfig::new(0.1, 80).expect("valid")),
        ),
        (
            "rate0.2_thr80".into(),
            Some(TaxConfig::new(0.2, 80).expect("valid")),
        ),
    ];
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for (label, tax) in configs {
        let mut config = MarketConfig::new(n, 100)
            .near_symmetric(SPREAD)
            .sample_interval(sample);
        if let Some(t) = tax {
            config = config.tax(t);
        }
        let market = run_market(config, 777, horizon).expect("market runs");
        let plateau = market.gini_series().tail_mean(10).unwrap_or(0.0);
        let collected = market.taxation().map(|t| t.collected).unwrap_or(0);
        notes.push(format!(
            "{label}: plateau Gini = {plateau:.3}, collected = {collected}"
        ));
        let points = market
            .gini_series()
            .samples()
            .iter()
            .map(|&(t, g)| (t.as_secs_f64(), g))
            .collect();
        series.push(Series::new(label, points));
    }
    FigureResult {
        id: "fig09".into(),
        title: "Skewness of credit distribution at different tax rates and thresholds".into(),
        paper_expectation:
            "taxation lowers the Gini; higher thresholds lower it further; at threshold 50 the \
             two rates nearly overlap, at threshold 80 the higher rate helps"
                .into(),
        x_label: "time (s)".into(),
        y_label: "Gini index".into(),
        series,
        notes,
    }
}

//! Fig. 9 — skewness of the credit distribution under income taxation,
//! at different tax rates and thresholds.
//!
//! Paper setup: asymmetric utilization, c = 100; configurations
//! {no tax} ∪ {rate ∈ {0.1, 0.2}} × {threshold ∈ {50, 80}}.
//! Observations: (1) taxation inhibits skewness; (2) increasing the tax
//! threshold reduces the Gini; (3) at a too-low threshold the tax rate
//! barely matters, while near the average wealth a higher rate
//! redistributes effectively.
//!
//! One scenario with five explicit cases overriding the `tax` key.

use scrip_core::spec::MarketSpec;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;
use crate::scenario::{run_scenario, CaseSpec, Metric, RunnerOptions, Scenario, ScenarioError};

/// Utilization jitter of the quasi-symmetric market used here. The
/// paper's Fig. 9 uses its "asymmetric utilization" configured-rates
/// case; our degree-driven asymmetric profile condenses far more
/// violently (threshold T ≈ 0.1), leaving taxation no flow to tax. The
/// near-symmetric profile with ±10% rate jitter (T ≈ 20) matches the
/// paper's regime where taxation visibly competes with condensation.
const SPREAD: f64 = 0.1;

/// The declarative scenario behind Fig. 9.
pub fn fig09_scenario(scale: RunScale) -> Scenario {
    let n = scale.pick(500, 60);
    let mut base = MarketSpec::new(n, 100);
    base.set("profile", &format!("near-symmetric:{SPREAD}"))
        .expect("valid");
    base.set("sample", &scale.pick(200, 100).to_string())
        .expect("valid");
    let mut scenario = Scenario::new("fig09", base);
    scenario.title = "Skewness of credit distribution at different tax rates and thresholds".into();
    scenario.run.horizon_secs = scale.pick(20_000, 2_000);
    scenario.run.seed = 777;
    scenario.run.metrics = vec![Metric::GINI_SERIES];
    scenario.cases = vec![
        CaseSpec::new("no_taxation"),
        CaseSpec::new("rate0.1_thr50").with("tax", "0.1:50"),
        CaseSpec::new("rate0.2_thr50").with("tax", "0.2:50"),
        CaseSpec::new("rate0.1_thr80").with("tax", "0.1:80"),
        CaseSpec::new("rate0.2_thr80").with("tax", "0.2:80"),
    ];
    scenario
}

/// Regenerates Fig. 9.
///
/// # Errors
/// Returns [`ScenarioError`] when the underlying scenario fails to run.
pub fn fig09_taxation(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let scenario = fig09_scenario(scale);
    let result = run_scenario(&scenario, &RunnerOptions::from_env())?;
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for case in &result.cases {
        let rep = case.single();
        let s = Series::new(case.label.clone(), rep.gini().to_vec());
        let plateau = s.tail_mean(10).unwrap_or(0.0);
        notes.push(format!(
            "{}: plateau Gini = {plateau:.3}, collected = {}",
            case.label,
            rep.tax_collected()
        ));
        series.push(s);
    }
    Ok(FigureResult {
        id: "fig09".into(),
        title: scenario.title,
        paper_expectation:
            "taxation lowers the Gini; higher thresholds lower it further; at threshold 50 the \
             two rates nearly overlap, at threshold 80 the higher rate helps"
                .into(),
        x_label: "time (s)".into(),
        y_label: "Gini index".into(),
        series,
        notes,
    })
}

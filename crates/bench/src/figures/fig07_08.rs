//! Figs. 7–8 — evolution of the Gini index over time for average
//! wealth c ∈ {50, 100, 200}, under (near-)symmetric and asymmetric
//! utilization.
//!
//! Paper observations: the Gini always converges (a stable circulation
//! is reached), and larger average wealth stabilizes at a larger Gini.
//! The asymmetric case stabilizes higher than the symmetric one.

use scrip_core::des::{SimDuration, SimTime};
use scrip_core::market::{run_market, MarketConfig};

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;

const WEALTH_LEVELS: [u64; 3] = [50, 100, 200];

/// Rate jitter of the quasi-symmetric regime (see `UtilizationProfile::
/// NearSymmetric`): a real protocol's availability-driven routing is
/// only nominally symmetric, which is what produces the paper's
/// c-ordered plateaus.
const NEAR_SYMMETRIC_SPREAD: f64 = 0.03;

fn gini_evolution(
    scale: RunScale,
    configure: impl Fn(MarketConfig) -> MarketConfig,
) -> (Vec<Series>, Vec<String>) {
    let (n, horizon_secs, sample_secs) = scale.market_params();
    let horizon = SimTime::from_secs(horizon_secs);
    let sample = SimDuration::from_secs(sample_secs);
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for &c in &WEALTH_LEVELS {
        let config = configure(MarketConfig::new(n, c).sample_interval(sample));
        let market = run_market(config, 4242, horizon).expect("market runs");
        let points: Vec<(f64, f64)> = market
            .gini_series()
            .samples()
            .iter()
            .map(|&(t, g)| (t.as_secs_f64(), g))
            .collect();
        let plateau = market.gini_series().tail_mean(10).unwrap_or(0.0);
        let converged = market.gini_series().has_converged(10, 0.05);
        notes.push(format!(
            "c={c}: plateau Gini = {plateau:.3}, converged (±0.05 over last 10 samples) = \
             {converged}"
        ));
        series.push(Series::new(format!("c{c}"), points));
    }
    (series, notes)
}

/// Regenerates Fig. 7 (near-symmetric utilization).
pub fn fig07_gini_evolution_symmetric(scale: RunScale) -> FigureResult {
    let (series, notes) = gini_evolution(scale, |cfg| cfg.near_symmetric(NEAR_SYMMETRIC_SPREAD));
    FigureResult {
        id: "fig07".into(),
        title: "Evolution of Gini index under (near-)symmetric utilization".into(),
        paper_expectation:
            "Gini converges for every c; the larger the average wealth, the larger the \
             stabilized Gini"
                .into(),
        x_label: "time (s)".into(),
        y_label: "Gini index".into(),
        series,
        notes,
    }
}

/// Regenerates Fig. 8 (asymmetric utilization).
pub fn fig08_gini_evolution_asymmetric(scale: RunScale) -> FigureResult {
    let (series, notes) = gini_evolution(scale, |cfg| cfg.asymmetric());
    FigureResult {
        id: "fig08".into(),
        title: "Evolution of Gini index under asymmetric utilization".into(),
        paper_expectation:
            "stable state reached in all cases; larger c gives larger stabilized Gini, higher \
             than the symmetric case"
                .into(),
        x_label: "time (s)".into(),
        y_label: "Gini index".into(),
        series,
        notes,
    }
}

//! Figs. 7–8 — evolution of the Gini index over time for average
//! wealth c ∈ {50, 100, 200}, under (near-)symmetric and asymmetric
//! utilization.
//!
//! Paper observations: the Gini always converges (a stable circulation
//! is reached), and larger average wealth stabilizes at a larger Gini.
//! The asymmetric case stabilizes higher than the symmetric one.
//!
//! Both figures are one scenario each: a sweep of `credits` over the
//! three wealth levels on the respective utilization profile.

use scrip_core::spec::MarketSpec;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;
use crate::scenario::{run_scenario, Metric, RunnerOptions, Scenario, ScenarioError, SweepAxis};

const WEALTH_LEVELS: [u64; 3] = [50, 100, 200];

/// Rate jitter of the quasi-symmetric regime (see `UtilizationProfile::
/// NearSymmetric`): a real protocol's availability-driven routing is
/// only nominally symmetric, which is what produces the paper's
/// c-ordered plateaus.
const NEAR_SYMMETRIC_SPREAD: f64 = 0.03;

fn gini_scenario(scale: RunScale, name: &str, title: &str, profile: &str) -> Scenario {
    let (n, horizon_secs, sample_secs) = scale.market_params();
    let mut base = MarketSpec::new(n, WEALTH_LEVELS[0]);
    base.set("profile", profile).expect("valid profile");
    base.set("sample", &sample_secs.to_string()).expect("valid");
    let mut scenario = Scenario::new(name, base);
    scenario.title = title.into();
    scenario.run.horizon_secs = horizon_secs;
    scenario.run.seed = 4242;
    scenario.run.metrics = vec![Metric::GINI_SERIES];
    scenario.sweep = vec![SweepAxis::new("credits", WEALTH_LEVELS)];
    scenario
}

/// The declarative scenario behind Fig. 7.
pub fn fig07_scenario(scale: RunScale) -> Scenario {
    gini_scenario(
        scale,
        "fig07",
        "Evolution of Gini index under (near-)symmetric utilization",
        &format!("near-symmetric:{NEAR_SYMMETRIC_SPREAD}"),
    )
}

/// The declarative scenario behind Fig. 8.
pub fn fig08_scenario(scale: RunScale) -> Scenario {
    gini_scenario(
        scale,
        "fig08",
        "Evolution of Gini index under asymmetric utilization",
        "asymmetric",
    )
}

fn gini_evolution(scenario: &Scenario) -> Result<(Vec<Series>, Vec<String>), ScenarioError> {
    let result = run_scenario(scenario, &RunnerOptions::from_env())?;
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for (case, &c) in result.cases.iter().zip(&WEALTH_LEVELS) {
        let s = Series::new(format!("c{c}"), case.single().gini().to_vec());
        let plateau = s.tail_mean(10).unwrap_or(0.0);
        let converged = s.has_converged(10, 0.05);
        notes.push(format!(
            "c={c}: plateau Gini = {plateau:.3}, converged (±0.05 over last 10 samples) = \
             {converged}"
        ));
        series.push(s);
    }
    Ok((series, notes))
}

/// Regenerates Fig. 7 (near-symmetric utilization).
///
/// # Errors
/// Returns [`ScenarioError`] when the underlying scenario fails to run.
pub fn fig07_gini_evolution_symmetric(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let scenario = fig07_scenario(scale);
    let (series, notes) = gini_evolution(&scenario)?;
    Ok(FigureResult {
        id: "fig07".into(),
        title: scenario.title,
        paper_expectation:
            "Gini converges for every c; the larger the average wealth, the larger the \
             stabilized Gini"
                .into(),
        x_label: "time (s)".into(),
        y_label: "Gini index".into(),
        series,
        notes,
    })
}

/// Regenerates Fig. 8 (asymmetric utilization).
///
/// # Errors
/// Returns [`ScenarioError`] when the underlying scenario fails to run.
pub fn fig08_gini_evolution_asymmetric(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let scenario = fig08_scenario(scale);
    let (series, notes) = gini_evolution(&scenario)?;
    Ok(FigureResult {
        id: "fig08".into(),
        title: scenario.title,
        paper_expectation:
            "stable state reached in all cases; larger c gives larger stabilized Gini, higher \
             than the symmetric case"
                .into(),
        x_label: "time (s)".into(),
        y_label: "Gini index".into(),
        series,
        notes,
    })
}

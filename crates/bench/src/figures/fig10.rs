//! Fig. 10 — static vs dynamic spending rates.
//!
//! Paper setup (Sec. VI-D): asymmetric utilization, c = 100; a peer
//! with wealth above a threshold `m` spends at `μ_s·B/m` instead of
//! `μ_s`. Observation: the stabilized Gini under dynamic spending is
//! smaller — encouraging the rich to spend mitigates condensation.

use scrip_core::des::{SimDuration, SimTime};
use scrip_core::market::{run_market, MarketConfig};
use scrip_core::policy::SpendingPolicy;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;

/// Regenerates Fig. 10.
pub fn fig10_dynamic_spending(scale: RunScale) -> FigureResult {
    let (n, horizon_secs, sample_secs) = scale.market_params();
    let horizon = SimTime::from_secs(horizon_secs);
    let sample = SimDuration::from_secs(sample_secs);
    let threshold = 100; // the average wealth, as in the paper's setup
    let cases = [
        ("without_adjustment", SpendingPolicy::Fixed),
        ("with_adjustment", SpendingPolicy::Dynamic { threshold }),
    ];
    let mut series = Vec::new();
    let mut notes = Vec::new();
    let mut plateaus = Vec::new();
    for (label, policy) in cases {
        let config = MarketConfig::new(n, 100)
            .asymmetric()
            .spending(policy)
            .sample_interval(sample);
        let market = run_market(config, 888, horizon).expect("market runs");
        let plateau = market.gini_series().tail_mean(10).unwrap_or(0.0);
        plateaus.push(plateau);
        notes.push(format!("{label}: plateau Gini = {plateau:.3}"));
        let points = market
            .gini_series()
            .samples()
            .iter()
            .map(|&(t, g)| (t.as_secs_f64(), g))
            .collect();
        series.push(Series::new(label, points));
    }
    if plateaus.len() == 2 {
        notes.push(format!(
            "dynamic-spending Gini reduction: {:.3}",
            plateaus[0] - plateaus[1]
        ));
    }
    FigureResult {
        id: "fig10".into(),
        title: "Static vs dynamic spending rate".into(),
        paper_expectation:
            "the stabilized Gini with dynamic spending-rate adjustment is smaller than with \
             fixed rates"
                .into(),
        x_label: "time (s)".into(),
        y_label: "Gini index".into(),
        series,
        notes,
    }
}

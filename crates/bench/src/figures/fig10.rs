//! Fig. 10 — static vs dynamic spending rates.
//!
//! Paper setup (Sec. VI-D): asymmetric utilization, c = 100; a peer
//! with wealth above a threshold `m` spends at `μ_s·B/m` instead of
//! `μ_s`. Observation: the stabilized Gini under dynamic spending is
//! smaller — encouraging the rich to spend mitigates condensation.
//!
//! One scenario with two explicit cases overriding the `spending` key.

use scrip_core::spec::MarketSpec;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;
use crate::scenario::{run_scenario, CaseSpec, Metric, RunnerOptions, Scenario, ScenarioError};

/// The declarative scenario behind Fig. 10.
pub fn fig10_scenario(scale: RunScale) -> Scenario {
    let (n, horizon_secs, sample_secs) = scale.market_params();
    let mut base = MarketSpec::new(n, 100);
    base.set("sample", &sample_secs.to_string()).expect("valid");
    let mut scenario = Scenario::new("fig10", base);
    scenario.title = "Static vs dynamic spending rate".into();
    scenario.run.horizon_secs = horizon_secs;
    scenario.run.seed = 888;
    scenario.run.metrics = vec![Metric::GINI_SERIES];
    scenario.cases = vec![
        CaseSpec::new("without_adjustment"),
        // Threshold 100 = the average wealth, as in the paper's setup.
        CaseSpec::new("with_adjustment").with("spending", "dynamic:100"),
    ];
    scenario
}

/// Regenerates Fig. 10.
///
/// # Errors
/// Returns [`ScenarioError`] when the underlying scenario fails to run.
pub fn fig10_dynamic_spending(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    let scenario = fig10_scenario(scale);
    let result = run_scenario(&scenario, &RunnerOptions::from_env())?;
    let mut series = Vec::new();
    let mut notes = Vec::new();
    let mut plateaus = Vec::new();
    for case in &result.cases {
        let s = Series::new(case.label.clone(), case.single().gini().to_vec());
        let plateau = s.tail_mean(10).unwrap_or(0.0);
        plateaus.push(plateau);
        notes.push(format!("{}: plateau Gini = {plateau:.3}", case.label));
        series.push(s);
    }
    if plateaus.len() == 2 {
        notes.push(format!(
            "dynamic-spending Gini reduction: {:.3}",
            plateaus[0] - plateaus[1]
        ));
    }
    Ok(FigureResult {
        id: "fig10".into(),
        title: scenario.title,
        paper_expectation:
            "the stabilized Gini with dynamic spending-rate adjustment is smaller than with \
             fixed rates"
                .into(),
        x_label: "time (s)".into(),
        y_label: "Gini index".into(),
        series,
        notes,
    })
}

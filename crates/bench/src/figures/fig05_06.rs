//! Figs. 5–6 — convergence of the credit distribution: sorted wealth
//! curves in the early stage (0–20 000 s) and the late stage
//! (20 000–40 000 s).
//!
//! The paper's observation: early-stage curves keep steepening, while
//! late-stage curves largely overlap — the distribution of queue
//! lengths stabilizes, the equilibrium of Sec. IV.
//!
//! Each figure is one scenario whose `snapshots` record the sorted
//! wealth distribution at the plotted instants.

use scrip_core::spec::MarketSpec;

use crate::figures::{FigureResult, Series};
use crate::scale::RunScale;
use crate::scenario::{run_scenario, Metric, RunnerOptions, Scenario, ScenarioError};

fn snapshot_scenario(scale: RunScale, name: &str, title: &str, times: Vec<u64>) -> Scenario {
    let n = scale.pick(1_000, 80);
    let mut base = MarketSpec::new(n, 100);
    base.set("profile", "symmetric").expect("valid");
    let mut scenario = Scenario::new(name, base);
    scenario.title = title.into();
    scenario.run.horizon_secs = *times.last().expect("non-empty snapshot grid");
    scenario.run.seed = 99;
    scenario.run.snapshots = times;
    scenario.run.metrics = vec![Metric::SNAPSHOTS];
    scenario
}

/// The declarative scenario behind Fig. 5.
pub fn fig05_scenario(scale: RunScale) -> Scenario {
    snapshot_scenario(
        scale,
        "fig05",
        "Credit distribution in the earlier stage",
        scale.pick(
            vec![2_000, 5_000, 10_000, 15_000, 20_000],
            vec![100, 300, 600, 1_000],
        ),
    )
}

/// The declarative scenario behind Fig. 6.
pub fn fig06_scenario(scale: RunScale) -> Scenario {
    snapshot_scenario(
        scale,
        "fig06",
        "Credit distribution in the later stage",
        scale.pick(
            vec![24_000, 28_000, 32_000, 36_000, 40_000],
            vec![1_200, 1_500, 1_800, 2_100],
        ),
    )
}

fn to_figure(
    id: &str,
    expectation: &str,
    scenario: Scenario,
) -> Result<FigureResult, ScenarioError> {
    let result = run_scenario(&scenario, &RunnerOptions::from_env())?;
    let snaps = &result.cases[0].single().snapshots();
    let mut notes = Vec::new();
    // Quantify overlap between successive curves: mean |Δ| between
    // consecutive sorted-wealth snapshots, relative to the mean wealth.
    for w in snaps.windows(2) {
        let (t1, ref a) = w[0];
        let (t2, ref b) = w[1];
        let mean_abs: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .sum::<f64>()
            / a.len() as f64;
        let mean_wealth: f64 = b.iter().sum::<u64>() as f64 / b.len() as f64;
        notes.push(format!(
            "mean |Δ sorted wealth| between t={t1} and t={t2}: {:.3} (relative {:.3})",
            mean_abs,
            mean_abs / mean_wealth.max(1e-9)
        ));
    }
    let series = snaps
        .iter()
        .map(|(t, sorted)| {
            Series::new(
                format!("t{t}"),
                sorted
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| (i as f64, b as f64))
                    .collect(),
            )
        })
        .collect();
    Ok(FigureResult {
        id: id.into(),
        title: scenario.title,
        paper_expectation: expectation.into(),
        x_label: "peer rank (sorted by wealth)".into(),
        y_label: "credits held".into(),
        series,
        notes,
    })
}

/// Regenerates Fig. 5 (early stage).
///
/// # Errors
/// Returns [`ScenarioError`] when the underlying scenario fails to run.
pub fn fig05_convergence_early(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    to_figure(
        "fig05",
        "sorted-wealth curves steepen over time: flatter curves at earlier times, steeper later \
         (the distribution is still evolving)",
        fig05_scenario(scale),
    )
}

/// Regenerates Fig. 6 (late stage).
///
/// # Errors
/// Returns [`ScenarioError`] when the underlying scenario fails to run.
pub fn fig06_convergence_late(scale: RunScale) -> Result<FigureResult, ScenarioError> {
    to_figure(
        "fig06",
        "late-stage sorted-wealth curves largely overlap: the credit distribution has converged \
         to its equilibrium",
        fig06_scenario(scale),
    )
}

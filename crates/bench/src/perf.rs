//! The `scrip-sim bench` harness: end-to-end market throughput.
//!
//! Measures events/sec of the discrete-event market simulator across the
//! four queue-level hot regimes (asymmetric neighbor routing,
//! availability feedback, taxation, churn) at n ∈ {1k, 10k, 100k}, the
//! fault-injected churn market (`faulted`: 1% drop + 1% defect with
//! escrowed retries, timing the recovery machinery itself), the
//! deterministically sharded churn market at 1/2/4 execution shards
//! (`sharded_s1` is the serial-parity anchor; the report records each
//! shard count's speedup over it), the chunk-level streaming market's
//! trade loop, the cost of a wealth Gini sample at large n, and the
//! observation layer's probe-dispatch overhead (a full probe set
//! attached vs a detached recorder on the
//! n=10k market). Results are written to `BENCH_market.json` (see
//! [`BenchReport::to_json`] for the schema), seeding the repo's
//! performance trajectory, and CI replays the quick-scale subset to
//! catch throughput regressions (see [`compare_against`]).
//!
//! The harness runs strictly single-threaded: each case is one seeded
//! simulation on one core, so events/sec is a clean per-core figure.

use std::time::Instant;

use scrip_core::market::{ChurnConfig, CreditMarket, MarketConfig, MarketEvent};
use scrip_core::obs::Session;
use scrip_core::policy::TaxConfig;
use scrip_core::protocol::build_streaming_market;
use scrip_core::sharded::ShardedMarket;
use scrip_core::streaming::{StreamEvent, StreamingConfig};
use scrip_des::{FaultSpec, ShardedSimulation, SimDuration, SimTime, Simulation};

use crate::scale::RunScale;
use crate::scenario::{Metric, RunSpec};

/// One measured bench case.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Which hot path this case exercises (`asymmetric`,
    /// `availability_feedback`, `tax`, `churn`, the paired
    /// `churn_session`/`churn_recorded` overhead rows, or
    /// `gini_sample`).
    pub regime: String,
    /// Number of peers.
    pub n: usize,
    /// Scale the case ran at (`quick` or `full`).
    pub scale: String,
    /// Dispatched simulator events (Gini samples for `gini_sample`).
    pub events: u64,
    /// Wall-clock seconds for the measured section.
    pub wall_secs: f64,
    /// `events / wall_secs` — the headline throughput number.
    pub events_per_sec: f64,
    /// Process resident-set high-water mark (bytes) after this case, if
    /// the platform exposes it (Linux `VmHWM`). Monotone across cases in
    /// one process, so attribute growth to the case that caused it.
    pub peak_rss_bytes: Option<u64>,
}

/// A full bench run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// Measured cases, in execution order (ascending n per regime).
    pub entries: Vec<BenchEntry>,
}

/// Reads the process peak RSS (`VmHWM`) in bytes on Linux.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The benched market configuration for a regime at size `n`.
fn regime_config(regime: &str, n: usize) -> MarketConfig {
    let base = MarketConfig::new(n, 50).sample_interval(SimDuration::from_secs(50));
    match regime {
        "asymmetric" => base.asymmetric(),
        "availability_feedback" => base.asymmetric().with_availability_feedback(),
        "tax" => base
            .asymmetric()
            .tax(TaxConfig::new(0.2, 40).expect("valid tax")),
        "churn" => {
            let lifespan = 500.0;
            base.asymmetric()
                .churn(ChurnConfig::new(n as f64 / lifespan, lifespan, 20).expect("valid churn"))
        }
        other => unreachable!("unknown bench regime {other}"),
    }
}

const REGIMES: [&str; 4] = ["asymmetric", "availability_feedback", "tax", "churn"];

/// Case list at a scale: (regime, n, horizon_secs). Horizons shrink with
/// n so every case dispatches a comparable number of events (~2M full,
/// ~500k quick) — events/sec stays meaningful while wall-clock stays
/// bounded.
fn cases(scale: RunScale) -> Vec<(&'static str, usize, u64)> {
    // Quick's n=10⁴ rows are the scaled-down counterparts of the full
    // suite's n=10⁶ rows: same Fenwick-sampler + timing-wheel hot path,
    // small enough for the CI regression gate.
    let sizes: &[usize] = match scale {
        RunScale::Full => &[1_000, 10_000, 100_000, 1_000_000],
        RunScale::Quick => &[1_000, 10_000],
    };
    // Quick scale still dispatches ~500k events per case so each timed
    // window is hundreds of milliseconds — long enough that scheduler
    // jitter on a noisy CI runner stays well inside the 30% regression
    // gate.
    let target_events: u64 = match scale {
        RunScale::Full => 2_000_000,
        RunScale::Quick => 500_000,
    };
    let mut out = Vec::new();
    for &regime in &REGIMES {
        for &n in sizes {
            out.push((regime, n, (target_events / n as u64).max(10)));
        }
    }
    out
}

/// Measures one market case: build (untimed), then dispatch events to
/// the horizon (timed).
fn run_market_case(regime: &'static str, n: usize, horizon_secs: u64, scale: &str) -> BenchEntry {
    let market = CreditMarket::build(regime_config(regime, n), 42).expect("bench market builds");
    let profile = market.queue_profile();
    let mut sim = Simulation::with_profile(market, profile);
    sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
    let start = Instant::now();
    let stats = sim.run_until(SimTime::from_secs(horizon_secs));
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    BenchEntry {
        regime: regime.into(),
        n,
        scale: scale.into(),
        events: stats.events_processed,
        wall_secs: wall,
        events_per_sec: stats.events_processed as f64 / wall,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Fault-injection cases at a scale: `(n, horizon_secs)` — the churn
/// market with an active 1% drop + 1% defect fault plan, so every
/// trade walks the escrow hold/settle path and a steady trickle walks
/// refund + scheduled retry. Horizons match the queue-level event
/// targets, making this directly comparable with the fault-free
/// `churn` rows at the same n: the gap between the two is the all-in
/// cost of the recovery machinery.
fn faulted_cases(scale: RunScale) -> Vec<(usize, u64)> {
    match scale {
        RunScale::Full => vec![(100_000, 20)],
        RunScale::Quick => vec![(10_000, 50)],
    }
}

/// The `faulted` regime's market configuration: the `churn` regime plus
/// a fault plan injecting 1% drops and 1% defections from t = 0.
fn faulted_config(n: usize) -> MarketConfig {
    regime_config("churn", n).faults(FaultSpec {
        drop_rate: 0.01,
        defect_rate: 0.01,
        ..FaultSpec::default()
    })
}

/// Measures the fault-injected churn market. Build is untimed; event
/// dispatch to the horizon — including fault draws, escrow accounting,
/// refunds, and retry scheduling — is timed.
fn run_faulted_case(n: usize, horizon_secs: u64, scale: &str) -> BenchEntry {
    let market = CreditMarket::build(faulted_config(n), 42).expect("bench market builds");
    let profile = market.queue_profile();
    let mut sim = Simulation::with_profile(market, profile);
    sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
    let start = Instant::now();
    let stats = sim.run_until(SimTime::from_secs(horizon_secs));
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let model = sim.model();
    assert!(model.faults_enabled(), "fault plan must be active");
    assert!(
        model.ledger().conserved(),
        "books must balance under faults"
    );
    BenchEntry {
        regime: "faulted".into(),
        n,
        scale: scale.into(),
        events: stats.events_processed,
        wall_secs: wall,
        events_per_sec: stats.events_processed as f64 / wall,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Trace-recording cases at a scale: `(n, horizon_secs)` — the churn
/// regime driven through a [`Session`] that records every applied
/// event to a `SCRIPTRC` trace. The gap between the paired
/// `churn_session`/`churn_recorded` rows is the all-in cost of the
/// hot-path [`scrip_des::TraceWriter`] (buffered frame encode +
/// boundary digests + flushes), gated at <5% full scale / <10% quick
/// by [`record_overhead_failures`]. Both scales run n=10⁵ — the size
/// the headline claim is made at: the per-frame encode cost is fixed
/// (~0.1 µs), so at n=10⁴ (where quick's other rows live) it would be
/// ~11% of the cheaper per-event dispatch and the proxy would gate a
/// different ratio than the claim. Quick just shortens the horizon.
fn recorded_cases(scale: RunScale) -> Vec<(usize, u64)> {
    match scale {
        RunScale::Full => vec![(100_000, 20)],
        RunScale::Quick => vec![(100_000, 5)],
    }
}

/// Measures the trace-recording overhead as a *paired* experiment:
/// interleaved trials of the same churn-market [`Session`] run with
/// and without `record_to`, keeping each side's best throughput.
/// Returns `(churn_session, churn_recorded)` — the unrecorded anchor
/// and the recorded row. Pairing makes the comparison like-for-like
/// (both sides pay the identical `Session` dispatch path), and
/// best-of-N interleaving cancels the wall-clock noise a shared VM
/// injects into sub-second windows: noise only ever slows a trial
/// down, so the per-side maximum is the closest observation of the
/// true cost on both sides of the ratio.
///
/// The recorded side sinks to `/dev/null`: the row gates the
/// *hot-path* cost — per-event frame encode + checksum + staging —
/// which is what the trace layer controls. Physical write-out cost is
/// an environment property (on a multi-core host page-cache writeback
/// overlaps the run; on a single-core container it steals the only
/// CPU), and letting it into the row would gate the runner's disk,
/// not the code. Builds and trace attachment are untimed; event
/// dispatch to the horizon plus the final flush are timed.
fn run_recorded_case(n: usize, horizon_secs: u64, scale: &str) -> (BenchEntry, BenchEntry) {
    let config = regime_config("churn", n);
    let horizon = SimTime::from_secs(horizon_secs);
    let trace_path = std::path::PathBuf::from("/dev/null");
    // Three interleaved trials per side: noise on a shared runner only
    // ever slows a window down, so each side's best-of-3 is the
    // closest observation of its true cost, and interleaving keeps a
    // sustained slow patch from landing entirely on one side.
    let trials = 3;
    let mut best: [Option<(u64, f64)>; 2] = [None, None];
    for _ in 0..trials {
        for (side, record) in [(0usize, false), (1usize, true)] {
            let mut session = Session::from_config(&config, 42).expect("bench session builds");
            if record {
                session.record_to(&trace_path).expect("recording starts");
            }
            let start = Instant::now();
            session.run_until(horizon);
            if record {
                session.finish_trace().expect("trace completes");
            }
            let wall = start.elapsed().as_secs_f64().max(1e-9);
            let events = session.stats().events_processed;
            if best[side].map_or(true, |(_, w)| wall < w) {
                best[side] = Some((events, wall));
            }
        }
    }
    let entry = |regime: &str, (events, wall): (u64, f64)| BenchEntry {
        regime: regime.into(),
        n,
        scale: scale.into(),
        events,
        wall_secs: wall,
        events_per_sec: events as f64 / wall,
        peak_rss_bytes: peak_rss_bytes(),
    };
    (
        entry("churn_session", best[0].expect("at least one trial")),
        entry("churn_recorded", best[1].expect("at least one trial")),
    )
}

/// Sharded-execution cases at a scale: `(shards, n, horizon_secs)` —
/// the churn market partitioned across execution shards. Horizons match
/// the queue-level event targets so events/sec is comparable with the
/// serial `churn` regime at the same n. The `sharded_s1` entry is the
/// serial-parity anchor: `sharded_s2`/`sharded_s4` divided by it give
/// the recorded speedup (parity within noise is expected on a
/// single-core runner — the kernel buys determinism first, cores
/// second).
fn sharded_cases(scale: RunScale) -> Vec<(usize, usize, u64)> {
    let (n, horizon): (usize, u64) = match scale {
        RunScale::Full => (100_000, 20),
        RunScale::Quick => (1_000, 500),
    };
    vec![(1, n, horizon), (2, n, horizon), (4, n, horizon)]
}

/// Measures the deterministically sharded churn market: the same
/// workload as the `churn` regime, run through
/// [`ShardedSimulation`]/[`ShardedMarket`] at `shards` execution
/// shards. Output is byte-identical to the serial run for every shard
/// count, so this times pure execution-strategy overhead/speedup.
/// Build + partition are untimed; event dispatch to the horizon is
/// timed.
fn run_sharded_case(shards: usize, n: usize, horizon_secs: u64, scale: &str) -> BenchEntry {
    let config = regime_config("churn", n).shards(shards);
    let interval = config.sample_interval;
    let market = CreditMarket::build(config, 42).expect("bench market builds");
    let profile = market.queue_profile();
    let mut sim =
        ShardedSimulation::with_profile(ShardedMarket::new(market, shards), interval, profile);
    sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
    let start = Instant::now();
    let stats = sim.run_until(SimTime::from_secs(horizon_secs));
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    BenchEntry {
        regime: format!("sharded_s{shards}"),
        n,
        scale: scale.into(),
        events: stats.events_processed,
        wall_secs: wall,
        events_per_sec: stats.events_processed as f64 / wall,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Chunk-level streaming cases at a scale: `(n, horizon_secs)`. The
/// trade loop dispatches ~3 events per peer-second under
/// `market_paced(1.0)`, so these horizons land near the queue-level
/// event targets.
fn streaming_cases(scale: RunScale) -> Vec<(usize, u64)> {
    match scale {
        RunScale::Full => vec![(1_000, 100), (10_000, 40)],
        RunScale::Quick => vec![(1_000, 100)],
    }
}

/// Measures the chunk-level streaming market's trade loop: a
/// `market_paced(1.0)` swarm over the scale-free overlay with 50
/// credits per peer and uniform pricing, every chunk transfer settling
/// through the shared ledger. Build is untimed; event dispatch to the
/// horizon is timed.
fn run_streaming_case(n: usize, horizon_secs: u64, scale: &str) -> BenchEntry {
    let config = MarketConfig::new(n, 50)
        .streaming_market(StreamingConfig::market_paced(1.0))
        .sample_interval(SimDuration::from_secs(50));
    let system = build_streaming_market(&config, 42).expect("bench swarm builds");
    let profile = system.queue_profile();
    let mut sim = Simulation::with_profile(system, profile);
    sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
    let start = Instant::now();
    let stats = sim.run_until(SimTime::from_secs(horizon_secs));
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    BenchEntry {
        regime: "streaming".into(),
        n,
        scale: scale.into(),
        events: stats.events_processed,
        wall_secs: wall,
        events_per_sec: stats.events_processed as f64 / wall,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Measures the observation layer's dispatch overhead on the n=10k
/// asymmetric market: one [`Session`] with every registry probe
/// attached (`probe_attached`, snapshots at mid-run and horizon) versus
/// a probe-less session (`probe_detached`, the zero-overhead fast
/// path). Probe dispatch is sample-time only, so the two rates should
/// track each other closely; the regression gate catches any creep of
/// observation cost onto the spend hot path.
fn run_probe_case(attached: bool, n: usize, horizon_secs: u64, scale: &str) -> BenchEntry {
    let config = regime_config("asymmetric", n);
    let mut session = Session::from_config(&config, 42).expect("bench session builds");
    if attached {
        let run = RunSpec {
            horizon_secs,
            snapshots: vec![horizon_secs / 2, horizon_secs],
            ..RunSpec::default()
        };
        for metric in Metric::registry() {
            session.attach(metric.make_probe(&run));
        }
    }
    let start = Instant::now();
    session.run_until(SimTime::from_secs(horizon_secs));
    let stats = session.stats();
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    // Keep the record observable so the probe work cannot be elided.
    let (record, _) = session.finish();
    assert!(record.counter(scrip_core::obs::ids::PURCHASES) > 0);
    BenchEntry {
        regime: if attached {
            "probe_attached".into()
        } else {
            "probe_detached".into()
        },
        n,
        scale: scale.into(),
        events: stats.events_processed,
        wall_secs: wall,
        events_per_sec: stats.events_processed as f64 / wall,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Probe-overhead cases at a scale: `(attached, n, horizon_secs)` —
/// always the n=10k market, sized near the queue-level event targets.
fn probe_cases(scale: RunScale) -> Vec<(bool, usize, u64)> {
    let horizon = match scale {
        RunScale::Full => 200,
        RunScale::Quick => 50,
    };
    vec![(false, 10_000, horizon), (true, 10_000, horizon)]
}

/// Serve-streaming cases at a scale: `(n, horizon_secs)` — the churn
/// regime submitted to an in-process job daemon. Sizes mirror the
/// queue-level `churn` rows so the daemon's all-in overhead (wire
/// submission, journaled lifecycle, periodic checkpoints, per-boundary
/// sample streaming) reads directly against the same workload run
/// inline.
fn serve_cases(scale: RunScale) -> Vec<(usize, u64)> {
    match scale {
        RunScale::Full => vec![(100_000, 20)],
        RunScale::Quick => vec![(10_000, 50)],
    }
}

/// The `serve_stream` scenario at size `n`: the `churn` regime
/// expressed as a scenario file (the daemon takes scenarios, not raw
/// configs), with a 10s sampling grid so the stream carries a handful
/// of boundary samples.
fn serve_scenario(n: usize, horizon_secs: u64) -> crate::scenario::Scenario {
    let mut spec = scrip_core::spec::MarketSpec::new(n, 50);
    let lifespan = 500.0;
    spec.set("profile", "asymmetric").expect("valid profile");
    spec.set("churn", &format!("{}:{lifespan}:20", n as f64 / lifespan))
        .expect("valid churn");
    spec.set("sample", "10").expect("valid sample");
    let mut scenario = crate::scenario::Scenario::new("serve-stream", spec);
    scenario.run.horizon_secs = horizon_secs;
    scenario.run.seed = 42;
    scenario
}

/// Measures the job daemon end to end: start an in-process server on an
/// ephemeral port with a throwaway state dir, submit the churn-regime
/// scenario over the wire, subscribe, and time submit → final streamed
/// sample. The entry's `events` is the simulator events the job
/// processed (from its last sample), so events/sec reads against the
/// inline `churn` rows; the gap is the daemon's all-in overhead.
fn run_serve_case(n: usize, horizon_secs: u64, scale: &str) -> BenchEntry {
    use crate::serve::{Client, ServeOptions, Server};
    let state_dir = std::env::temp_dir().join(format!("scrip-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let server =
        Server::start(&ServeOptions::new("127.0.0.1:0", &state_dir)).expect("bench daemon starts");
    let addr = server.local_addr().to_string();
    let text = serve_scenario(n, horizon_secs).to_file_string();

    let mut client = Client::connect(&addr).expect("bench client connects");
    let start = Instant::now();
    let job = client
        .submit(&text, Some("serve-bench"), None, None)
        .expect("bench submit");
    let mut samples = 0u64;
    let mut events = 0u64;
    let watcher = Client::connect(&addr).expect("bench watcher connects");
    let state = watcher
        .subscribe(&job, |payload| {
            samples += 1;
            if let Some(v) = payload
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("events="))
            {
                events = v.parse().unwrap_or(events);
            }
        })
        .expect("bench stream");
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(state, "completed", "bench job must complete");
    assert!(samples > 0, "stream must carry boundary samples");
    client.drain().expect("bench drain");
    server.join();
    let _ = std::fs::remove_dir_all(&state_dir);
    BenchEntry {
        regime: "serve_stream".into(),
        n,
        scale: scale.into(),
        events,
        wall_secs: wall,
        events_per_sec: events as f64 / wall,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Measures the cost of a wealth-Gini sample at size `n`: run the
/// asymmetric market briefly to de-equalize wealth, then time repeated
/// [`CreditMarket::wealth_gini`] calls.
fn run_gini_case(n: usize, samples: u64, scale: &str) -> BenchEntry {
    let config = regime_config("asymmetric", n);
    let market =
        scrip_core::market::run_market(config, 42, SimTime::from_secs(20)).expect("market runs");
    let start = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..samples {
        acc += market.wealth_gini().expect("non-empty market");
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    // Keep the accumulator observable so the loop cannot be elided.
    assert!(acc.is_finite());
    BenchEntry {
        regime: "gini_sample".into(),
        n,
        scale: scale.into(),
        events: samples,
        wall_secs: wall,
        events_per_sec: samples as f64 / wall,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Runs the full bench suite at `scale`, printing one progress line per
/// case to stderr.
pub fn run_bench(scale: RunScale) -> BenchReport {
    let scale_name = match scale {
        RunScale::Full => "full",
        RunScale::Quick => "quick",
    };
    let mut report = BenchReport::default();
    for (regime, n, horizon) in cases(scale) {
        let entry = run_market_case(regime, n, horizon, scale_name);
        eprintln!(
            "bench {regime:<22} n={n:<7} {:>12.0} events/s ({} events in {:.2}s)",
            entry.events_per_sec, entry.events, entry.wall_secs
        );
        report.entries.push(entry);
    }
    for (n, horizon) in faulted_cases(scale) {
        let entry = run_faulted_case(n, horizon, scale_name);
        eprintln!(
            "bench {:<22} n={n:<7} {:>12.0} events/s ({} events in {:.2}s)",
            entry.regime, entry.events_per_sec, entry.events, entry.wall_secs
        );
        report.entries.push(entry);
    }
    for (n, horizon) in recorded_cases(scale) {
        let (anchor, recorded) = run_recorded_case(n, horizon, scale_name);
        for entry in [anchor, recorded] {
            eprintln!(
                "bench {:<22} n={n:<7} {:>12.0} events/s ({} events in {:.2}s)",
                entry.regime, entry.events_per_sec, entry.events, entry.wall_secs
            );
            report.entries.push(entry);
        }
    }
    for (shards, n, horizon) in sharded_cases(scale) {
        let entry = run_sharded_case(shards, n, horizon, scale_name);
        eprintln!(
            "bench {:<22} n={n:<7} {:>12.0} events/s ({} events in {:.2}s)",
            entry.regime, entry.events_per_sec, entry.events, entry.wall_secs
        );
        report.entries.push(entry);
    }
    for (label, speedup) in report.sharded_speedups() {
        eprintln!("bench {label:<22} speedup vs sharded_s1: {speedup:.3}x");
    }
    for (n, horizon) in streaming_cases(scale) {
        let entry = run_streaming_case(n, horizon, scale_name);
        eprintln!(
            "bench {:<22} n={n:<7} {:>12.0} events/s ({} events in {:.2}s)",
            entry.regime, entry.events_per_sec, entry.events, entry.wall_secs
        );
        report.entries.push(entry);
    }
    for (n, horizon) in serve_cases(scale) {
        let entry = run_serve_case(n, horizon, scale_name);
        eprintln!(
            "bench {:<22} n={n:<7} {:>12.0} events/s ({} events in {:.2}s)",
            entry.regime, entry.events_per_sec, entry.events, entry.wall_secs
        );
        // The inline churn row at the same (n, scale) is the anchor:
        // the ratio is the daemon's all-in submit-to-last-sample cost.
        if let Some(anchor) = report
            .entries
            .iter()
            .find(|a| a.regime == "churn" && a.n == n && a.events_per_sec > 0.0)
        {
            eprintln!(
                "bench {:<22} served/batch throughput: {:.3}x",
                "serve_stream",
                entry.events_per_sec / anchor.events_per_sec
            );
        }
        report.entries.push(entry);
    }
    for (attached, n, horizon) in probe_cases(scale) {
        let entry = run_probe_case(attached, n, horizon, scale_name);
        eprintln!(
            "bench {:<22} n={n:<7} {:>12.0} events/s ({} events in {:.2}s)",
            entry.regime, entry.events_per_sec, entry.events, entry.wall_secs
        );
        report.entries.push(entry);
    }
    // Sample counts are sized for the *post-refactor* O(1) sampler so
    // the timed window is milliseconds, not timer-resolution noise (the
    // pre-refactor sampler was ~10^5 times slower and was measured with
    // proportionally fewer samples; the per-sample rate is what's
    // compared).
    let gini_sizes: &[(usize, u64)] = match scale {
        RunScale::Full => &[(10_000, 2_000_000), (100_000, 2_000_000)],
        RunScale::Quick => &[(10_000, 1_000_000)],
    };
    for &(n, samples) in gini_sizes {
        let entry = run_gini_case(n, samples, scale_name);
        eprintln!(
            "bench {:<22} n={n:<7} {:>12.0} samples/s ({} samples in {:.4}s)",
            entry.regime, entry.events_per_sec, entry.events, entry.wall_secs
        );
        report.entries.push(entry);
    }
    report
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl BenchEntry {
    fn to_json(&self) -> String {
        let rss = match self.peak_rss_bytes {
            Some(b) => b.to_string(),
            None => "null".into(),
        };
        format!(
            "    {{\"regime\": \"{}\", \"n\": {}, \"scale\": \"{}\", \"events\": {}, \
             \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \"peak_rss_bytes\": {}}}",
            json_escape(&self.regime),
            self.n,
            json_escape(&self.scale),
            self.events,
            self.wall_secs,
            self.events_per_sec,
            rss
        )
    }
}

impl BenchReport {
    /// Speedup of every `sharded_sK` (K > 1) entry over the
    /// `sharded_s1` serial-parity anchor at the same `(n, scale)`, as
    /// `("s4_n100000", ratio)` pairs in entry order.
    pub fn sharded_speedups(&self) -> Vec<(String, f64)> {
        self.entries
            .iter()
            .filter(|e| e.regime.starts_with("sharded_s") && e.regime != "sharded_s1")
            .filter_map(|e| {
                let anchor = self
                    .entries
                    .iter()
                    .find(|a| a.regime == "sharded_s1" && a.n == e.n && a.scale == e.scale)?;
                (anchor.events_per_sec > 0.0).then(|| {
                    let kind = e.regime.trim_start_matches("sharded_");
                    (
                        format!("{kind}_n{}", e.n),
                        e.events_per_sec / anchor.events_per_sec,
                    )
                })
            })
            .collect()
    }

    /// Serializes the report as JSON (the `BENCH_market.json` schema:
    /// a `schema` tag plus an `entries` array of flat objects; when
    /// sharded cases are present, flat `"sharded_speedup_*"` keys
    /// record each shard count's throughput relative to the
    /// `sharded_s1` anchor).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"scrip-bench-market/1\",\n");
        for (label, speedup) in self.sharded_speedups() {
            out.push_str(&format!("  \"sharded_speedup_{label}\": {speedup:.3},\n"));
        }
        out.push_str("  \"entries\": [\n");
        let body: Vec<String> = self.entries.iter().map(BenchEntry::to_json).collect();
        out.push_str(&body.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a report back from [`BenchReport::to_json`] output (also
    /// tolerates the extra `before_events_per_sec` key of the committed
    /// baseline file). This is a schema-specific reader, not a general
    /// JSON parser: it scans the known keys per entry object.
    ///
    /// # Errors
    /// Returns a description of the first malformed entry.
    pub fn from_json(text: &str) -> Result<Self, String> {
        if !text.contains("\"schema\": \"scrip-bench-market/1\"") {
            return Err("missing schema tag \"scrip-bench-market/1\"".into());
        }
        let mut entries = Vec::new();
        for (i, obj) in text.split('{').skip(2).enumerate() {
            let obj = obj.split('}').next().unwrap_or("");
            let field = |key: &str| -> Result<String, String> {
                let pat = format!("\"{key}\":");
                let rest = obj
                    .split(&pat)
                    .nth(1)
                    .ok_or_else(|| format!("entry {i}: missing key {key:?}"))?;
                Ok(rest
                    .trim_start()
                    .trim_start_matches('"')
                    .chars()
                    .take_while(|&c| !matches!(c, '"' | ',' | '\n'))
                    .collect::<String>()
                    .trim()
                    .to_string())
            };
            let num = |key: &str| -> Result<f64, String> {
                let v = field(key)?;
                v.parse::<f64>()
                    .map_err(|e| format!("entry {i}: bad number for {key:?} ({v:?}): {e}"))
            };
            entries.push(BenchEntry {
                regime: field("regime")?,
                n: num("n")? as usize,
                scale: field("scale")?,
                events: num("events")? as u64,
                wall_secs: num("wall_secs")?,
                events_per_sec: num("events_per_sec")?,
                peak_rss_bytes: match field("peak_rss_bytes")?.as_str() {
                    "null" => None,
                    v => Some(
                        v.parse::<u64>()
                            .map_err(|e| format!("entry {i}: bad peak_rss_bytes {v:?}: {e}"))?,
                    ),
                },
            });
        }
        if entries.is_empty() {
            return Err("no bench entries found".into());
        }
        Ok(BenchReport { entries })
    }
}

/// Compares a fresh report against a committed baseline: every baseline
/// entry matching the fresh report's scale must be within
/// `max_regression` (e.g. 0.30 = allow up to 30% slower). Returns the
/// offending descriptions.
pub fn compare_against(
    fresh: &BenchReport,
    baseline: &BenchReport,
    max_regression: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for new in &fresh.entries {
        let Some(old) = baseline
            .entries
            .iter()
            .find(|b| b.regime == new.regime && b.n == new.n && b.scale == new.scale)
        else {
            continue; // new case without a baseline: informational only
        };
        let floor = old.events_per_sec * (1.0 - max_regression);
        if new.events_per_sec < floor {
            failures.push(format!(
                "{} n={} ({}): {:.0} events/s is below {:.0} ({}% regression floor of baseline {:.0})",
                new.regime,
                new.n,
                new.scale,
                new.events_per_sec,
                floor,
                (max_regression * 100.0) as u32,
                old.events_per_sec
            ));
        }
    }
    failures
}

/// The trace-recording overhead gate: every `churn_recorded` entry
/// must keep a floor fraction of its paired `churn_session` anchor's
/// throughput at the same `(n, scale)` (both sides of the pair are
/// best-of-N interleaved measurements of the identical `Session`
/// dispatch path — see `run_recorded_case`). At full scale the floor
/// is 95% — the headline "hot-path recording costs under 5%" claim.
/// The quick row runs the same n=10⁵ regime over a 4×-shorter
/// horizon, so its windows are noisier on a shared CI runner — its
/// floor is 90%, still tight enough to catch a real regression (an
/// accidental flush-per-frame costs far more). Returns the offending
/// descriptions.
pub fn record_overhead_failures(report: &BenchReport) -> Vec<String> {
    report
        .entries
        .iter()
        .filter(|e| e.regime == "churn_recorded")
        .filter_map(|e| {
            let anchor = report
                .entries
                .iter()
                .find(|a| a.regime == "churn_session" && a.n == e.n && a.scale == e.scale)?;
            if anchor.events_per_sec <= 0.0 {
                return None;
            }
            let floor = if e.scale == "quick" { 0.90 } else { 0.95 };
            let ratio = e.events_per_sec / anchor.events_per_sec;
            (ratio < floor).then(|| {
                format!(
                    "churn_recorded n={} ({}): {:.0} events/s is {:.1}% below its paired \
                     churn_session anchor's {:.0} (recording must cost <{:.0}% at this scale)",
                    e.n,
                    e.scale,
                    e.events_per_sec,
                    (1.0 - ratio) * 100.0,
                    anchor.events_per_sec,
                    (1.0 - floor) * 100.0
                )
            })
        })
        .collect()
}

/// The peak-RSS budget for a bench run at `scale`, in bytes.
///
/// `peak_rss_bytes` is the *process* high-water mark (`VmHWM`), so it
/// is monotone across cases within one run — the budget bounds the
/// whole suite, sized by its largest case. Full scale runs the four
/// market regimes at n=10⁶ (arena state ≈ 100 B/peer + scale-free
/// adjacency ≈ 8 B × ~20 neighbors + the timing wheel's pre-sized
/// buckets), which lands well under 4 GiB; quick tops out at the
/// n=10⁵ recording pair and must stay under 1 GiB. Blowing a budget
/// means a structure started
/// scaling superlinearly — the audit in
/// `scrip_core::market::CreditMarket::memory_audit` pinpoints which.
pub fn rss_budget_bytes(scale: RunScale) -> u64 {
    match scale {
        RunScale::Full => 4 << 30,
        RunScale::Quick => 1 << 30,
    }
}

/// Checks every entry's recorded peak RSS against `budget_bytes`.
/// Returns offending descriptions (empty when all entries fit or RSS
/// was unavailable on the platform).
pub fn check_rss_budget(report: &BenchReport, budget_bytes: u64) -> Vec<String> {
    report
        .entries
        .iter()
        .filter_map(|e| {
            let rss = e.peak_rss_bytes?;
            (rss > budget_bytes).then(|| {
                format!(
                    "{} n={} ({}): peak RSS {:.1} MiB exceeds the {:.0} MiB budget",
                    e.regime,
                    e.n,
                    e.scale,
                    rss as f64 / (1 << 20) as f64,
                    budget_bytes as f64 / (1 << 20) as f64,
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(regime: &str, eps: f64) -> BenchEntry {
        BenchEntry {
            regime: regime.into(),
            n: 1_000,
            scale: "quick".into(),
            events: 1_000,
            wall_secs: 1.0,
            events_per_sec: eps,
            peak_rss_bytes: Some(12_345_678),
        }
    }

    #[test]
    fn json_roundtrip() {
        let report = BenchReport {
            entries: vec![entry("asymmetric", 1234.5), {
                let mut e = entry("gini_sample", 99.0);
                e.peak_rss_bytes = None;
                e
            }],
        };
        let parsed = BenchReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.entries[0].regime, "asymmetric");
        assert_eq!(parsed.entries[0].n, 1_000);
        assert_eq!(parsed.entries[0].scale, "quick");
        assert!((parsed.entries[0].events_per_sec - 1234.5).abs() < 0.1);
        assert_eq!(parsed.entries[0].peak_rss_bytes, Some(12_345_678));
        assert_eq!(parsed.entries[1].peak_rss_bytes, None);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
        let no_entries = "{\"schema\": \"scrip-bench-market/1\", \"entries\": []}";
        assert!(BenchReport::from_json(no_entries).is_err());
    }

    #[test]
    fn regression_detection() {
        let baseline = BenchReport {
            entries: vec![entry("asymmetric", 1000.0)],
        };
        let ok = BenchReport {
            entries: vec![entry("asymmetric", 800.0)],
        };
        assert!(compare_against(&ok, &baseline, 0.30).is_empty());
        let slow = BenchReport {
            entries: vec![entry("asymmetric", 600.0)],
        };
        let failures = compare_against(&slow, &baseline, 0.30);
        assert_eq!(failures.len(), 1, "{failures:?}");
        // Unmatched entries are ignored.
        let other = BenchReport {
            entries: vec![entry("churn", 1.0)],
        };
        assert!(compare_against(&other, &baseline, 0.30).is_empty());
    }

    #[test]
    fn quick_cases_are_small() {
        for (regime, n, horizon) in cases(RunScale::Quick) {
            assert!(n <= 10_000, "{regime}: n {n}");
            assert!(horizon <= 500, "{regime}: horizon {horizon}");
        }
        // 4 regimes × sizes [1k, 10k, 100k, 1M].
        assert_eq!(cases(RunScale::Full).len(), 16);
        assert!(
            cases(RunScale::Full)
                .iter()
                .any(|&(_, n, _)| n == 1_000_000),
            "full scale must include the million-peer rows"
        );
    }

    #[test]
    fn rss_budget_flags_only_over_budget_entries() {
        let mut report = BenchReport {
            entries: vec![entry("asymmetric", 1000.0), entry("churn", 1000.0)],
        };
        report.entries[0].peak_rss_bytes = Some(2 << 30);
        report.entries[1].peak_rss_bytes = None; // platform without VmHWM
        let failures = check_rss_budget(&report, rss_budget_bytes(RunScale::Quick));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("asymmetric"), "{failures:?}");
        assert!(check_rss_budget(&report, rss_budget_bytes(RunScale::Full)).is_empty());
    }

    #[test]
    fn probe_cases_cover_both_recorder_states() {
        for scale in [RunScale::Quick, RunScale::Full] {
            let cases = probe_cases(scale);
            assert_eq!(cases.len(), 2);
            assert!(!cases[0].0, "detached first");
            assert!(cases[1].0);
            assert!(cases.iter().all(|&(_, n, _)| n == 10_000));
        }
    }

    #[test]
    fn probe_bench_entries_measure_events() {
        // A miniature run of both recorder states (tiny n + horizon so
        // the unit test stays fast); the real sizes run under
        // `scrip-sim bench`.
        let detached = run_probe_case(false, 100, 20, "test");
        let attached = run_probe_case(true, 100, 20, "test");
        assert_eq!(detached.regime, "probe_detached");
        assert_eq!(attached.regime, "probe_attached");
        assert_eq!(
            detached.events, attached.events,
            "probes must not change the event stream"
        );
        assert!(detached.events_per_sec > 0.0 && attached.events_per_sec > 0.0);
    }

    #[test]
    fn sharded_speedups_anchor_on_s1() {
        let report = BenchReport {
            entries: vec![
                entry("sharded_s1", 1000.0),
                entry("sharded_s4", 1100.0),
                entry("churn", 5.0),
            ],
        };
        let speedups = report.sharded_speedups();
        assert_eq!(speedups.len(), 1);
        assert_eq!(speedups[0].0, "s4_n1000");
        assert!((speedups[0].1 - 1.1).abs() < 1e-9);
        // The flat speedup keys sit before "entries" so the
        // schema-specific reader still round-trips the entry list.
        let json = report.to_json();
        assert!(
            json.contains("\"sharded_speedup_s4_n1000\": 1.100"),
            "{json}"
        );
        let parsed = BenchReport::from_json(&json).expect("parses");
        assert_eq!(parsed.entries.len(), 3);
    }

    #[test]
    fn sharded_case_replays_the_serial_event_stream() {
        // Miniature sizes; the real n=10^5 cases run under
        // `scrip-sim bench`. Byte-identity means the sharded runner
        // must dispatch exactly the serial churn event stream.
        let serial = run_market_case("churn", 100, 20, "test");
        let sharded = run_sharded_case(4, 100, 20, "test");
        assert_eq!(
            serial.events, sharded.events,
            "sharding must not change the event stream"
        );
        assert!(sharded.events_per_sec > 0.0);
    }

    #[test]
    fn recorded_case_replays_the_plain_churn_event_stream() {
        // Miniature size; the real rows run under `scrip-sim bench`.
        let plain = run_market_case("churn", 100, 20, "test");
        let (anchor, recorded) = run_recorded_case(100, 20, "test");
        assert_eq!(
            plain.events, recorded.events,
            "recording must not change the event stream"
        );
        assert_eq!(
            anchor.events, recorded.events,
            "both sides of the pair dispatch the identical run"
        );
        assert_eq!(anchor.regime, "churn_session");
        assert_eq!(recorded.regime, "churn_recorded");
        assert!(recorded.events_per_sec > 0.0);
    }

    #[test]
    fn record_overhead_gate_triggers_below_the_scale_floor() {
        let full = |regime: &str, eps: f64| {
            let mut e = entry(regime, eps);
            e.scale = "full".into();
            e
        };
        // Full scale: 95% floor — 96% passes, 94% fails.
        let report = BenchReport {
            entries: vec![full("churn_session", 1000.0), full("churn_recorded", 960.0)],
        };
        assert!(record_overhead_failures(&report).is_empty());
        let report = BenchReport {
            entries: vec![full("churn_session", 1000.0), full("churn_recorded", 940.0)],
        };
        let failures = record_overhead_failures(&report);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("churn_recorded"), "{failures:?}");
        // Quick scale: the cheaper-per-event CI proxy gets a 90% floor
        // — 94% passes there, 89% fails.
        let report = BenchReport {
            entries: vec![
                entry("churn_session", 1000.0),
                entry("churn_recorded", 940.0),
            ],
        };
        assert!(record_overhead_failures(&report).is_empty());
        let report = BenchReport {
            entries: vec![
                entry("churn_session", 1000.0),
                entry("churn_recorded", 890.0),
            ],
        };
        assert_eq!(record_overhead_failures(&report).len(), 1);
        // No anchor row → informational only, never a failure.
        let orphan = BenchReport {
            entries: vec![entry("churn_recorded", 1.0)],
        };
        assert!(record_overhead_failures(&orphan).is_empty());
    }

    #[test]
    fn serve_case_measures_a_completed_streamed_job() {
        // Miniature size; the real rows run under `scrip-sim bench`.
        // The runner itself asserts completion and a non-empty stream.
        let entry = run_serve_case(100, 50, "test");
        assert_eq!(entry.regime, "serve_stream");
        assert!(entry.events > 0 && entry.events_per_sec > 0.0);
        let scenario = serve_scenario(100, 50);
        scenario.validate().expect("serve scenario is valid");
    }

    #[test]
    fn regime_configs_validate() {
        for regime in REGIMES {
            regime_config(regime, 100).validate().expect("valid");
        }
        faulted_config(100).validate().expect("valid");
    }

    #[test]
    fn faulted_case_runs_the_recovery_path() {
        // Miniature size; the real n=10^5 case runs under
        // `scrip-sim bench`. The runner itself asserts the plan is
        // active and the books balance.
        let entry = run_faulted_case(100, 20, "test");
        assert_eq!(entry.regime, "faulted");
        assert!(entry.events > 0 && entry.events_per_sec > 0.0);
    }
}

//! The scenario engine: declarative experiment descriptions and a
//! multi-threaded batch runner.
//!
//! A [`Scenario`] is everything needed to reproduce one experiment of the
//! paper's evaluation — or to define a brand-new workload — without
//! writing Rust:
//!
//! * a **base market** ([`scrip_core::spec::MarketSpec`]): peers,
//!   topology, pricing, spending policy, taxation, churn;
//! * **execution parameters** ([`RunSpec`]): horizon, RNG seed, number of
//!   replications, wealth-snapshot times, recorded metrics;
//! * **explicit cases** ([`CaseSpec`]): named variants that override base
//!   keys (e.g. `taxed` vs `untaxed`);
//! * **sweep axes** ([`SweepAxis`]): per-key value grids expanded as a
//!   cross product over the cases.
//!
//! Scenarios come from three places: the figure modules in
//! [`crate::figures`] emit one per market-driven figure, scenario *files*
//! (a small TOML subset, grammar in `docs/SCENARIOS.md`) are parsed with
//! [`Scenario::parse_str`], and ad-hoc scenarios can be built in code.
//! [`Scenario::to_file_string`] serializes any scenario back to the file
//! format, so every built-in experiment doubles as an example file.
//!
//! Execution is handled by [`runner::run_scenario`], which shards the
//! `cases × replications` grid over worker threads with deterministic
//! per-job seeds ([`scrip_des::SeedSequence`]) and merges results in job
//! order — output is byte-identical for any thread count.

mod parse;
pub mod runner;

use std::fmt;

use scrip_core::obs::{probes as obs_probes, Probe};
use scrip_core::spec::MarketSpec;
use scrip_core::CoreError;

pub use parse::ParseError;
pub use runner::{
    parallel_map, run_scenario, session_probes, set_shard_override, set_thread_override,
    CaseResult, ReplicationRun, RunnerOptions, ScenarioResult,
};

/// Default RNG seed of a scenario that does not specify one.
pub const DEFAULT_SEED: u64 = 42;

/// Errors from scenario handling: file syntax, configuration, or
/// execution.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The scenario file failed to parse.
    Parse(ParseError),
    /// The scenario describes an invalid configuration.
    Config(String),
    /// A simulation run failed.
    Run(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "{e}"),
            ScenarioError::Config(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::Run(msg) => write!(f, "scenario run failed: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ParseError> for ScenarioError {
    fn from(e: ParseError) -> Self {
        ScenarioError::Parse(e)
    }
}

impl From<CoreError> for ScenarioError {
    fn from(e: CoreError) -> Self {
        ScenarioError::Config(e.to_string())
    }
}

/// One row of the metric registry: everything the scenario engine needs
/// to know about a recordable metric — its scenario-file name, the
/// [`Probe`] that measures it, and the CSV emitter that renders its
/// aggregate. New observables are added by appending a row here (and a
/// probe in [`scrip_core::obs::probes`]); the parser, the CSV pipeline,
/// and `scrip-sim metrics` all read this table.
pub struct MetricDef {
    /// The metric's name in scenario files.
    name: &'static str,
    /// One-line description (shown by `scrip-sim metrics` and the
    /// SCENARIOS.md table).
    doc: &'static str,
    /// Whether the probe is attached to every run regardless of the
    /// scenario's `metrics` selection. The five legacy metrics are
    /// always-on: they back [`ReplicationRun`]'s typed accessors and
    /// the per-case summary lines.
    always_on: bool,
    /// Builds the probe recording this metric.
    make_probe: fn(&RunSpec) -> Box<dyn Probe>,
    /// Appends the aggregated CSV rows for one case.
    emit: fn(&Scenario, &runner::CaseResult, &mut String),
}

fn gini_probe(_run: &RunSpec) -> Box<dyn Probe> {
    Box::new(obs_probes::GiniSeriesProbe)
}
fn balances_probe(_run: &RunSpec) -> Box<dyn Probe> {
    Box::new(obs_probes::FinalBalancesProbe)
}
fn rates_probe(_run: &RunSpec) -> Box<dyn Probe> {
    Box::new(obs_probes::SpendingRatesProbe)
}
fn snapshots_probe(run: &RunSpec) -> Box<dyn Probe> {
    Box::new(obs_probes::SnapshotsProbe::new(run.snapshots.clone()))
}
fn stall_probe(_run: &RunSpec) -> Box<dyn Probe> {
    Box::new(obs_probes::StallSeriesProbe)
}
fn throughput_probe(_run: &RunSpec) -> Box<dyn Probe> {
    Box::new(obs_probes::ThroughputSeriesProbe::new())
}
fn population_probe(_run: &RunSpec) -> Box<dyn Probe> {
    Box::new(obs_probes::PopulationSeriesProbe::new())
}
fn lorenz_probe(_run: &RunSpec) -> Box<dyn Probe> {
    Box::new(obs_probes::LorenzProbe::default())
}
fn fault_probe(_run: &RunSpec) -> Box<dyn Probe> {
    Box::new(obs_probes::FaultSeriesProbe::new())
}

/// The probe registry, in canonical output order. The first five rows
/// are the original `Metric` enum re-registered (names and CSV output
/// byte-identical — pinned by `tests/scenario_golden.rs`); the rest are
/// registry-only additions.
static REGISTRY: [MetricDef; 9] = [
    MetricDef {
        name: "gini-series",
        doc: "Gini-over-time trajectory (the paper's Figs. 7-11)",
        always_on: true,
        make_probe: gini_probe,
        emit: runner::emit_gini,
    },
    MetricDef {
        name: "final-balances",
        doc: "final wealth distribution, sorted ascending (Figs. 5-6)",
        always_on: true,
        make_probe: balances_probe,
        emit: runner::emit_final_balances,
    },
    MetricDef {
        name: "spending-rates",
        doc: "sorted per-peer credit spending rates (Fig. 1)",
        always_on: true,
        make_probe: rates_probe,
        emit: runner::emit_spending_rates,
    },
    MetricDef {
        name: "snapshots",
        doc: "sorted wealth snapshots at the configured times (Figs. 5-6)",
        always_on: true,
        make_probe: snapshots_probe,
        emit: runner::emit_snapshots,
    },
    MetricDef {
        name: "stall-series",
        doc: "stall-rate trajectory of a chunk-level market (empty at queue level)",
        always_on: true,
        make_probe: stall_probe,
        emit: runner::emit_stalls,
    },
    MetricDef {
        name: "throughput-series",
        doc: "system throughput over time (purchases/sec per sampling interval)",
        always_on: false,
        make_probe: throughput_probe,
        emit: runner::emit_throughput,
    },
    MetricDef {
        name: "population-series",
        doc: "live peers over time (the arrival/departure balance under churn)",
        always_on: false,
        make_probe: population_probe,
        emit: runner::emit_population,
    },
    MetricDef {
        name: "lorenz",
        doc: "final wealth Lorenz curve sampled at 100 population shares (Fig. 2)",
        always_on: false,
        make_probe: lorenz_probe,
        emit: runner::emit_lorenz,
    },
    MetricDef {
        name: "fault-series",
        doc: "fault-injection recovery: failed trades, escrow over time, retry depths",
        always_on: false,
        make_probe: fault_probe,
        emit: runner::emit_faults,
    },
];

/// A metric recorded into the aggregated scenario output: a copyable
/// handle into the probe registry (see [`MetricDef`]).
#[derive(Clone, Copy)]
pub struct Metric(&'static MetricDef);

impl Metric {
    /// The Gini-over-time trajectory (the paper's Figs. 7–11).
    pub const GINI_SERIES: Metric = Metric(&REGISTRY[0]);
    /// The final sorted wealth distribution.
    pub const FINAL_BALANCES: Metric = Metric(&REGISTRY[1]);
    /// The sorted per-peer credit spending rates (Fig. 1).
    pub const SPENDING_RATES: Metric = Metric(&REGISTRY[2]);
    /// Sorted wealth snapshots at the configured times (Figs. 5–6).
    pub const SNAPSHOTS: Metric = Metric(&REGISTRY[3]);
    /// The stall-rate-over-time trajectory of a chunk-level streaming
    /// market (not-yet-started peers count as fully stalled). Empty for
    /// queue-level markets.
    pub const STALL_SERIES: Metric = Metric(&REGISTRY[4]);
    /// System throughput over time: purchases/sec between sampling
    /// boundaries.
    pub const THROUGHPUT_SERIES: Metric = Metric(&REGISTRY[5]);
    /// Live peers over time (flat without churn).
    pub const POPULATION_SERIES: Metric = Metric(&REGISTRY[6]);
    /// The final wealth Lorenz curve.
    pub const LORENZ: Metric = Metric(&REGISTRY[7]);
    /// Fault-injection recovery series: cumulative failed trade
    /// attempts and in-flight escrow over time plus the retry-depth
    /// histogram. Empty when the market has no fault plan.
    pub const FAULT_SERIES: Metric = Metric(&REGISTRY[8]);

    /// Every registered metric, in canonical output order. Derived
    /// from the private `REGISTRY` rows themselves, so appending a row is
    /// all it takes for a new metric to reach the parser, the
    /// unknown-metric error list, and `scrip-sim metrics`.
    pub fn registry() -> Vec<Metric> {
        REGISTRY.iter().map(Metric).collect()
    }

    /// The metric's name in scenario files.
    pub fn name(&self) -> &'static str {
        self.0.name
    }

    /// One-line description of what the metric records.
    pub fn doc(&self) -> &'static str {
        self.0.doc
    }

    /// Whether the metric is measured on every run regardless of the
    /// scenario's `metrics` selection (see [`MetricDef`]).
    pub fn always_on(&self) -> bool {
        self.0.always_on
    }

    /// Parses a scenario-file metric name against the registry.
    pub fn from_name(name: &str) -> Option<Metric> {
        Metric::registry().into_iter().find(|m| m.name() == name)
    }

    /// Builds the probe that records this metric for one run.
    pub fn make_probe(&self, run: &RunSpec) -> Box<dyn Probe> {
        (self.0.make_probe)(run)
    }

    /// Appends this metric's aggregated CSV rows for one case.
    pub(crate) fn emit_csv(&self, sc: &Scenario, case: &runner::CaseResult, out: &mut String) {
        (self.0.emit)(sc, case, out)
    }
}

impl fmt::Debug for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Metric({})", self.0.name)
    }
}

impl PartialEq for Metric {
    fn eq(&self, other: &Metric) -> bool {
        // Registry rows are singletons, so name equality is identity.
        self.0.name == other.0.name
    }
}

impl Eq for Metric {}

/// Execution parameters of a scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// Simulated horizon in seconds.
    pub horizon_secs: u64,
    /// Root RNG seed. Replication 0 of every case runs with this exact
    /// seed; further replications use independent derived streams (see
    /// [`scrip_des::SeedSequence::replication_seed`]).
    pub seed: u64,
    /// Number of replications per case (≥ 1).
    pub replications: usize,
    /// Times (seconds, ascending, ≤ horizon) at which sorted wealth
    /// snapshots are recorded.
    pub snapshots: Vec<u64>,
    /// Metrics included in the aggregated CSV output.
    pub metrics: Vec<Metric>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            horizon_secs: 1_000,
            seed: DEFAULT_SEED,
            replications: 1,
            snapshots: Vec::new(),
            metrics: vec![Metric::GINI_SERIES],
        }
    }
}

/// A named variant of the base market: overrides applied on top of it.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseSpec {
    /// Case label (used in output series and CSV rows).
    pub label: String,
    /// `(key, value)` overrides in [`MarketSpec::set`] syntax.
    pub overrides: Vec<(String, String)>,
}

impl CaseSpec {
    /// A case with no overrides.
    pub fn new(label: impl Into<String>) -> Self {
        CaseSpec {
            label: label.into(),
            overrides: Vec::new(),
        }
    }

    /// Adds an override (builder style).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.overrides.push((key.into(), value.into()));
        self
    }
}

/// One sweep axis: a market key and the grid of values it takes.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepAxis {
    /// The [`MarketSpec`] key being swept.
    pub key: String,
    /// The values, in [`MarketSpec::set`] syntax.
    pub values: Vec<String>,
}

impl SweepAxis {
    /// Creates an axis from anything stringifiable.
    pub fn new<V: ToString>(key: impl Into<String>, values: impl IntoIterator<Item = V>) -> Self {
        SweepAxis {
            key: key.into(),
            values: values.into_iter().map(|v| v.to_string()).collect(),
        }
    }
}

/// A fully expanded case: label plus the resolved market description.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedCase {
    /// Unique label of the case.
    pub label: String,
    /// The market this case simulates.
    pub spec: MarketSpec,
}

/// A declarative experiment: base market + execution parameters + cases
/// + sweeps. See the [module docs](self) for the full picture.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario identifier (used in output headers and file names).
    pub name: String,
    /// Human-readable description.
    pub title: String,
    /// The base market description every case starts from.
    pub base: MarketSpec,
    /// Execution parameters.
    pub run: RunSpec,
    /// Explicit named variants (empty means one implicit `base` case).
    pub cases: Vec<CaseSpec>,
    /// Sweep axes expanded as a cross product over the cases.
    pub sweep: Vec<SweepAxis>,
}

impl Scenario {
    /// A single-case scenario over `base` with default run parameters.
    pub fn new(name: impl Into<String>, base: MarketSpec) -> Self {
        Scenario {
            name: name.into(),
            title: String::new(),
            base,
            run: RunSpec::default(),
            cases: Vec::new(),
            sweep: Vec::new(),
        }
    }

    /// Parses the scenario file format (grammar in `docs/SCENARIOS.md`).
    ///
    /// # Errors
    /// Returns [`ParseError`] with a 1-based line number for syntax and
    /// value errors.
    pub fn parse_str(text: &str) -> Result<Scenario, ParseError> {
        parse::parse_scenario(text)
    }

    /// Serializes the scenario to the canonical file format. For any
    /// scenario that passes [`Scenario::validate`] (which includes
    /// everything [`Scenario::parse_str`] accepts),
    /// `Scenario::parse_str(&s.to_file_string())` reproduces `s`
    /// exactly — the file grammar has no escape sequences, so
    /// `validate` rejects names/titles/labels the grammar cannot
    /// represent.
    pub fn to_file_string(&self) -> String {
        parse::serialize_scenario(self)
    }

    /// Expands cases × sweep axes into the flat list of markets to run,
    /// in deterministic order (explicit-case order, then sweep values in
    /// axis order).
    ///
    /// # Errors
    /// Returns [`ScenarioError::Config`] for invalid overrides or
    /// duplicate labels.
    pub fn expand(&self) -> Result<Vec<ResolvedCase>, ScenarioError> {
        let mut resolved: Vec<ResolvedCase> = Vec::new();
        let explicit: Vec<CaseSpec> = if self.cases.is_empty() {
            vec![CaseSpec::new("base")]
        } else {
            self.cases.clone()
        };
        for case in &explicit {
            let mut spec = self.base.clone();
            for (key, value) in &case.overrides {
                spec.set(key, value)
                    .map_err(|e| ScenarioError::Config(format!("case {:?}: {e}", case.label)))?;
            }
            resolved.push(ResolvedCase {
                label: case.label.clone(),
                spec,
            });
        }
        for axis in &self.sweep {
            let mut next = Vec::with_capacity(resolved.len() * axis.values.len());
            for rc in &resolved {
                for value in &axis.values {
                    let mut spec = rc.spec.clone();
                    spec.set(&axis.key, value).map_err(|e| {
                        ScenarioError::Config(format!("sweep {}={value}: {e}", axis.key))
                    })?;
                    let fragment = format!("{}{}", axis.key, value.replace(':', "-"));
                    let label = if rc.label == "base" && self.cases.is_empty() {
                        fragment
                    } else {
                        format!("{}_{fragment}", rc.label)
                    };
                    next.push(ResolvedCase { label, spec });
                }
            }
            resolved = next;
        }
        for (i, a) in resolved.iter().enumerate() {
            for b in &resolved[i + 1..] {
                if a.label == b.label {
                    return Err(ScenarioError::Config(format!(
                        "duplicate case label {:?}",
                        a.label
                    )));
                }
            }
        }
        Ok(resolved)
    }

    /// Checks everything except case expansion: run parameters,
    /// snapshot times, and that names/titles/labels are representable
    /// in the escape-free file grammar. The runner calls this and then
    /// expands/builds the cases itself, so the expensive expansion
    /// happens exactly once.
    pub(crate) fn validate_params(&self) -> Result<(), ScenarioError> {
        if self.run.horizon_secs == 0 {
            return Err(ScenarioError::Config("horizon must be positive".into()));
        }
        if self.run.replications == 0 {
            return Err(ScenarioError::Config(
                "replications must be at least 1".into(),
            ));
        }
        if self.run.metrics.is_empty() {
            return Err(ScenarioError::Config("metrics must not be empty".into()));
        }
        for w in self.run.snapshots.windows(2) {
            if w[1] <= w[0] {
                return Err(ScenarioError::Config(format!(
                    "snapshot times must be strictly ascending, got {} after {}",
                    w[1], w[0]
                )));
            }
        }
        if let Some(&last) = self.run.snapshots.last() {
            if last > self.run.horizon_secs {
                return Err(ScenarioError::Config(format!(
                    "snapshot time {last} exceeds horizon {}",
                    self.run.horizon_secs
                )));
            }
        }
        if self.run.metrics.contains(&Metric::SNAPSHOTS) && self.run.snapshots.is_empty() {
            return Err(ScenarioError::Config(
                "the snapshots metric requires snapshot times".into(),
            ));
        }
        // The file grammar has no escape sequences, so strings with
        // quotes or newlines (and non-identifier labels) would not
        // survive to_file_string → parse_str.
        for (field, text) in [("name", &self.name), ("title", &self.title)] {
            if text.contains('"') || text.contains('\n') {
                return Err(ScenarioError::Config(format!(
                    "{field} {text:?} contains a quote or newline, which the scenario file \
                     format cannot represent"
                )));
            }
        }
        for case in &self.cases {
            if !parse::is_ident(&case.label) {
                return Err(ScenarioError::Config(format!(
                    "case label {:?} is not a valid identifier ([A-Za-z0-9._-]+)",
                    case.label
                )));
            }
        }
        Ok(())
    }

    /// Checks the scenario end to end: run parameters, snapshot times,
    /// grammar-representable names/labels, and that every expanded case
    /// builds a valid market.
    ///
    /// # Errors
    /// Returns [`ScenarioError::Config`] describing the first problem.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.validate_params()?;
        for case in self.expand()? {
            case.spec
                .build()
                .map_err(|e| ScenarioError::Config(format!("case {:?}: {e}", case.label)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Scenario {
        let mut sc = Scenario::new("demo", MarketSpec::new(40, 20));
        sc.run.horizon_secs = 500;
        sc.cases = vec![
            CaseSpec::new("plain"),
            CaseSpec::new("taxed").with("tax", "0.2:10"),
        ];
        sc.sweep = vec![SweepAxis::new("credits", [10u64, 20])];
        sc
    }

    #[test]
    fn expand_crosses_cases_with_sweeps() {
        let cases = demo().expand().expect("valid");
        let labels: Vec<&str> = cases.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "plain_credits10",
                "plain_credits20",
                "taxed_credits10",
                "taxed_credits20"
            ]
        );
        assert_eq!(cases[0].spec.config().initial_credits, 10);
        assert!(cases[2].spec.config().tax.is_some());
        assert!(cases[0].spec.config().tax.is_none());
    }

    #[test]
    fn expand_without_cases_uses_sweep_labels_directly() {
        let mut sc = Scenario::new("sweep-only", MarketSpec::new(40, 20));
        sc.sweep = vec![SweepAxis::new("credits", [50u64, 100, 200])];
        let labels: Vec<String> = sc
            .expand()
            .expect("valid")
            .into_iter()
            .map(|c| c.label)
            .collect();
        assert_eq!(labels, ["credits50", "credits100", "credits200"]);
    }

    #[test]
    fn expand_sanitizes_colon_values_in_labels() {
        let mut sc = Scenario::new("s", MarketSpec::new(40, 20));
        sc.sweep = vec![SweepAxis::new(
            "profile",
            ["symmetric", "near-symmetric:0.1"],
        )];
        let labels: Vec<String> = sc
            .expand()
            .expect("valid")
            .into_iter()
            .map(|c| c.label)
            .collect();
        assert_eq!(labels, ["profilesymmetric", "profilenear-symmetric-0.1"]);
    }

    #[test]
    fn validate_rejects_bad_run_parameters() {
        let mut sc = demo();
        sc.run.replications = 0;
        assert!(matches!(sc.validate(), Err(ScenarioError::Config(_))));

        let mut sc = demo();
        sc.run.snapshots = vec![100, 100];
        assert!(sc.validate().is_err(), "non-ascending snapshots");

        let mut sc = demo();
        sc.run.snapshots = vec![600];
        assert!(sc.validate().is_err(), "snapshot beyond horizon");

        let mut sc = demo();
        sc.run.metrics = vec![Metric::SNAPSHOTS];
        assert!(sc.validate().is_err(), "snapshots metric without times");

        let mut sc = demo();
        sc.cases[1].overrides[0].1 = "5.0:10".into();
        assert!(sc.validate().is_err(), "tax rate > 1");

        assert!(demo().validate().is_ok());
    }

    #[test]
    fn unrepresentable_strings_are_rejected() {
        // The file grammar has no escapes, so validate() refuses what
        // to_file_string() could not round-trip.
        let mut sc = demo();
        sc.title = "a \"quoted\" title".into();
        assert!(sc.validate().is_err(), "embedded quote");

        let mut sc = demo();
        sc.name = "two\nlines".into();
        assert!(sc.validate().is_err(), "embedded newline");

        let mut sc = demo();
        sc.cases[0].label = "my case".into();
        assert!(sc.validate().is_err(), "non-identifier label");
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let mut sc = Scenario::new("dup", MarketSpec::new(40, 20));
        sc.cases = vec![CaseSpec::new("a"), CaseSpec::new("a")];
        assert!(matches!(sc.expand(), Err(ScenarioError::Config(_))));
    }

    #[test]
    fn metric_names_round_trip() {
        for m in Metric::registry() {
            assert_eq!(Metric::from_name(m.name()), Some(m));
            assert!(!m.doc().is_empty());
        }
        assert_eq!(Metric::from_name("entropy"), None);
    }

    #[test]
    fn registry_keeps_legacy_metrics_always_on() {
        let always_on: Vec<&str> = Metric::registry()
            .into_iter()
            .filter(Metric::always_on)
            .map(|m| m.name())
            .collect();
        assert_eq!(
            always_on,
            [
                "gini-series",
                "final-balances",
                "spending-rates",
                "snapshots",
                "stall-series"
            ],
            "the original five metrics back ReplicationRun's accessors"
        );
        let extras: Vec<&str> = Metric::registry()
            .into_iter()
            .filter(|m| !m.always_on())
            .map(|m| m.name())
            .collect();
        assert_eq!(
            extras,
            [
                "throughput-series",
                "population-series",
                "lorenz",
                "fault-series"
            ]
        );
    }
}

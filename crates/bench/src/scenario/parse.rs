//! Hand-rolled parser and serializer for the scenario file format.
//!
//! The format is a strict subset of TOML (every scenario file is valid
//! TOML, not every TOML file is a valid scenario), chosen so the parser
//! stays small and auditable with no external dependency:
//!
//! ```toml
//! name = "fig07"
//! title = "Gini evolution under near-symmetric utilization"
//!
//! [market]                     # base MarketSpec keys
//! peers = 500
//! profile = "near-symmetric:0.03"
//!
//! [run]
//! horizon = 40000              # seconds
//! seed = 4242
//! replications = 1
//!
//! [case.taxed]                 # optional explicit variants
//! tax = "0.2:50"
//!
//! [sweep]                      # optional value grids (cross product)
//! credits = [50, 100, 200]
//! ```
//!
//! Grammar rules (documented for users in `docs/SCENARIOS.md`):
//! `#` starts a comment (outside strings); values are integers, floats,
//! booleans, `"quoted strings"` (no escapes), or flat `[lists]` of those;
//! bare values must be numbers or booleans; keys and case names are
//! `[A-Za-z0-9._-]+`; duplicate keys and unknown keys/sections are
//! errors, each reported with its 1-based line number.

use std::collections::BTreeSet;
use std::fmt;

use scrip_core::spec::MarketSpec;

use super::{CaseSpec, Metric, RunSpec, Scenario, SweepAxis};

/// A scenario-file syntax or value error, with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was detected on (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A parsed right-hand side: a single scalar or a flat list of scalars.
/// Scalars are kept as their literal text (quotes stripped); typed
/// interpretation happens at the consumer ([`MarketSpec::set`], run-key
/// parsing).
enum RawValue {
    Scalar(String),
    List(Vec<String>),
}

impl RawValue {
    fn scalar(self, line: usize, key: &str) -> Result<String, ParseError> {
        match self {
            RawValue::Scalar(s) => Ok(s),
            RawValue::List(_) => Err(ParseError::new(
                line,
                format!("key {key:?} takes a single value, not a list"),
            )),
        }
    }

    fn list(self, line: usize, key: &str) -> Result<Vec<String>, ParseError> {
        match self {
            RawValue::List(v) => Ok(v),
            RawValue::Scalar(_) => Err(ParseError::new(
                line,
                format!("key {key:?} takes a list, e.g. {key} = [1, 2]"),
            )),
        }
    }
}

/// Truncates `line` at the first `#` that is outside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

pub(crate) fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// Parses one scalar token: a quoted string (no escapes), a number, or a
/// boolean.
fn parse_scalar(raw: &str, line: usize) -> Result<String, ParseError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(ParseError::new(line, "empty value"));
    }
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(ParseError::new(line, format!("unterminated string {raw}")));
        };
        if inner.contains('"') {
            return Err(ParseError::new(
                line,
                format!("string {raw} contains an embedded quote (escapes are not supported)"),
            ));
        }
        return Ok(inner.to_string());
    }
    if raw == "true" || raw == "false" || raw.parse::<f64>().is_ok() {
        return Ok(raw.to_string());
    }
    Err(ParseError::new(
        line,
        format!("bare value {raw} is neither a number nor a boolean; quote strings as \"{raw}\""),
    ))
}

/// Splits list items on commas that are outside quoted strings.
fn split_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, ch) in inner.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&inner[start..]);
    items
}

fn parse_value(raw: &str, line: usize) -> Result<RawValue, ParseError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(ParseError::new(line, format!("unterminated list {raw}")));
        };
        if inner.trim().is_empty() {
            return Ok(RawValue::List(Vec::new()));
        }
        let items = split_items(inner)
            .into_iter()
            .map(|item| parse_scalar(item, line))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(RawValue::List(items));
    }
    Ok(RawValue::Scalar(parse_scalar(raw, line)?))
}

fn parse_u64(value: &str, line: usize, key: &str) -> Result<u64, ParseError> {
    value.parse::<u64>().map_err(|_| {
        ParseError::new(
            line,
            format!("key {key:?} expects a non-negative integer, got {value:?}"),
        )
    })
}

#[derive(Clone, Copy, PartialEq)]
enum Section {
    Top,
    Market,
    Run,
    Case(usize),
    Sweep,
}

/// Parses the scenario file format. See the [module docs](self) for the
/// grammar.
pub fn parse_scenario(text: &str) -> Result<Scenario, ParseError> {
    let mut sc = Scenario::new("unnamed", MarketSpec::default());
    let mut section = Section::Top;
    // Namespaced duplicate-key tracking: "top/name", "market/peers",
    // "case.3/tax", ...
    let mut seen: BTreeSet<String> = BTreeSet::new();
    // Per-case probe specs: each starts from the base as of the case
    // header and accumulates that case's overrides in order, mirroring
    // what `Scenario::expand` will do — so context-dependent values
    // (e.g. `streaming.*` after the case enables `streaming`) validate
    // exactly as they will run, with the failing line number. This is
    // best-effort (a `[market]` section *after* a case header changes
    // the real base); `Scenario::validate`/`expand` remain the
    // authority and re-check everything.
    let mut case_probes: Vec<MarketSpec> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let line = idx + 1;
        let content = strip_comment(raw_line).trim();
        if content.is_empty() {
            continue;
        }

        if let Some(rest) = content.strip_prefix('[') {
            let Some(header) = rest.strip_suffix(']') else {
                return Err(ParseError::new(
                    line,
                    format!("malformed section {content}"),
                ));
            };
            let header = header.trim();
            section = match header {
                "market" | "run" | "sweep" => {
                    if !seen.insert(format!("section/{header}")) {
                        return Err(ParseError::new(
                            line,
                            format!("duplicate section [{header}]"),
                        ));
                    }
                    match header {
                        "market" => Section::Market,
                        "run" => Section::Run,
                        _ => Section::Sweep,
                    }
                }
                _ => {
                    let Some(label) = header.strip_prefix("case.") else {
                        return Err(ParseError::new(
                            line,
                            format!(
                                "unknown section [{header}] (expected [market], [run], \
                                 [case.NAME], or [sweep])"
                            ),
                        ));
                    };
                    if !is_ident(label) {
                        return Err(ParseError::new(
                            line,
                            format!("invalid case name {label:?}"),
                        ));
                    }
                    if sc.cases.iter().any(|c| c.label == label) {
                        return Err(ParseError::new(line, format!("duplicate case {label:?}")));
                    }
                    sc.cases.push(CaseSpec::new(label));
                    case_probes.push(sc.base.clone());
                    Section::Case(sc.cases.len() - 1)
                }
            };
            continue;
        }

        let Some((key, value)) = content.split_once('=') else {
            return Err(ParseError::new(
                line,
                format!("expected `key = value` or a [section] header, got {content:?}"),
            ));
        };
        let key = key.trim();
        if !is_ident(key) {
            return Err(ParseError::new(line, format!("invalid key {key:?}")));
        }
        let value = parse_value(value, line)?;
        let scope = match section {
            Section::Top => "top".to_string(),
            Section::Market => "market".to_string(),
            Section::Run => "run".to_string(),
            Section::Case(i) => format!("case.{i}"),
            Section::Sweep => "sweep".to_string(),
        };
        if !seen.insert(format!("{scope}/{key}")) {
            return Err(ParseError::new(line, format!("duplicate key {key:?}")));
        }

        match section {
            Section::Top => match key {
                "name" => sc.name = value.scalar(line, key)?,
                "title" => sc.title = value.scalar(line, key)?,
                _ => {
                    return Err(ParseError::new(
                        line,
                        format!("unknown top-level key {key:?} (expected name or title)"),
                    ))
                }
            },
            Section::Market => {
                let scalar = value.scalar(line, key)?;
                sc.base
                    .set(key, &scalar)
                    .map_err(|e| ParseError::new(line, e.to_string()))?;
            }
            Section::Run => match key {
                "horizon" => {
                    sc.run.horizon_secs = parse_u64(&value.scalar(line, key)?, line, key)?;
                    if sc.run.horizon_secs == 0 {
                        return Err(ParseError::new(line, "horizon must be positive"));
                    }
                }
                "seed" => sc.run.seed = parse_u64(&value.scalar(line, key)?, line, key)?,
                "replications" => {
                    let n = parse_u64(&value.scalar(line, key)?, line, key)?;
                    if n == 0 {
                        return Err(ParseError::new(line, "replications must be at least 1"));
                    }
                    sc.run.replications = n as usize;
                }
                "snapshots" => {
                    sc.run.snapshots = value
                        .list(line, key)?
                        .iter()
                        .map(|v| parse_u64(v, line, key))
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "metrics" => {
                    sc.run.metrics = value
                        .list(line, key)?
                        .iter()
                        .map(|v| {
                            Metric::from_name(v).ok_or_else(|| {
                                // Sourced from the probe registry, so
                                // newly registered metrics are
                                // self-documenting here.
                                ParseError::new(
                                    line,
                                    format!(
                                        "unknown metric {v:?} (expected one of: {})",
                                        Metric::registry()
                                            .iter()
                                            .map(|m| m.name())
                                            .collect::<Vec<_>>()
                                            .join(", ")
                                    ),
                                )
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                _ => {
                    return Err(ParseError::new(
                        line,
                        format!(
                            "unknown run key {key:?} (expected horizon, seed, replications, \
                             snapshots, or metrics)"
                        ),
                    ))
                }
            },
            Section::Case(i) => {
                let scalar = value.scalar(line, key)?;
                // Apply to the case's cumulative probe so earlier
                // overrides in the same case provide context (exactly
                // how `expand` will apply them).
                case_probes[i]
                    .set(key, &scalar)
                    .map_err(|e| ParseError::new(line, e.to_string()))?;
                sc.cases[i].overrides.push((key.to_string(), scalar));
            }
            Section::Sweep => {
                let values = value.list(line, key)?;
                if values.is_empty() {
                    return Err(ParseError::new(
                        line,
                        format!("sweep axis {key:?} is empty"),
                    ));
                }
                // Sweep values apply on top of *each* resolved case, so
                // a value is only a parse error if it is invalid against
                // every context seen so far (the base and every case).
                // False accepts are caught by `expand` with the full
                // case label; false rejects here would wrongly refuse
                // runnable files.
                for v in &values {
                    let base_err = sc.base.clone().set(key, v).err();
                    if let Some(err) = base_err {
                        if !case_probes
                            .iter()
                            .any(|probe| probe.clone().set(key, v).is_ok())
                        {
                            return Err(ParseError::new(line, err.to_string()));
                        }
                    }
                }
                sc.sweep.push(SweepAxis {
                    key: key.to_string(),
                    values,
                });
            }
        }
    }
    Ok(sc)
}

/// Renders a scalar back into file syntax: numbers and booleans bare,
/// everything else quoted.
fn scalar_literal(v: &str) -> String {
    if v == "true" || v == "false" || v.parse::<f64>().is_ok() {
        v.to_string()
    } else {
        format!("\"{v}\"")
    }
}

fn list_literal<S: AsRef<str>>(items: &[S]) -> String {
    let body: Vec<String> = items.iter().map(|s| scalar_literal(s.as_ref())).collect();
    format!("[{}]", body.join(", "))
}

/// Serializes a scenario to the canonical file format (see
/// [`Scenario::to_file_string`]).
pub fn serialize_scenario(sc: &Scenario) -> String {
    let mut out = String::new();
    out.push_str(&format!("name = \"{}\"\n", sc.name));
    if !sc.title.is_empty() {
        out.push_str(&format!("title = \"{}\"\n", sc.title));
    }

    out.push_str("\n[market]\n");
    for (key, value) in sc.base.entries() {
        out.push_str(&format!("{key} = {}\n", scalar_literal(&value)));
    }

    out.push_str("\n[run]\n");
    out.push_str(&format!("horizon = {}\n", sc.run.horizon_secs));
    out.push_str(&format!("seed = {}\n", sc.run.seed));
    out.push_str(&format!("replications = {}\n", sc.run.replications));
    if !sc.run.snapshots.is_empty() {
        let items: Vec<String> = sc.run.snapshots.iter().map(|t| t.to_string()).collect();
        out.push_str(&format!("snapshots = {}\n", list_literal(&items)));
    }
    if sc.run.metrics != RunSpec::default().metrics {
        let items: Vec<&str> = sc.run.metrics.iter().map(|m| m.name()).collect();
        out.push_str(&format!("metrics = {}\n", list_literal(&items)));
    }

    for case in &sc.cases {
        out.push_str(&format!("\n[case.{}]\n", case.label));
        for (key, value) in &case.overrides {
            out.push_str(&format!("{key} = {}\n", scalar_literal(value)));
        }
    }

    if !sc.sweep.is_empty() {
        out.push_str("\n[sweep]\n");
        for axis in &sc.sweep {
            out.push_str(&format!("{} = {}\n", axis.key, list_literal(&axis.values)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# A comment-rich scenario exercising every section.
name = "sample"
title = "demo # not a comment inside a string"

[market]
peers = 60
credits = 100
profile = "near-symmetric:0.1"   # trailing comment

[run]
horizon = 2000
seed = 777
replications = 3
snapshots = [500, 1000]
metrics = ["gini-series", "snapshots"]

[case.plain]

[case.taxed]
tax = "0.2:50"

[sweep]
credits = [50, 100]
"#;

    #[test]
    fn sample_parses_fully() {
        let sc = parse_scenario(SAMPLE).expect("valid");
        assert_eq!(sc.name, "sample");
        assert_eq!(sc.title, "demo # not a comment inside a string");
        assert_eq!(sc.base.config().n, 60);
        assert_eq!(sc.run.horizon_secs, 2_000);
        assert_eq!(sc.run.seed, 777);
        assert_eq!(sc.run.replications, 3);
        assert_eq!(sc.run.snapshots, [500, 1000]);
        assert_eq!(sc.run.metrics, [Metric::GINI_SERIES, Metric::SNAPSHOTS]);
        assert_eq!(sc.cases.len(), 2);
        assert_eq!(
            sc.cases[1].overrides,
            [("tax".to_string(), "0.2:50".to_string())]
        );
        assert_eq!(sc.sweep.len(), 1);
        assert_eq!(sc.sweep[0].values, ["50", "100"]);
        assert_eq!(sc.expand().expect("expands").len(), 4);
    }

    #[test]
    fn round_trip_is_exact() {
        let sc = parse_scenario(SAMPLE).expect("valid");
        let serialized = sc.to_file_string();
        let reparsed = parse_scenario(&serialized).expect("serialized form parses");
        assert_eq!(sc, reparsed, "parse → serialize → parse must be identity");
        // And serialization is a fixed point.
        assert_eq!(serialized, reparsed.to_file_string());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: [(&str, &str); 12] = [
            ("peers = 10", "unknown top-level key"),
            ("name = unquoted", "neither a number nor a boolean"),
            ("[market]\npeers = \"ten\"", "invalid value"),
            ("[market]\npeers = [1, 2]", "single value"),
            ("[banana]", "unknown section"),
            ("[case.bad name]", "invalid case name"),
            ("[run]\nhorizon = 0", "horizon must be positive"),
            ("[run]\nreplications = 0", "replications must be at least 1"),
            ("[run]\nmetrics = [\"entropy\"]", "unknown metric"),
            ("[sweep]\ncredits = 5", "takes a list"),
            ("[sweep]\ncredits = []", "is empty"),
            ("just some words", "expected `key = value`"),
        ];
        for (text, needle) in cases {
            let err = parse_scenario(text).expect_err(text);
            assert!(
                err.message.contains(needle),
                "{text:?}: got {:?}, wanted {needle:?}",
                err.message
            );
            assert!(err.line > 0, "{text:?}: line number missing");
            assert!(err.to_string().contains("line"), "{err}");
        }
    }

    #[test]
    fn error_line_numbers_point_at_the_offender() {
        let text = "name = \"x\"\n\n[market]\npeers = 60\ncredits = oops\n";
        let err = parse_scenario(text).expect_err("bad credits");
        assert_eq!(err.line, 5);
    }

    #[test]
    fn duplicate_keys_and_sections_are_rejected() {
        for text in [
            "name = \"a\"\nname = \"b\"",
            "[market]\npeers = 10\npeers = 20",
            "[market]\npeers = 10\n[market]\ncredits = 5",
            "[case.a]\n[case.a]",
            "[run]\nseed = 1\nseed = 2",
        ] {
            assert!(parse_scenario(text).is_err(), "{text:?} should fail");
        }
        // The same key in different cases is fine.
        let ok = "[case.a]\ntax = \"0.1:50\"\n[case.b]\ntax = \"0.2:50\"";
        assert_eq!(parse_scenario(ok).expect("valid").cases.len(), 2);
    }

    #[test]
    fn unterminated_tokens_are_rejected() {
        for text in ["name = \"open", "[market", "[run]\nsnapshots = [1, 2"] {
            assert!(parse_scenario(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn case_overrides_provide_context_for_later_lines() {
        // A case may enable streaming itself and then tune its
        // sub-keys; each line validates against the case's cumulative
        // state, exactly as expand() will apply it.
        let text = "[case.chunk]\nstreaming = \"paced:1\"\nstreaming.window = 48\n";
        let sc = parse_scenario(text).expect("case-local streaming enables sub-keys");
        sc.validate().expect("expands and builds");
        // Interdependent sub-keys inside one case: raise the window,
        // then a startup that only fits the raised window.
        let text = "[market]\nstreaming = \"paced:1\"\n\
                    [case.deep]\nstreaming.window = 256\nstreaming.startup = 100\n";
        parse_scenario(text).expect("cumulative case probing");
        // Out-of-context sub-keys are still refused with a line number.
        let err = parse_scenario("[case.bad]\nstreaming.window = 48\n")
            .expect_err("no streaming context");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("streaming"), "{err}");
    }

    #[test]
    fn sweep_values_validate_against_any_case_context() {
        // The sweep axis drives a streaming sub-key; streaming is
        // enabled only inside the cases, not in the base.
        let text = "[case.a]\nstreaming = \"paced:1\"\n[case.b]\nstreaming = \"paced:2\"\n\
                    [sweep]\nstreaming.source-uploads = [1, 8]\n";
        let sc = parse_scenario(text).expect("case context admits the sweep");
        sc.validate().expect("expands and builds");
        // A value invalid in every context still fails at parse time.
        let bad = "[case.a]\nstreaming = \"paced:1\"\n[sweep]\nstreaming.window = [\"wide\"]\n";
        assert!(parse_scenario(bad).is_err());
    }

    #[test]
    fn quoted_commas_survive_list_splitting() {
        let text = "[sweep]\nprofile = [\"symmetric\", \"near-symmetric:0.1\"]";
        let sc = parse_scenario(text).expect("valid");
        assert_eq!(sc.sweep[0].values, ["symmetric", "near-symmetric:0.1"]);
    }
}

//! Multi-threaded scenario execution with deterministic output.
//!
//! The runner flattens a scenario's `cases × replications` grid into a
//! job list, shards it over `std::thread` workers pulling from an atomic
//! cursor, and merges results **by job index**, never by completion
//! order. Each job's RNG seed is a pure function of its coordinates
//! ([`scrip_des::SeedSequence::replication_seed`]), so the aggregated
//! output — including [`ScenarioResult::to_csv`] — is byte-identical
//! whether the batch runs on 1 thread or 64.
//!
//! Replication 0 of every case reuses the scenario's root seed and all
//! cases share the same replication seed stream (common random numbers),
//! which makes single-replication batch runs reproduce direct
//! [`scrip_core::market::run_market`]-style calls exactly and reduces
//! variance when comparing grid points.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use scrip_core::des::{SeedSequence, SimTime, Simulation};
use scrip_core::market::{CreditMarket, MarketConfig, MarketEvent};
use scrip_core::protocol::build_streaming_market;
use scrip_core::spec::MarketSpec;
use scrip_core::streaming::StreamEvent;
use scrip_econ::aggregate::{aggregate_rows, SummaryStats};

use super::{Metric, Scenario, ScenarioError};

/// Batch-execution options.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunnerOptions {
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
}

/// Process-wide worker-cap override (sentinel `usize::MAX` = none),
/// taking precedence over `SCRIP_THREADS` in
/// [`RunnerOptions::from_env`]. This is how a CLI's `--threads` /
/// `--serial` reaches the scenario runs *inside* figure modules, whose
/// `fn(RunScale)` signature has no room to pass options through.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Sets (or with [`None`] clears) the process-wide worker-cap override
/// and returns the previous value. 0 means "one per core".
pub fn set_thread_override(threads: Option<usize>) -> Option<usize> {
    let raw = threads.unwrap_or(usize::MAX);
    let previous = THREAD_OVERRIDE.swap(raw, Ordering::SeqCst);
    (previous != usize::MAX).then_some(previous)
}

impl RunnerOptions {
    /// The ambient thread count: the process-wide override set via
    /// [`set_thread_override`] if any, else `SCRIP_THREADS` (unset,
    /// empty, or `0` mean "one per core").
    pub fn from_env() -> Self {
        let overridden = THREAD_OVERRIDE.load(Ordering::SeqCst);
        if overridden != usize::MAX {
            return RunnerOptions {
                threads: overridden,
            };
        }
        let threads = std::env::var("SCRIP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        RunnerOptions { threads }
    }

    /// Explicit thread count (0 = one per core).
    pub fn with_threads(threads: usize) -> Self {
        RunnerOptions { threads }
    }

    /// The worker count for `jobs` queued jobs.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let requested = if self.threads == 0 { hw } else { self.threads };
        requested.min(jobs).max(1)
    }
}

/// Runs `f(0..count)` on up to `threads` workers and returns the results
/// in index order, regardless of completion order. With one effective
/// worker the closure runs inline on the caller's thread.
pub fn parallel_map<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = RunnerOptions { threads }.effective_threads(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::SeqCst);
                if i >= count {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Everything measured in one simulated market run.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicationRun {
    /// The seed this replication ran with.
    pub seed: u64,
    /// Gini-over-time samples `(t_secs, gini)`.
    pub gini: Vec<(f64, f64)>,
    /// Final wealth distribution, sorted ascending.
    pub final_balances: Vec<u64>,
    /// Per-peer credit spending rates over the whole run, sorted
    /// ascending.
    pub spending_rates: Vec<f64>,
    /// Sorted wealth snapshots at the configured times.
    pub snapshots: Vec<(u64, Vec<u64>)>,
    /// Gini of the final wealth distribution.
    pub wealth_gini: f64,
    /// Successful purchases.
    pub purchases: u64,
    /// Purchase attempts denied for lack of credits.
    pub denied: u64,
    /// Total credits spent by live peers.
    pub total_spent: u64,
    /// Live peers at the horizon.
    pub peer_count: usize,
    /// Credits collected by taxation (0 without tax).
    pub tax_collected: u64,
    /// Credits redistributed by taxation (0 without tax).
    pub tax_redistributed: u64,
    /// Stall-rate samples `(t_secs, stall)` of a chunk-level streaming
    /// market (not-yet-started peers count as fully stalled — see
    /// [`scrip_core::streaming::StreamingSystem::stall_series`]); empty
    /// for queue-level markets.
    pub stalls: Vec<(f64, f64)>,
}

/// All replications of one expanded case, plus aggregation helpers.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// The case label.
    pub label: String,
    /// The market description this case ran.
    pub spec: MarketSpec,
    /// Per-replication measurements, in replication order.
    pub reps: Vec<ReplicationRun>,
    /// Total simulation time spent on this case (sum over replications;
    /// excluded from all deterministic output).
    pub wall: Duration,
}

impl CaseResult {
    /// The single replication of a replications=1 case.
    ///
    /// # Panics
    /// Panics when the case has no replications (cannot happen for
    /// runner-produced results).
    pub fn single(&self) -> &ReplicationRun {
        &self.reps[0]
    }

    /// Truncates all replications' `rows` to their common prefix length
    /// and aggregates column-wise.
    fn aggregate_f64_rows(rows: Vec<Vec<f64>>) -> Vec<SummaryStats> {
        let width = rows.iter().map(Vec::len).min().unwrap_or(0);
        let trimmed: Vec<&[f64]> = rows.iter().map(|r| &r[..width]).collect();
        if width == 0 {
            return Vec::new();
        }
        aggregate_rows(&trimmed).expect("aligned finite rows")
    }

    /// The Gini trajectory aggregated across replications:
    /// `(t_secs, stats)` per sample, truncated to the shortest
    /// replication.
    pub fn gini_aggregate(&self) -> Vec<(f64, SummaryStats)> {
        let stats = Self::aggregate_f64_rows(
            self.reps
                .iter()
                .map(|r| r.gini.iter().map(|&(_, g)| g).collect())
                .collect(),
        );
        self.reps[0]
            .gini
            .iter()
            .map(|&(t, _)| t)
            .zip(stats)
            .collect()
    }

    /// The final wealth distribution aggregated by rank.
    pub fn balances_aggregate(&self) -> Vec<SummaryStats> {
        Self::aggregate_f64_rows(
            self.reps
                .iter()
                .map(|r| r.final_balances.iter().map(|&b| b as f64).collect())
                .collect(),
        )
    }

    /// The spending-rate distribution aggregated by rank.
    pub fn rates_aggregate(&self) -> Vec<SummaryStats> {
        Self::aggregate_f64_rows(self.reps.iter().map(|r| r.spending_rates.clone()).collect())
    }

    /// The stall-rate trajectory aggregated across replications:
    /// `(t_secs, stats)` per sample, truncated to the shortest
    /// replication. Empty for queue-level markets.
    pub fn stall_aggregate(&self) -> Vec<(f64, SummaryStats)> {
        let stats = Self::aggregate_f64_rows(
            self.reps
                .iter()
                .map(|r| r.stalls.iter().map(|&(_, s)| s).collect())
                .collect(),
        );
        self.reps[0]
            .stalls
            .iter()
            .map(|&(t, _)| t)
            .zip(stats)
            .collect()
    }

    /// The wealth snapshot at time `t`, aggregated by rank.
    pub fn snapshot_aggregate(&self, t: u64) -> Vec<SummaryStats> {
        Self::aggregate_f64_rows(
            self.reps
                .iter()
                .map(|r| {
                    r.snapshots
                        .iter()
                        .find(|&&(st, _)| st == t)
                        .map(|(_, balances)| balances.iter().map(|&b| b as f64).collect())
                        .unwrap_or_default()
                })
                .collect(),
        )
    }

    /// The plateau Gini (mean of each replication's last 10 samples)
    /// summarized across replications.
    pub fn plateau(&self) -> Option<SummaryStats> {
        let plateaus: Vec<f64> = self
            .reps
            .iter()
            .filter_map(|r| {
                if r.gini.is_empty() {
                    return None;
                }
                let tail = &r.gini[r.gini.len().saturating_sub(10)..];
                Some(tail.iter().map(|&(_, g)| g).sum::<f64>() / tail.len() as f64)
            })
            .collect();
        SummaryStats::from_samples(&plateaus).ok()
    }
}

/// A finished scenario: per-case results plus timing.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// One result per expanded case, in expansion order.
    pub cases: Vec<CaseResult>,
    /// End-to-end wall-clock of the batch (excluded from deterministic
    /// output).
    pub wall: Duration,
}

impl ScenarioResult {
    /// Deterministic per-case summary lines (plateau Gini, throughput
    /// counters) — identical for every thread count.
    pub fn summary_lines(&self) -> Vec<String> {
        self.cases
            .iter()
            .map(|case| {
                let reps = case.reps.len() as f64;
                let purchases = case.reps.iter().map(|r| r.purchases).sum::<u64>() as f64 / reps;
                let denied = case.reps.iter().map(|r| r.denied).sum::<u64>() as f64 / reps;
                let peers = case.reps.iter().map(|r| r.peer_count).sum::<usize>() as f64 / reps;
                let wealth_gini = case.reps.iter().map(|r| r.wealth_gini).sum::<f64>() / reps;
                // Chunk-level cases also report their final stall rate.
                let stall = if case.reps.iter().all(|r| r.stalls.is_empty()) {
                    String::new()
                } else {
                    let s = case
                        .reps
                        .iter()
                        .filter_map(|r| r.stalls.last().map(|&(_, s)| s))
                        .sum::<f64>()
                        / reps;
                    format!(", stall={s:.4}")
                };
                match case.plateau() {
                    Some(p) => format!(
                        "case {}: plateau gini mean={:.4} min={:.4} max={:.4}, final wealth \
                         gini={:.4}, purchases={purchases:.1}, denied={denied:.1}, \
                         peers={peers:.1}{stall}",
                        case.label, p.mean, p.min, p.max, wealth_gini
                    ),
                    None => format!(
                        "case {}: final wealth gini={wealth_gini:.4}, purchases={purchases:.1}, \
                         denied={denied:.1}, peers={peers:.1}{stall}",
                        case.label
                    ),
                }
            })
            .collect()
    }

    /// Renders the replication-aggregated metrics as CSV with
    /// `#`-prefixed metadata, in scenario metric order. Byte-identical
    /// for every thread count.
    pub fn to_csv(&self) -> String {
        let sc = &self.scenario;
        let mut out = String::new();
        if sc.title.is_empty() {
            out.push_str(&format!("# scenario: {}\n", sc.name));
        } else {
            out.push_str(&format!("# scenario: {} — {}\n", sc.name, sc.title));
        }
        out.push_str(&format!(
            "# horizon: {}s, seed: {}, replications: {}, cases: {}\n",
            sc.run.horizon_secs,
            sc.run.seed,
            sc.run.replications,
            self.cases.len()
        ));
        for line in self.summary_lines() {
            out.push_str(&format!("# {line}\n"));
        }
        out.push_str("metric,case,x,mean,min,max\n");
        let mut push_rows = |metric: &str,
                             label: &str,
                             xs: &mut dyn Iterator<Item = f64>,
                             stats: &[SummaryStats]| {
            for (x, s) in xs.zip(stats) {
                out.push_str(&format!(
                    "{metric},{label},{x:.6},{:.6},{:.6},{:.6}\n",
                    s.mean, s.min, s.max
                ));
            }
        };
        for metric in &sc.run.metrics {
            for case in &self.cases {
                match metric {
                    Metric::GiniSeries => {
                        let agg = case.gini_aggregate();
                        let stats: Vec<SummaryStats> = agg.iter().map(|&(_, s)| s).collect();
                        push_rows(
                            "gini",
                            &case.label,
                            &mut agg.iter().map(|&(t, _)| t),
                            &stats,
                        );
                    }
                    Metric::FinalBalances => {
                        let stats = case.balances_aggregate();
                        push_rows(
                            "final-balance",
                            &case.label,
                            &mut (0..stats.len()).map(|i| i as f64),
                            &stats,
                        );
                    }
                    Metric::SpendingRates => {
                        let stats = case.rates_aggregate();
                        push_rows(
                            "spending-rate",
                            &case.label,
                            &mut (0..stats.len()).map(|i| i as f64),
                            &stats,
                        );
                    }
                    Metric::Snapshots => {
                        for &t in &sc.run.snapshots {
                            let stats = case.snapshot_aggregate(t);
                            push_rows(
                                &format!("snapshot{t}"),
                                &case.label,
                                &mut (0..stats.len()).map(|i| i as f64),
                                &stats,
                            );
                        }
                    }
                    Metric::StallSeries => {
                        let agg = case.stall_aggregate();
                        let stats: Vec<SummaryStats> = agg.iter().map(|&(_, s)| s).collect();
                        push_rows(
                            "stall",
                            &case.label,
                            &mut agg.iter().map(|&(t, _)| t),
                            &stats,
                        );
                    }
                }
            }
        }
        out
    }
}

/// Simulates one market to the horizon, recording snapshots along the
/// way. A config whose `streaming` is set runs at chunk granularity
/// through the protocol-level simulator; everything else runs the
/// queue-level spend loop.
fn run_one(
    config: &MarketConfig,
    seed: u64,
    horizon_secs: u64,
    snapshot_times: &[u64],
) -> Result<ReplicationRun, ScenarioError> {
    if config.streaming.is_some() {
        return run_one_streaming(config, seed, horizon_secs, snapshot_times);
    }
    let market = CreditMarket::build(config.clone(), seed)
        .map_err(|e| ScenarioError::Run(format!("seed {seed}: {e}")))?;
    let mut sim = Simulation::new(market);
    sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
    let mut snapshots = Vec::with_capacity(snapshot_times.len());
    for &t in snapshot_times {
        sim.run_until(SimTime::from_secs(t));
        snapshots.push((t, sim.model().balances_sorted()));
    }
    let horizon = SimTime::from_secs(horizon_secs);
    sim.run_until(horizon);
    let market = sim.into_model();
    Ok(ReplicationRun {
        seed,
        gini: market
            .gini_series()
            .samples()
            .iter()
            .map(|&(t, g)| (t.as_secs_f64(), g))
            .collect(),
        final_balances: market.balances_sorted(),
        spending_rates: market.spending_rates_sorted(horizon),
        snapshots,
        wealth_gini: market
            .wealth_gini()
            .map_err(|e| ScenarioError::Run(format!("seed {seed}: {e}")))?,
        purchases: market.purchases(),
        denied: market.denied(),
        total_spent: market.spent_per_peer().values().sum(),
        peer_count: market.peer_count(),
        tax_collected: market.taxation().map_or(0, |t| t.collected),
        tax_redistributed: market.taxation().map_or(0, |t| t.redistributed),
        stalls: Vec::new(),
    })
}

/// Simulates one chunk-level streaming market to the horizon. The
/// measurements line up with the queue-level ones (`purchases` =
/// settlements, `denied` = authorization denials) and additionally
/// carry the stall-rate series.
fn run_one_streaming(
    config: &MarketConfig,
    seed: u64,
    horizon_secs: u64,
    snapshot_times: &[u64],
) -> Result<ReplicationRun, ScenarioError> {
    let system = build_streaming_market(config, seed)
        .map_err(|e| ScenarioError::Run(format!("seed {seed}: {e}")))?;
    let capacity = system.queue_capacity_hint();
    let mut sim = Simulation::with_capacity(system, capacity);
    sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
    let mut snapshots = Vec::with_capacity(snapshot_times.len());
    for &t in snapshot_times {
        sim.run_until(SimTime::from_secs(t));
        snapshots.push((t, sim.model().policy().balances_sorted()));
    }
    let horizon = SimTime::from_secs(horizon_secs);
    sim.run_until(horizon);
    let system = sim.into_model();
    let policy = system.policy();
    Ok(ReplicationRun {
        seed,
        gini: policy
            .gini_series()
            .samples()
            .iter()
            .map(|&(t, g)| (t.as_secs_f64(), g))
            .collect(),
        final_balances: policy.balances_sorted(),
        spending_rates: policy.spending_rates_sorted(horizon),
        snapshots,
        wealth_gini: policy
            .wealth_gini()
            .map_err(|e| ScenarioError::Run(format!("seed {seed}: {e}")))?,
        purchases: policy.settlements,
        denied: policy.denials,
        total_spent: policy.spent().values().sum(),
        peer_count: system.peer_count(),
        tax_collected: policy.taxation().map_or(0, |t| t.collected),
        tax_redistributed: policy.taxation().map_or(0, |t| t.redistributed),
        stalls: system
            .stall_series()
            .samples()
            .iter()
            .map(|&(t, s)| (t.as_secs_f64(), s))
            .collect(),
    })
}

/// Runs a scenario's full `cases × replications` grid, sharded across
/// worker threads, and merges the results in deterministic order.
///
/// # Errors
/// Returns [`ScenarioError::Config`] for invalid scenarios and
/// [`ScenarioError::Run`] when a simulation fails; the first failing job
/// (in job order) wins.
pub fn run_scenario(
    scenario: &Scenario,
    options: &RunnerOptions,
) -> Result<ScenarioResult, ScenarioError> {
    scenario.validate_params()?;
    let cases = scenario.expand()?;
    let configs: Vec<MarketConfig> = cases
        .iter()
        .map(|c| {
            c.spec
                .build()
                .map_err(|e| ScenarioError::Config(format!("case {:?}: {e}", c.label)))
        })
        .collect::<Result<_, _>>()?;
    let reps = scenario.run.replications;
    let seq = SeedSequence::new(scenario.run.seed);
    let jobs: Vec<(usize, u64)> = (0..cases.len())
        .flat_map(|case| (0..reps as u64).map(move |rep| (case, rep)))
        .collect();
    let threads = options.effective_threads(jobs.len());

    let start = Instant::now();
    let outcomes: Vec<(Result<ReplicationRun, ScenarioError>, Duration)> =
        parallel_map(jobs.len(), threads, |i| {
            let (case, rep) = jobs[i];
            let seed = seq.replication_seed(rep);
            let t0 = Instant::now();
            let run = run_one(
                &configs[case],
                seed,
                scenario.run.horizon_secs,
                &scenario.run.snapshots,
            );
            (run, t0.elapsed())
        });
    let wall = start.elapsed();

    let mut results: Vec<CaseResult> = cases
        .into_iter()
        .map(|c| CaseResult {
            label: c.label,
            spec: c.spec,
            reps: Vec::with_capacity(reps),
            wall: Duration::ZERO,
        })
        .collect();
    for ((case, _), (outcome, elapsed)) in jobs.into_iter().zip(outcomes) {
        results[case].reps.push(outcome?);
        results[case].wall += elapsed;
    }
    Ok(ScenarioResult {
        scenario: scenario.clone(),
        cases: results,
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CaseSpec, SweepAxis};

    fn tiny_scenario() -> Scenario {
        let mut sc = Scenario::new("tiny", MarketSpec::new(30, 10));
        sc.base.set("sample", "50").expect("valid");
        sc.run.horizon_secs = 400;
        sc.run.seed = 7;
        sc.run.replications = 3;
        sc.run.snapshots = vec![200, 400];
        sc.run.metrics = vec![
            Metric::GiniSeries,
            Metric::FinalBalances,
            Metric::SpendingRates,
            Metric::Snapshots,
        ];
        sc.sweep = vec![SweepAxis::new("credits", [5u64, 10])];
        sc
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let out = parallel_map(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        let serial = parallel_map(5, 1, |i| i);
        assert_eq!(serial, vec![0, 1, 2, 3, 4]);
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let sc = tiny_scenario();
        let serial = run_scenario(&sc, &RunnerOptions::with_threads(1)).expect("runs");
        let parallel = run_scenario(&sc, &RunnerOptions::with_threads(4)).expect("runs");
        assert_eq!(serial.cases.len(), parallel.cases.len());
        for (a, b) in serial.cases.iter().zip(&parallel.cases) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.reps, b.reps, "case {} diverged", a.label);
        }
        assert_eq!(serial.to_csv(), parallel.to_csv());
    }

    #[test]
    fn replication_zero_reproduces_direct_run() {
        use scrip_core::des::SimTime;
        use scrip_core::market::run_market;

        let mut sc = Scenario::new("direct", MarketSpec::new(30, 10));
        sc.run.horizon_secs = 400;
        sc.run.seed = 99;
        let result = run_scenario(&sc, &RunnerOptions::with_threads(2)).expect("runs");
        let direct =
            run_market(sc.base.build().expect("valid"), 99, SimTime::from_secs(400)).expect("runs");
        assert_eq!(
            result.cases[0].reps[0].final_balances,
            direct.balances_sorted()
        );
        assert_eq!(result.cases[0].reps[0].purchases, direct.purchases());
    }

    #[test]
    fn replications_use_distinct_seeds() {
        let sc = tiny_scenario();
        let result = run_scenario(&sc, &RunnerOptions::default()).expect("runs");
        let seeds: Vec<u64> = result.cases[0].reps.iter().map(|r| r.seed).collect();
        assert_eq!(seeds[0], sc.run.seed, "replication 0 keeps the root seed");
        assert_eq!(seeds.len(), 3);
        assert!(seeds[1] != seeds[0] && seeds[2] != seeds[1] && seeds[2] != seeds[0]);
        // Common random numbers: both cases see the same seeds.
        let other: Vec<u64> = result.cases[1].reps.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, other);
    }

    #[test]
    fn aggregates_cover_all_requested_metrics() {
        let sc = tiny_scenario();
        let result = run_scenario(&sc, &RunnerOptions::default()).expect("runs");
        let case = &result.cases[0];
        assert!(!case.gini_aggregate().is_empty());
        assert!(!case.balances_aggregate().is_empty());
        assert!(!case.rates_aggregate().is_empty());
        assert!(!case.snapshot_aggregate(200).is_empty());
        assert!(case.snapshot_aggregate(12345).is_empty(), "unknown time");
        let plateau = case.plateau().expect("gini recorded");
        assert!(plateau.n == 3 && (0.0..=1.0).contains(&plateau.mean));
        let csv = result.to_csv();
        for needle in ["gini,", "final-balance,", "spending-rate,", "snapshot200,"] {
            assert!(csv.contains(needle), "CSV missing {needle}");
        }
        assert_eq!(result.summary_lines().len(), 2);
    }

    #[test]
    fn streaming_scenarios_run_and_record_stalls() {
        let mut sc = Scenario::new("chunks", MarketSpec::new(30, 50));
        sc.base.set("streaming", "paced:1").expect("valid");
        sc.base.set("sample", "25").expect("valid");
        sc.run.horizon_secs = 150;
        sc.run.snapshots = vec![75, 150];
        sc.run.metrics = vec![Metric::GiniSeries, Metric::StallSeries, Metric::Snapshots];
        let result = run_scenario(&sc, &RunnerOptions::with_threads(2)).expect("runs");
        let case = &result.cases[0];
        assert!(!case.single().stalls.is_empty(), "stall series recorded");
        assert!(!case.single().gini.is_empty(), "gini series recorded");
        assert!(case.single().purchases > 0, "chunk trades settled");
        assert!(!case.stall_aggregate().is_empty());
        assert!(!case.snapshot_aggregate(75).is_empty());
        let csv = result.to_csv();
        assert!(
            csv.contains("stall,base,"),
            "CSV missing stall rows:\n{csv}"
        );
        assert!(
            result.summary_lines()[0].contains("stall="),
            "summary notes stall"
        );
        // Queue-level cases leave the stall series empty.
        let queue = run_scenario(&tiny_scenario(), &RunnerOptions::default()).expect("runs");
        assert!(queue.cases[0].single().stalls.is_empty());
        assert!(!queue.summary_lines()[0].contains("stall="));
    }

    #[test]
    fn invalid_scenarios_are_refused() {
        let mut sc = tiny_scenario();
        sc.run.horizon_secs = 0;
        assert!(run_scenario(&sc, &RunnerOptions::default()).is_err());

        let mut sc = tiny_scenario();
        sc.cases = vec![CaseSpec::new("broke").with("peers", "1")];
        assert!(run_scenario(&sc, &RunnerOptions::default()).is_err());
    }
}

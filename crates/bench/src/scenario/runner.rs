//! Multi-threaded scenario execution with deterministic output.
//!
//! The runner flattens a scenario's `cases × replications` grid into a
//! job list, shards it over `std::thread` workers pulling from an atomic
//! cursor, and merges results **by job index**, never by completion
//! order. Each job's RNG seed is a pure function of its coordinates
//! ([`scrip_des::SeedSequence::replication_seed`]), so the aggregated
//! output — including [`ScenarioResult::to_csv`] — is byte-identical
//! whether the batch runs on 1 thread or 64.
//!
//! Each job is one [`scrip_core::obs::Session`]: the unified runner
//! drives either market granularity and the metric registry's probes
//! ([`super::Metric`]) deposit their measurements into the job's
//! [`RunRecord`]. The always-on probes back [`ReplicationRun`]'s typed
//! accessors; metrics requested via `run.metrics` additionally select
//! which aggregated series reach the CSV.
//!
//! Replication 0 of every case reuses the scenario's root seed and all
//! cases share the same replication seed stream (common random numbers),
//! which makes single-replication batch runs reproduce direct
//! [`scrip_core::market::run_market`]-style calls exactly and reduces
//! variance when comparing grid points.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use scrip_core::des::{SeedSequence, SimTime};
use scrip_core::market::MarketConfig;
use scrip_core::obs::{ids, RunRecord, Session};
use scrip_core::spec::MarketSpec;
use scrip_econ::aggregate::{aggregate_rows, SummaryStats};

use super::{Metric, RunSpec, Scenario, ScenarioError};

/// Batch-execution options.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunnerOptions {
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
}

/// Process-wide worker-cap override (sentinel `usize::MAX` = none),
/// taking precedence over `SCRIP_THREADS` in
/// [`RunnerOptions::from_env`]. This is how a CLI's `--threads` /
/// `--serial` reaches the scenario runs *inside* figure modules, whose
/// `fn(RunScale)` signature has no room to pass options through.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Sets (or with [`None`] clears) the process-wide worker-cap override
/// and returns the previous value. 0 means "one per core".
pub fn set_thread_override(threads: Option<usize>) -> Option<usize> {
    let raw = threads.unwrap_or(usize::MAX);
    let previous = THREAD_OVERRIDE.swap(raw, Ordering::SeqCst);
    (previous != usize::MAX).then_some(previous)
}

/// Process-wide execution-shard override (sentinel `usize::MAX` =
/// none): when set, every queue-level job runs its market partitioned
/// into this many execution shards, regardless of the scenario's
/// `shards` key. This is how a CLI's `--shards` reaches the scenario
/// runs inside figure modules. Since the sharded kernel's output is
/// byte-identical to serial execution for any shard count, the
/// override is a pure execution-strategy knob: CSVs and summaries do
/// not change. Streaming (chunk-level) jobs ignore it — they always
/// run serially.
static SHARD_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Sets (or with [`None`] clears) the process-wide execution-shard
/// override and returns the previous value.
pub fn set_shard_override(shards: Option<usize>) -> Option<usize> {
    let raw = shards.unwrap_or(usize::MAX);
    let previous = SHARD_OVERRIDE.swap(raw, Ordering::SeqCst);
    (previous != usize::MAX).then_some(previous)
}

impl RunnerOptions {
    /// The ambient thread count: the process-wide override set via
    /// [`set_thread_override`] if any, else `SCRIP_THREADS` (unset,
    /// empty, or `0` mean "one per core").
    pub fn from_env() -> Self {
        let overridden = THREAD_OVERRIDE.load(Ordering::SeqCst);
        if overridden != usize::MAX {
            return RunnerOptions {
                threads: overridden,
            };
        }
        let threads = std::env::var("SCRIP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        RunnerOptions { threads }
    }

    /// Explicit thread count (0 = one per core).
    pub fn with_threads(threads: usize) -> Self {
        RunnerOptions { threads }
    }

    /// The worker count for `jobs` queued jobs.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let requested = if self.threads == 0 { hw } else { self.threads };
        requested.min(jobs).max(1)
    }
}

/// Runs `f(0..count)` on up to `threads` workers and returns the results
/// in index order, regardless of completion order. With one effective
/// worker the closure runs inline on the caller's thread.
pub fn parallel_map<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = RunnerOptions { threads }.effective_threads(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::SeqCst);
                if i >= count {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Everything measured in one simulated market run: the seed it ran
/// with plus the [`RunRecord`] the session's probes deposited. The
/// typed accessors read the always-on metrics (recorded for every run
/// regardless of the scenario's `metrics` selection); anything else —
/// including metrics minted by downstream code — is reachable through
/// [`ReplicationRun::record`].
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicationRun {
    /// The seed this replication ran with.
    pub seed: u64,
    /// All measurements, keyed by metric id (see
    /// [`scrip_core::obs::ids`]).
    pub record: RunRecord,
}

impl ReplicationRun {
    /// Gini-over-time samples `(t_secs, gini)`.
    pub fn gini(&self) -> &[(f64, f64)] {
        self.record.series(ids::GINI_SERIES)
    }

    /// Final wealth distribution, sorted ascending.
    pub fn final_balances(&self) -> &[u64] {
        self.record.sorted_u64(ids::FINAL_BALANCES)
    }

    /// Per-peer credit spending rates over the whole run, sorted
    /// ascending.
    pub fn spending_rates(&self) -> &[f64] {
        self.record.sorted_f64(ids::SPENDING_RATES)
    }

    /// Sorted wealth snapshots at the configured times.
    pub fn snapshots(&self) -> &[(u64, Vec<u64>)] {
        self.record.snapshots(ids::SNAPSHOTS)
    }

    /// Stall-rate samples `(t_secs, stall)` of a chunk-level streaming
    /// market; empty for queue-level markets.
    pub fn stalls(&self) -> &[(f64, f64)] {
        self.record.series(ids::STALL_SERIES)
    }

    /// Gini of the final wealth distribution.
    pub fn wealth_gini(&self) -> f64 {
        self.record.scalar(ids::WEALTH_GINI)
    }

    /// Successful purchases (settlements at chunk granularity).
    pub fn purchases(&self) -> u64 {
        self.record.counter(ids::PURCHASES)
    }

    /// Purchase attempts denied for lack of credits.
    pub fn denied(&self) -> u64 {
        self.record.counter(ids::DENIED)
    }

    /// Total credits spent by live peers.
    pub fn total_spent(&self) -> u64 {
        self.record.counter(ids::TOTAL_SPENT)
    }

    /// Live peers at the horizon.
    pub fn peer_count(&self) -> usize {
        self.record.counter(ids::PEER_COUNT) as usize
    }

    /// Credits collected by taxation (0 without tax).
    pub fn tax_collected(&self) -> u64 {
        self.record.counter(ids::TAX_COLLECTED)
    }

    /// Credits redistributed by taxation (0 without tax).
    pub fn tax_redistributed(&self) -> u64 {
        self.record.counter(ids::TAX_REDISTRIBUTED)
    }
}

/// All replications of one expanded case, plus aggregation helpers.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// The case label.
    pub label: String,
    /// The market description this case ran.
    pub spec: MarketSpec,
    /// Per-replication measurements, in replication order.
    pub reps: Vec<ReplicationRun>,
    /// Total simulation time spent on this case (sum over replications;
    /// excluded from all deterministic output).
    pub wall: Duration,
}

impl CaseResult {
    /// The single replication of a replications=1 case.
    ///
    /// # Panics
    /// Panics when the case has no replications (cannot happen for
    /// runner-produced results).
    pub fn single(&self) -> &ReplicationRun {
        &self.reps[0]
    }

    /// Truncates all replications' `rows` to their common prefix length
    /// and aggregates column-wise.
    fn aggregate_f64_rows(rows: Vec<Vec<f64>>) -> Vec<SummaryStats> {
        let width = rows.iter().map(Vec::len).min().unwrap_or(0);
        let trimmed: Vec<&[f64]> = rows.iter().map(|r| &r[..width]).collect();
        if width == 0 {
            return Vec::new();
        }
        aggregate_rows(&trimmed).expect("aligned finite rows")
    }

    /// Any recorded `(x, y)` series aggregated across replications:
    /// `(x, stats)` per sample, truncated to the shortest replication,
    /// with x values taken from replication 0. Empty when the metric
    /// was not recorded.
    pub fn series_aggregate(&self, id: &str) -> Vec<(f64, SummaryStats)> {
        let stats = Self::aggregate_f64_rows(
            self.reps
                .iter()
                .map(|r| r.record.series(id).iter().map(|&(_, y)| y).collect())
                .collect(),
        );
        self.reps[0]
            .record
            .series(id)
            .iter()
            .map(|&(x, _)| x)
            .zip(stats)
            .collect()
    }

    /// The Gini trajectory aggregated across replications.
    pub fn gini_aggregate(&self) -> Vec<(f64, SummaryStats)> {
        self.series_aggregate(ids::GINI_SERIES)
    }

    /// The final wealth distribution aggregated by rank.
    pub fn balances_aggregate(&self) -> Vec<SummaryStats> {
        Self::aggregate_f64_rows(
            self.reps
                .iter()
                .map(|r| r.final_balances().iter().map(|&b| b as f64).collect())
                .collect(),
        )
    }

    /// The spending-rate distribution aggregated by rank.
    pub fn rates_aggregate(&self) -> Vec<SummaryStats> {
        Self::aggregate_f64_rows(
            self.reps
                .iter()
                .map(|r| r.spending_rates().to_vec())
                .collect(),
        )
    }

    /// The stall-rate trajectory aggregated across replications. Empty
    /// for queue-level markets.
    pub fn stall_aggregate(&self) -> Vec<(f64, SummaryStats)> {
        self.series_aggregate(ids::STALL_SERIES)
    }

    /// The wealth snapshot at time `t`, aggregated by rank.
    pub fn snapshot_aggregate(&self, t: u64) -> Vec<SummaryStats> {
        Self::aggregate_f64_rows(
            self.reps
                .iter()
                .map(|r| {
                    r.snapshots()
                        .iter()
                        .find(|&&(st, _)| st == t)
                        .map(|(_, balances)| balances.iter().map(|&b| b as f64).collect())
                        .unwrap_or_default()
                })
                .collect(),
        )
    }

    /// The plateau Gini (mean of each replication's last 10 samples)
    /// summarized across replications.
    pub fn plateau(&self) -> Option<SummaryStats> {
        let plateaus: Vec<f64> = self
            .reps
            .iter()
            .filter_map(|r| {
                let gini = r.gini();
                if gini.is_empty() {
                    return None;
                }
                let tail = &gini[gini.len().saturating_sub(10)..];
                Some(tail.iter().map(|&(_, g)| g).sum::<f64>() / tail.len() as f64)
            })
            .collect();
        SummaryStats::from_samples(&plateaus).ok()
    }
}

/// Appends aggregated `metric,case,x,mean,min,max` CSV rows.
fn push_rows(
    out: &mut String,
    metric: &str,
    label: &str,
    xs: impl Iterator<Item = f64>,
    stats: &[SummaryStats],
) {
    for (x, s) in xs.zip(stats) {
        out.push_str(&format!(
            "{metric},{label},{x:.6},{:.6},{:.6},{:.6}\n",
            s.mean, s.min, s.max
        ));
    }
}

/// Appends a series metric's rows (x values from the aggregate).
fn push_series(out: &mut String, metric: &str, label: &str, agg: &[(f64, SummaryStats)]) {
    let stats: Vec<SummaryStats> = agg.iter().map(|&(_, s)| s).collect();
    push_rows(out, metric, label, agg.iter().map(|&(x, _)| x), &stats);
}

/// Appends a rank-indexed distribution metric's rows (x = rank).
fn push_ranked(out: &mut String, metric: &str, label: &str, stats: &[SummaryStats]) {
    push_rows(
        out,
        metric,
        label,
        (0..stats.len()).map(|i| i as f64),
        stats,
    );
}

// CSV emitters behind the metric registry (`super::Metric`), one per
// registered metric. Row formats are pinned byte-for-byte by
// `tests/scenario_golden.rs`.

pub(super) fn emit_gini(_sc: &Scenario, case: &CaseResult, out: &mut String) {
    push_series(out, "gini", &case.label, &case.gini_aggregate());
}

pub(super) fn emit_final_balances(_sc: &Scenario, case: &CaseResult, out: &mut String) {
    push_ranked(
        out,
        "final-balance",
        &case.label,
        &case.balances_aggregate(),
    );
}

pub(super) fn emit_spending_rates(_sc: &Scenario, case: &CaseResult, out: &mut String) {
    push_ranked(out, "spending-rate", &case.label, &case.rates_aggregate());
}

pub(super) fn emit_snapshots(sc: &Scenario, case: &CaseResult, out: &mut String) {
    for &t in &sc.run.snapshots {
        push_ranked(
            out,
            &format!("snapshot{t}"),
            &case.label,
            &case.snapshot_aggregate(t),
        );
    }
}

pub(super) fn emit_stalls(_sc: &Scenario, case: &CaseResult, out: &mut String) {
    push_series(out, "stall", &case.label, &case.stall_aggregate());
}

pub(super) fn emit_throughput(_sc: &Scenario, case: &CaseResult, out: &mut String) {
    push_series(
        out,
        "throughput",
        &case.label,
        &case.series_aggregate(ids::THROUGHPUT_SERIES),
    );
}

pub(super) fn emit_population(_sc: &Scenario, case: &CaseResult, out: &mut String) {
    push_series(
        out,
        "population",
        &case.label,
        &case.series_aggregate(ids::POPULATION_SERIES),
    );
}

pub(super) fn emit_lorenz(_sc: &Scenario, case: &CaseResult, out: &mut String) {
    push_series(
        out,
        "lorenz",
        &case.label,
        &case.series_aggregate(ids::LORENZ),
    );
}

pub(super) fn emit_faults(_sc: &Scenario, case: &CaseResult, out: &mut String) {
    push_series(
        out,
        "fault",
        &case.label,
        &case.series_aggregate(ids::FAULT_SERIES),
    );
    push_series(
        out,
        "escrow",
        &case.label,
        &case.series_aggregate(ids::ESCROW_SERIES),
    );
    push_series(
        out,
        "retry-depth",
        &case.label,
        &case.series_aggregate(ids::RETRY_DEPTH),
    );
}

/// A finished scenario: per-case results plus timing.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// One result per expanded case, in expansion order.
    pub cases: Vec<CaseResult>,
    /// End-to-end wall-clock of the batch (excluded from deterministic
    /// output).
    pub wall: Duration,
}

impl ScenarioResult {
    /// Deterministic per-case summary lines (plateau Gini, throughput
    /// counters) — identical for every thread count.
    pub fn summary_lines(&self) -> Vec<String> {
        self.cases
            .iter()
            .map(|case| {
                let reps = case.reps.len() as f64;
                let purchases = case.reps.iter().map(|r| r.purchases()).sum::<u64>() as f64 / reps;
                let denied = case.reps.iter().map(|r| r.denied()).sum::<u64>() as f64 / reps;
                let peers = case.reps.iter().map(|r| r.peer_count()).sum::<usize>() as f64 / reps;
                let wealth_gini = case.reps.iter().map(|r| r.wealth_gini()).sum::<f64>() / reps;
                // Chunk-level cases also report their final stall rate.
                let stall = if case.reps.iter().all(|r| r.stalls().is_empty()) {
                    String::new()
                } else {
                    let s = case
                        .reps
                        .iter()
                        .filter_map(|r| r.stalls().last().map(|&(_, s)| s))
                        .sum::<f64>()
                        / reps;
                    format!(", stall={s:.4}")
                };
                match case.plateau() {
                    Some(p) => format!(
                        "case {}: plateau gini mean={:.4} min={:.4} max={:.4}, final wealth \
                         gini={:.4}, purchases={purchases:.1}, denied={denied:.1}, \
                         peers={peers:.1}{stall}",
                        case.label, p.mean, p.min, p.max, wealth_gini
                    ),
                    None => format!(
                        "case {}: final wealth gini={wealth_gini:.4}, purchases={purchases:.1}, \
                         denied={denied:.1}, peers={peers:.1}{stall}",
                        case.label
                    ),
                }
            })
            .collect()
    }

    /// Renders the replication-aggregated metrics as CSV with
    /// `#`-prefixed metadata, in scenario metric order. Byte-identical
    /// for every thread count (pinned by `tests/scenario_golden.rs`).
    pub fn to_csv(&self) -> String {
        let sc = &self.scenario;
        let mut out = String::new();
        if sc.title.is_empty() {
            out.push_str(&format!("# scenario: {}\n", sc.name));
        } else {
            out.push_str(&format!("# scenario: {} — {}\n", sc.name, sc.title));
        }
        out.push_str(&format!(
            "# horizon: {}s, seed: {}, replications: {}, cases: {}\n",
            sc.run.horizon_secs,
            sc.run.seed,
            sc.run.replications,
            self.cases.len()
        ));
        for line in self.summary_lines() {
            out.push_str(&format!("# {line}\n"));
        }
        out.push_str("metric,case,x,mean,min,max\n");
        for metric in &sc.run.metrics {
            for case in &self.cases {
                metric.emit_csv(sc, case, &mut out);
            }
        }
        out
    }
}

/// The probes one job attaches: every always-on registry metric (they
/// back [`ReplicationRun`]'s accessors and the summary lines) plus any
/// additionally requested ones, deduplicated.
fn attached_metrics(requested: &[Metric]) -> Vec<Metric> {
    let mut out: Vec<Metric> = Metric::registry()
        .into_iter()
        .filter(Metric::always_on)
        .collect();
    for &metric in requested {
        if !out.contains(&metric) {
            out.push(metric);
        }
    }
    out
}

/// The probe set one scenario job attaches, in attach order: always-on
/// registry metrics plus `run.metrics` extras. Exposed so a CLI driving
/// a [`Session`] directly (e.g. the checkpointed `scrip-sim run` path)
/// builds byte-identically the same probes as [`run_scenario`].
pub fn session_probes(run: &RunSpec) -> Vec<Box<dyn scrip_core::obs::Probe>> {
    attached_metrics(&run.metrics)
        .iter()
        .map(|m| m.make_probe(run))
        .collect()
}

/// Simulates one market to the horizon through a unified
/// [`Session`]: a config whose `streaming` is set runs at chunk
/// granularity, everything else runs the queue-level spend loop — the
/// attached probes observe either one identically.
fn run_one(
    config: &MarketConfig,
    seed: u64,
    run: &RunSpec,
) -> Result<ReplicationRun, ScenarioError> {
    // Apply the process-wide shard override to queue-level jobs
    // (byte-identical output; see `set_shard_override`).
    let overridden;
    let config = match SHARD_OVERRIDE.load(Ordering::SeqCst) {
        usize::MAX => config,
        shards if config.streaming.is_none() => {
            overridden = MarketConfig {
                shards: shards.max(1),
                ..config.clone()
            };
            &overridden
        }
        _ => config,
    };
    let mut session = Session::from_config(config, seed)
        .map_err(|e| ScenarioError::Run(format!("seed {seed}: {e}")))?;
    for metric in attached_metrics(&run.metrics) {
        session.attach(metric.make_probe(run));
    }
    session.run_until(SimTime::from_secs(run.horizon_secs));
    let (record, _model) = session.finish();
    if record.get(ids::WEALTH_GINI).is_none() {
        return Err(ScenarioError::Run(format!(
            "seed {seed}: market has no peers at the horizon"
        )));
    }
    Ok(ReplicationRun { seed, record })
}

/// Runs a scenario's full `cases × replications` grid, sharded across
/// worker threads, and merges the results in deterministic order.
///
/// # Errors
/// Returns [`ScenarioError::Config`] for invalid scenarios and
/// [`ScenarioError::Run`] when a simulation fails; the first failing job
/// (in job order) wins.
pub fn run_scenario(
    scenario: &Scenario,
    options: &RunnerOptions,
) -> Result<ScenarioResult, ScenarioError> {
    scenario.validate_params()?;
    let cases = scenario.expand()?;
    let configs: Vec<MarketConfig> = cases
        .iter()
        .map(|c| {
            c.spec
                .build()
                .map_err(|e| ScenarioError::Config(format!("case {:?}: {e}", c.label)))
        })
        .collect::<Result<_, _>>()?;
    let reps = scenario.run.replications;
    let seq = SeedSequence::new(scenario.run.seed);
    let jobs: Vec<(usize, u64)> = (0..cases.len())
        .flat_map(|case| (0..reps as u64).map(move |rep| (case, rep)))
        .collect();
    let threads = options.effective_threads(jobs.len());

    let start = Instant::now();
    let outcomes: Vec<(Result<ReplicationRun, ScenarioError>, Duration)> =
        parallel_map(jobs.len(), threads, |i| {
            let (case, rep) = jobs[i];
            let seed = seq.replication_seed(rep);
            let t0 = Instant::now();
            let run = run_one(&configs[case], seed, &scenario.run);
            (run, t0.elapsed())
        });
    let wall = start.elapsed();

    let mut results: Vec<CaseResult> = cases
        .into_iter()
        .map(|c| CaseResult {
            label: c.label,
            spec: c.spec,
            reps: Vec::with_capacity(reps),
            wall: Duration::ZERO,
        })
        .collect();
    for ((case, _), (outcome, elapsed)) in jobs.into_iter().zip(outcomes) {
        results[case].reps.push(outcome?);
        results[case].wall += elapsed;
    }
    Ok(ScenarioResult {
        scenario: scenario.clone(),
        cases: results,
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CaseSpec, SweepAxis};

    fn tiny_scenario() -> Scenario {
        let mut sc = Scenario::new("tiny", MarketSpec::new(30, 10));
        sc.base.set("sample", "50").expect("valid");
        sc.run.horizon_secs = 400;
        sc.run.seed = 7;
        sc.run.replications = 3;
        sc.run.snapshots = vec![200, 400];
        sc.run.metrics = vec![
            Metric::GINI_SERIES,
            Metric::FINAL_BALANCES,
            Metric::SPENDING_RATES,
            Metric::SNAPSHOTS,
        ];
        sc.sweep = vec![SweepAxis::new("credits", [5u64, 10])];
        sc
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let out = parallel_map(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        let serial = parallel_map(5, 1, |i| i);
        assert_eq!(serial, vec![0, 1, 2, 3, 4]);
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let sc = tiny_scenario();
        let serial = run_scenario(&sc, &RunnerOptions::with_threads(1)).expect("runs");
        let parallel = run_scenario(&sc, &RunnerOptions::with_threads(4)).expect("runs");
        assert_eq!(serial.cases.len(), parallel.cases.len());
        for (a, b) in serial.cases.iter().zip(&parallel.cases) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.reps, b.reps, "case {} diverged", a.label);
        }
        assert_eq!(serial.to_csv(), parallel.to_csv());
    }

    #[test]
    fn replication_zero_reproduces_direct_run() {
        use scrip_core::des::SimTime;
        use scrip_core::market::run_market;

        let mut sc = Scenario::new("direct", MarketSpec::new(30, 10));
        sc.run.horizon_secs = 400;
        sc.run.seed = 99;
        let result = run_scenario(&sc, &RunnerOptions::with_threads(2)).expect("runs");
        let direct =
            run_market(sc.base.build().expect("valid"), 99, SimTime::from_secs(400)).expect("runs");
        assert_eq!(
            result.cases[0].reps[0].final_balances(),
            direct.balances_sorted()
        );
        assert_eq!(result.cases[0].reps[0].purchases(), direct.purchases());
    }

    #[test]
    fn replications_use_distinct_seeds() {
        let sc = tiny_scenario();
        let result = run_scenario(&sc, &RunnerOptions::default()).expect("runs");
        let seeds: Vec<u64> = result.cases[0].reps.iter().map(|r| r.seed).collect();
        assert_eq!(seeds[0], sc.run.seed, "replication 0 keeps the root seed");
        assert_eq!(seeds.len(), 3);
        assert!(seeds[1] != seeds[0] && seeds[2] != seeds[1] && seeds[2] != seeds[0]);
        // Common random numbers: both cases see the same seeds.
        let other: Vec<u64> = result.cases[1].reps.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, other);
    }

    #[test]
    fn aggregates_cover_all_requested_metrics() {
        let sc = tiny_scenario();
        let result = run_scenario(&sc, &RunnerOptions::default()).expect("runs");
        let case = &result.cases[0];
        assert!(!case.gini_aggregate().is_empty());
        assert!(!case.balances_aggregate().is_empty());
        assert!(!case.rates_aggregate().is_empty());
        assert!(!case.snapshot_aggregate(200).is_empty());
        assert!(case.snapshot_aggregate(12345).is_empty(), "unknown time");
        let plateau = case.plateau().expect("gini recorded");
        assert!(plateau.n == 3 && (0.0..=1.0).contains(&plateau.mean));
        let csv = result.to_csv();
        for needle in ["gini,", "final-balance,", "spending-rate,", "snapshot200,"] {
            assert!(csv.contains(needle), "CSV missing {needle}");
        }
        assert_eq!(result.summary_lines().len(), 2);
    }

    #[test]
    fn new_registry_metrics_reach_the_csv() {
        let mut sc = Scenario::new("extras", MarketSpec::new(30, 10));
        sc.base.set("sample", "50").expect("valid");
        sc.run.horizon_secs = 300;
        sc.run.metrics = vec![
            Metric::THROUGHPUT_SERIES,
            Metric::POPULATION_SERIES,
            Metric::LORENZ,
        ];
        let result = run_scenario(&sc, &RunnerOptions::with_threads(2)).expect("runs");
        let case = &result.cases[0];
        assert_eq!(
            case.series_aggregate(ids::THROUGHPUT_SERIES).len(),
            6,
            "one throughput point per sampling boundary"
        );
        assert_eq!(
            case.series_aggregate(ids::POPULATION_SERIES).len(),
            7,
            "bootstrap point + 6 boundaries"
        );
        assert_eq!(case.series_aggregate(ids::LORENZ).len(), 101);
        let csv = result.to_csv();
        for needle in ["throughput,base,", "population,base,", "lorenz,base,"] {
            assert!(csv.contains(needle), "CSV missing {needle}:\n{csv}");
        }
        // The always-on metrics are still measured even when unselected.
        assert!(!case.single().final_balances().is_empty());
        assert!(!csv.contains("final-balance,"), "unselected metric leaked");
    }

    #[test]
    fn streaming_scenarios_run_and_record_stalls() {
        let mut sc = Scenario::new("chunks", MarketSpec::new(30, 50));
        sc.base.set("streaming", "paced:1").expect("valid");
        sc.base.set("sample", "25").expect("valid");
        sc.run.horizon_secs = 150;
        sc.run.snapshots = vec![75, 150];
        sc.run.metrics = vec![Metric::GINI_SERIES, Metric::STALL_SERIES, Metric::SNAPSHOTS];
        let result = run_scenario(&sc, &RunnerOptions::with_threads(2)).expect("runs");
        let case = &result.cases[0];
        assert!(!case.single().stalls().is_empty(), "stall series recorded");
        assert!(!case.single().gini().is_empty(), "gini series recorded");
        assert!(case.single().purchases() > 0, "chunk trades settled");
        assert!(!case.stall_aggregate().is_empty());
        assert!(!case.snapshot_aggregate(75).is_empty());
        let csv = result.to_csv();
        assert!(
            csv.contains("stall,base,"),
            "CSV missing stall rows:\n{csv}"
        );
        assert!(
            result.summary_lines()[0].contains("stall="),
            "summary notes stall"
        );
        // Queue-level cases leave the stall series empty.
        let queue = run_scenario(&tiny_scenario(), &RunnerOptions::default()).expect("runs");
        assert!(queue.cases[0].single().stalls().is_empty());
        assert!(!queue.summary_lines()[0].contains("stall="));
    }

    #[test]
    fn invalid_scenarios_are_refused() {
        let mut sc = tiny_scenario();
        sc.run.horizon_secs = 0;
        assert!(run_scenario(&sc, &RunnerOptions::default()).is_err());

        let mut sc = tiny_scenario();
        sc.cases = vec![CaseSpec::new("broke").with("peers", "1")];
        assert!(run_scenario(&sc, &RunnerOptions::default()).is_err());
    }
}

//! Regenerates the `fig08_gini_evolution_asymmetric` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = match scrip_bench::figures::fig08_gini_evolution_asymmetric(scale) {
        Ok(figure) => figure,
        Err(e) => {
            eprintln!("fig08_gini_evolution_asymmetric: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", figure.to_csv());
}

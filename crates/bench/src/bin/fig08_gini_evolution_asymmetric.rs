//! Regenerates the `fig08_gini_evolution_asymmetric` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = scrip_bench::figures::fig08_gini_evolution_asymmetric(scale);
    print!("{}", figure.to_csv());
}

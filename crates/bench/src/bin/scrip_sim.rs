//! `scrip-sim` — the scenario-driven experiment runner.
//!
//! One CLI for the whole evaluation: reproduce any built-in figure or
//! ablation from its declarative scenario, run brand-new workloads from
//! scenario files (grammar in `docs/SCENARIOS.md`), or regenerate the
//! entire evaluation in parallel.
//!
//! ```text
//! scrip-sim list                               # built-in experiments & scenarios
//! scrip-sim metrics                            # every registered metric probe
//! scrip-sim all [--csv] [--threads N]          # every figure + ablation, in parallel
//! scrip-sim run fig07 [--csv]                  # one built-in experiment
//! scrip-sim run examples/scenarios/flash_crowd.scn --csv
//! scrip-sim check examples/scenarios/*.scn     # parse + validate + expand
//! scrip-sim export fig07                       # print a built-in as a scenario file
//! scrip-sim bench --json                       # market throughput -> BENCH_market.json
//! ```
//!
//! `SCRIP_QUICK=1` selects the reduced scale for built-in experiments;
//! scenario files always run at their stated scale. `SCRIP_THREADS` (or
//! `--threads N`) caps the batch runner's workers; results are
//! byte-identical for every thread count.

use std::path::Path;
use std::process::ExitCode;

use scrip_bench::figures;
use scrip_bench::scale::RunScale;
use scrip_bench::scenario::{
    run_scenario, session_probes, CaseResult, Metric, ReplicationRun, ResolvedCase, RunnerOptions,
    Scenario, ScenarioResult,
};
use scrip_bench::serve::{Client, ServeOptions, Server};
use scrip_core::des::{SimTime, TraceFrame, TraceReader, TraceTailer};
use scrip_core::market::MarketEvent;
use scrip_core::obs::{ids, RunRecord, Session};

const USAGE: &str = "\
scrip-sim — scenario-driven experiment runner for the scrip reproduction

USAGE:
    scrip-sim list
    scrip-sim metrics
    scrip-sim all [--csv] [--threads N] [--shards K]
    scrip-sim run <NAME|FILE.scn>... [--csv] [--threads N] [--shards K]
    scrip-sim run <FILE.scn> [--checkpoint-every SECS] [--checkpoint-file PATH] [--resume PATH]
    scrip-sim check <FILE.scn>...
    scrip-sim export <NAME>
    scrip-sim bench [--json] [--out FILE] [--against FILE]
    scrip-sim record <FILE.scn> [--trace OUT.trc] [--shards K]
    scrip-sim replay <FILE.scn> [--trace IN.trc] [--shards K]
    scrip-sim trace-diff <A.trc> <B.trc>
    scrip-sim bisect <FILE.scn> --trace IN.trc
    scrip-sim tail <FILE.trc> [--follow]
    scrip-sim serve [--addr HOST:PORT] [--state-dir DIR] [--workers N]
    scrip-sim submit <FILE.scn> [--addr A] [--name TOKEN] [--timeout-secs N]
                     [--checkpoint-every SECS] [--wait]
    scrip-sim status <JOB> [--addr A]
    scrip-sim result <JOB> [--addr A]
    scrip-sim cancel <JOB> [--addr A]
    scrip-sim watch <JOB> [--addr A]
    scrip-sim stats [--addr A]
    scrip-sim drain [--addr A]

NAME is a built-in experiment (see `scrip-sim list`); FILE.scn is a
scenario file (grammar: docs/SCENARIOS.md); `metrics` lists every
registered metric probe selectable via `metrics = [...]` in [run].
SCRIP_QUICK=1 shrinks the built-in experiments and the bench suite;
SCRIP_THREADS or --threads caps worker threads (0 = one per core).
--shards K partitions every queue-level run into K execution shards
(deterministic sharded kernel; output is byte-identical for every K).
`bench` measures market events/sec single-threaded, `--json` writes
BENCH_market.json (or --out FILE), and `--against BASELINE.json` exits
non-zero when any matching case regresses more than 30%.
--checkpoint-every SECS writes a crash-safe snapshot of a single-case,
single-replication, queue-level scenario run every SECS simulated
seconds (to FILE.scn.ckpt, or --checkpoint-file PATH); --resume PATH
restarts such a run from a snapshot. A resumed run's output is
byte-identical to the uninterrupted run, fault plans included.
`record` runs a single-case, single-replication scenario and logs every
applied event plus per-boundary state digests to a SCRIPTRC trace
(default FILE.scn.trc); the trace is byte-identical for every --shards
K. `replay` re-executes the scenario against a trace, fail-closed: it
exits non-zero naming the first divergent (time, seq) on any mismatch,
and emits the normal run output when the replay verifies. `trace-diff`
compares two traces frame by frame and reports the first divergence
with decoded payloads (exit 1) or counts matching frames (exit 0).
`bisect` binary-searches a trace's digest frames with checkpoint hops
(requires shards = 1) and pins where a live re-execution departs from
the recording, down to the exact (time, seq).
`tail` prints a SCRIPTRC file's frames as they land; --follow keeps
polling until the writer closes the file with its end frame.
`serve` starts the crash-safe job daemon (protocol and lifecycle:
docs/ARCHITECTURE.md §Job service): jobs and their transitions persist
in --state-dir, workers checkpoint qualifying runs periodically, and a
restarted daemon resumes unfinished jobs from their latest snapshot —
the served CSV is byte-identical to `scrip-sim run`, even across a
kill. --addr with port 0 picks an ephemeral port (read back from
DIR/addr). The client verbs talk to a running daemon at --addr
(default 127.0.0.1:7177): `submit` sends a scenario file (--wait blocks
until the job finishes and fails on a failed job), `status`/`result`/
`cancel` manage one job, `watch` streams its live per-boundary samples
to stdout, `stats` prints daemon counters, `drain` finishes the queue
and shuts the daemon down.";

struct Options {
    csv: bool,
    json: bool,
    threads: usize,
    shards: Option<usize>,
    out: Option<String>,
    against: Option<String>,
    checkpoint_every: Option<u64>,
    checkpoint_file: Option<String>,
    resume: Option<String>,
    trace: Option<String>,
    addr: String,
    state_dir: String,
    workers: usize,
    name: Option<String>,
    timeout_secs: Option<u64>,
    wait: bool,
    follow: bool,
    targets: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        csv: false,
        json: false,
        threads: RunnerOptions::from_env().threads,
        shards: None,
        out: None,
        against: None,
        checkpoint_every: None,
        checkpoint_file: None,
        resume: None,
        trace: None,
        addr: "127.0.0.1:7177".to_string(),
        state_dir: "scrip-serve-state".to_string(),
        workers: 2,
        name: None,
        timeout_secs: None,
        wait: false,
        follow: false,
        targets: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--csv" => options.csv = true,
            "--json" => options.json = true,
            "--serial" => options.threads = 1,
            "--threads" => {
                options.threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads expects a number")?;
            }
            "--shards" => {
                let shards: usize = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--shards expects a number")?;
                if shards == 0 {
                    return Err("--shards expects a number >= 1".into());
                }
                options.shards = Some(shards);
            }
            "--out" => {
                options.out = Some(iter.next().ok_or("--out expects a path")?.clone());
            }
            "--against" => {
                options.against = Some(iter.next().ok_or("--against expects a path")?.clone());
            }
            "--checkpoint-every" => {
                let secs: u64 = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--checkpoint-every expects a number of seconds")?;
                if secs == 0 {
                    return Err("--checkpoint-every expects a positive number of seconds".into());
                }
                options.checkpoint_every = Some(secs);
            }
            "--checkpoint-file" => {
                options.checkpoint_file = Some(
                    iter.next()
                        .ok_or("--checkpoint-file expects a path")?
                        .clone(),
                );
            }
            "--resume" => {
                options.resume = Some(iter.next().ok_or("--resume expects a path")?.clone());
            }
            "--trace" => {
                options.trace = Some(iter.next().ok_or("--trace expects a path")?.clone());
            }
            "--addr" => {
                options.addr = iter.next().ok_or("--addr expects host:port")?.clone();
            }
            "--state-dir" => {
                options.state_dir = iter.next().ok_or("--state-dir expects a path")?.clone();
            }
            "--workers" => {
                let workers: usize = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--workers expects a number")?;
                if workers == 0 {
                    return Err("--workers expects a number >= 1".into());
                }
                options.workers = workers;
            }
            "--name" => {
                options.name = Some(iter.next().ok_or("--name expects a token")?.clone());
            }
            "--timeout-secs" => {
                options.timeout_secs = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--timeout-secs expects a number of seconds")?,
                );
            }
            "--wait" => options.wait = true,
            "--follow" => options.follow = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            target => options.targets.push(target.to_string()),
        }
    }
    Ok(options)
}

fn run_builtin(name: &str, options: &Options) -> Result<(), String> {
    let scale = RunScale::from_env();
    let (_, run) = figures::experiments()
        .into_iter()
        .find(|&(n, _)| n == name)
        .ok_or_else(|| format!("unknown experiment {name:?} (see `scrip-sim list`)"))?;
    // Figure modules read the ambient thread cap; route --threads to
    // their internal batch runners.
    let previous = scrip_bench::scenario::set_thread_override(Some(options.threads));
    let start = std::time::Instant::now();
    let fig = run(scale);
    scrip_bench::scenario::set_thread_override(previous);
    let fig = fig.map_err(|e| format!("{name}: {e}"))?;
    eprintln!("{name}: {:.1?}", start.elapsed());
    figures::print_figure(&fig, options.csv);
    Ok(())
}

fn run_file(path: &str, options: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let scenario = Scenario::parse_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let result = run_scenario(&scenario, &RunnerOptions::with_threads(options.threads))
        .map_err(|e| format!("{path}: {e}"))?;
    emit_result(&result, options);
    Ok(())
}

/// Prints a finished scenario in the `run` output format. Stdout is
/// deterministic (byte-identical for any thread count, and for
/// checkpointed vs. straight-through execution); timing goes to stderr.
fn emit_result(result: &ScenarioResult, options: &Options) {
    let scenario = &result.scenario;
    eprintln!("{}: {:.1?}", scenario.name, result.wall);
    if scenario.title.is_empty() {
        println!("== {}", scenario.name);
    } else {
        println!("== {} — {}", scenario.name, scenario.title);
    }
    println!(
        "   horizon {}s, seed {}, {} replication(s), {} case(s)",
        scenario.run.horizon_secs,
        scenario.run.seed,
        scenario.run.replications,
        result.cases.len()
    );
    for line in result.summary_lines() {
        println!("   {line}");
    }
    if options.csv {
        print!("{}", result.to_csv());
    }
}

/// Writes `bytes` to `path` via a temp file + rename, so an interrupted
/// write can never leave a truncated checkpoint behind.
fn write_atomic(path: &str, bytes: &[u8]) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, bytes).map_err(|e| format!("{tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{path}: {e}"))
}

/// Runs one scenario file through a directly-driven [`Session`],
/// writing periodic on-disk checkpoints and/or resuming from a prior
/// snapshot. The probe set and output format match the batch runner
/// exactly, and chunked `run_until` calls do not change probe dispatch,
/// so summary and CSV output are byte-identical to a plain
/// `scrip-sim run` of the same file — resumed or not.
fn run_file_checkpointed(path: &str, options: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let scenario = Scenario::parse_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let cases = scenario.expand().map_err(|e| format!("{path}: {e}"))?;
    let [case] = cases.as_slice() else {
        return Err(format!(
            "{path}: checkpointed runs support exactly one case (this scenario expands to {})",
            cases.len()
        ));
    };
    if scenario.run.replications != 1 {
        return Err(format!(
            "{path}: checkpointed runs support exactly one replication (got {})",
            scenario.run.replications
        ));
    }
    if matches!(options.shards, Some(shards) if shards != 1) {
        return Err(
            "checkpointed runs require --shards 1 (the sharded kernel cannot snapshot)".into(),
        );
    }
    let config = case
        .spec
        .build()
        .map_err(|e| format!("{path}: case {:?}: {e}", case.label))?;
    if config.streaming.is_some() {
        return Err(format!(
            "{path}: streaming (chunk-level) scenarios cannot checkpoint"
        ));
    }
    if config.shards != 1 {
        return Err(format!(
            "{path}: sharded scenarios (shards = {}) cannot checkpoint; set shards = 1",
            config.shards
        ));
    }

    let seed = scenario.run.seed;
    let probes = session_probes(&scenario.run);
    let start = std::time::Instant::now();
    let mut session = match &options.resume {
        Some(snapshot) => {
            let bytes = std::fs::read(snapshot).map_err(|e| format!("{snapshot}: {e}"))?;
            Session::resume(&config, probes, &bytes).map_err(|e| format!("{snapshot}: {e}"))?
        }
        None => {
            let mut session =
                Session::from_config(&config, seed).map_err(|e| format!("{path}: {e}"))?;
            for probe in probes {
                session.attach(probe);
            }
            session
        }
    };

    // Checkpoints land at interior multiples of the interval; the final
    // state needs no snapshot because its output is already emitted.
    if let Some(step) = options.checkpoint_every {
        let checkpoint_path = options
            .checkpoint_file
            .clone()
            .or_else(|| options.resume.clone())
            .unwrap_or_else(|| format!("{path}.ckpt"));
        let mut t = step;
        while t < scenario.run.horizon_secs {
            let boundary = SimTime::from_secs(t);
            if boundary > session.now() {
                session.run_until(boundary);
                let bytes = session.checkpoint().map_err(|e| format!("{path}: {e}"))?;
                write_atomic(&checkpoint_path, &bytes)?;
            }
            t = match t.checked_add(step) {
                Some(next) => next,
                None => break,
            };
        }
    }
    session.run_until(SimTime::from_secs(scenario.run.horizon_secs));
    let wall = start.elapsed();

    let (record, _model) = session.finish();
    if record.get(ids::WEALTH_GINI).is_none() {
        return Err(format!(
            "{path}: seed {seed}: market has no peers at the horizon"
        ));
    }
    let result = ScenarioResult {
        scenario: scenario.clone(),
        cases: vec![CaseResult {
            label: case.label.clone(),
            spec: case.spec.clone(),
            reps: vec![ReplicationRun { seed, record }],
            wall,
        }],
        wall,
    };
    emit_result(&result, options);
    Ok(())
}

/// Loads a scenario file and requires it to expand to exactly one case
/// with one replication — the shape `record`/`replay`/`bisect` drive
/// through a directly-owned [`Session`].
fn load_single_case(path: &str, verb: &str) -> Result<(Scenario, ResolvedCase), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let scenario = Scenario::parse_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let cases = scenario.expand().map_err(|e| format!("{path}: {e}"))?;
    if cases.len() != 1 {
        return Err(format!(
            "{path}: {verb} supports exactly one case (this scenario expands to {})",
            cases.len()
        ));
    }
    if scenario.run.replications != 1 {
        return Err(format!(
            "{path}: {verb} supports exactly one replication (got {})",
            scenario.run.replications
        ));
    }
    let case = cases.into_iter().next().expect("length checked");
    Ok((scenario, case))
}

/// Formats a finished single-case session in the standard `run` output
/// shape (so record/replay output is comparable byte-for-byte with a
/// plain run and with each other).
fn emit_single_case(
    path: &str,
    scenario: &Scenario,
    case: &ResolvedCase,
    record: RunRecord,
    wall: std::time::Duration,
    options: &Options,
) -> Result<(), String> {
    let seed = scenario.run.seed;
    if record.get(ids::WEALTH_GINI).is_none() {
        return Err(format!(
            "{path}: seed {seed}: market has no peers at the horizon"
        ));
    }
    let result = ScenarioResult {
        scenario: scenario.clone(),
        cases: vec![CaseResult {
            label: case.label.clone(),
            spec: case.spec.clone(),
            reps: vec![ReplicationRun { seed, record }],
            wall,
        }],
        wall,
    };
    emit_result(&result, options);
    Ok(())
}

/// The trace path for a scenario file: `--trace PATH` or `FILE.scn.trc`.
fn trace_path_for(path: &str, options: &Options) -> String {
    options
        .trace
        .clone()
        .unwrap_or_else(|| format!("{path}.trc"))
}

/// `scrip-sim record FILE.scn [--trace OUT.trc] [--shards K]`: run the
/// scenario once, logging every applied event and per-boundary state
/// digest to a SCRIPTRC trace. The trace bytes are identical for every
/// `--shards K`.
fn cmd_record(options: &Options) -> Result<(), String> {
    let [target] = options.targets.as_slice() else {
        return Err("record: expected exactly one scenario file".into());
    };
    let (scenario, case) = load_single_case(target, "record")?;
    let mut config = case
        .spec
        .build()
        .map_err(|e| format!("{target}: case {:?}: {e}", case.label))?;
    if let Some(shards) = options.shards {
        config.shards = shards;
    }
    let trace_path = trace_path_for(target, options);
    let start = std::time::Instant::now();
    let mut session =
        Session::from_config(&config, scenario.run.seed).map_err(|e| format!("{target}: {e}"))?;
    session
        .record_to(Path::new(&trace_path))
        .map_err(|e| format!("{trace_path}: {e}"))?;
    for probe in session_probes(&scenario.run) {
        session.attach(probe);
    }
    session.run_until(SimTime::from_secs(scenario.run.horizon_secs));
    session
        .finish_trace()
        .map_err(|e| format!("{trace_path}: {e}"))?;
    let wall = start.elapsed();
    eprintln!("recorded {trace_path}");
    emit_single_case(target, &scenario, &case, session.finish().0, wall, options)
}

/// `scrip-sim replay FILE.scn [--trace IN.trc] [--shards K]`:
/// re-execute the scenario against a recorded trace, fail-closed. On
/// success the normal run output is emitted (byte-identical to the
/// recording run's); on the first mismatching event or digest the run
/// freezes and the divergent `(time, seq)` is reported with exit 1.
fn cmd_replay(options: &Options) -> Result<(), String> {
    let [target] = options.targets.as_slice() else {
        return Err("replay: expected exactly one scenario file".into());
    };
    let (scenario, case) = load_single_case(target, "replay")?;
    let mut config = case
        .spec
        .build()
        .map_err(|e| format!("{target}: case {:?}: {e}", case.label))?;
    if let Some(shards) = options.shards {
        config.shards = shards;
    }
    let trace_path = trace_path_for(target, options);
    let start = std::time::Instant::now();
    let mut session =
        Session::from_config(&config, scenario.run.seed).map_err(|e| format!("{target}: {e}"))?;
    session
        .replay_from(Path::new(&trace_path))
        .map_err(|e| format!("{trace_path}: {e}"))?;
    for probe in session_probes(&scenario.run) {
        session.attach(probe);
    }
    session.run_until(SimTime::from_secs(scenario.run.horizon_secs));
    session
        .finish_trace()
        .map_err(|e| format!("{trace_path}: {e}"))?;
    let wall = start.elapsed();
    eprintln!("replay verified against {trace_path}");
    emit_single_case(target, &scenario, &case, session.finish().0, wall, options)
}

/// Renders one decoded frame for `trace-diff` output.
fn describe_frame(frame: &Option<TraceFrame>) -> String {
    match frame {
        None => "end of trace".into(),
        Some(TraceFrame::Event { time, seq, payload }) => {
            let decoded = match MarketEvent::from_trace_payload(payload) {
                Ok(event) => format!("{event:?}"),
                Err(_) => format!("<{} undecodable payload bytes>", payload.len()),
            };
            format!("event {decoded} at (t={}µs, seq={seq})", time.as_micros())
        }
        Some(TraceFrame::Digest {
            time,
            events_processed,
            digest,
        }) => format!(
            "digest {digest:#018x} after {events_processed} events at t={}µs",
            time.as_micros()
        ),
        Some(TraceFrame::End {
            time,
            events_processed,
        }) => format!(
            "end after {events_processed} events at t={}µs",
            time.as_micros()
        ),
    }
}

/// `scrip-sim trace-diff A.trc B.trc`: lockstep frame comparison. Exit
/// 0 when the traces are identical, 1 with the first divergent frame
/// pair (decoded) otherwise.
fn cmd_trace_diff(options: &Options) -> Result<(), String> {
    let [path_a, path_b] = options.targets.as_slice() else {
        return Err("trace-diff: expected exactly two trace files".into());
    };
    let mut a = TraceReader::from_path(Path::new(path_a)).map_err(|e| format!("{path_a}: {e}"))?;
    let mut b = TraceReader::from_path(Path::new(path_b)).map_err(|e| format!("{path_b}: {e}"))?;
    if a.header() != b.header() {
        let (ha, hb) = (*a.header(), *b.header());
        println!(
            "headers differ: fingerprint {:#018x} seed {} vs fingerprint {:#018x} seed {}",
            ha.fingerprint, ha.seed, hb.fingerprint, hb.seed
        );
        return Err("traces diverge (headers)".into());
    }
    let ca = a.register_consumer();
    let cb = b.register_consumer();
    let (mut events, mut digests) = (0u64, 0u64);
    loop {
        let fa = a.next_frame(ca).map_err(|e| format!("{path_a}: {e}"))?;
        let fb = b.next_frame(cb).map_err(|e| format!("{path_b}: {e}"))?;
        if fa != fb {
            let at = match (&fa, &fb) {
                (Some(TraceFrame::Event { time, seq, .. }), _)
                | (_, Some(TraceFrame::Event { time, seq, .. })) => {
                    format!("(t={}µs, seq={seq})", time.as_micros())
                }
                (Some(frame), _) | (_, Some(frame)) => {
                    format!("t={}µs", frame.time().as_micros())
                }
                (None, None) => unreachable!("equal frames compared unequal"),
            };
            println!("first divergence at {at}:");
            println!("  {path_a}: {}", describe_frame(&fa));
            println!("  {path_b}: {}", describe_frame(&fb));
            return Err("traces diverge".into());
        }
        match fa {
            None => break,
            Some(TraceFrame::Event { .. }) => events += 1,
            Some(TraceFrame::Digest { .. }) => digests += 1,
            Some(TraceFrame::End { .. }) => {}
        }
    }
    println!("traces identical: {events} event frame(s), {digests} digest frame(s)");
    Ok(())
}

/// `scrip-sim bisect FILE.scn --trace IN.trc`: binary-search the
/// trace's digest frames against a live re-execution (checkpoint hops,
/// shards = 1 only), then replay the bracketed window event-by-event to
/// pin the exact divergent `(time, seq)`.
fn cmd_bisect(options: &Options) -> Result<(), String> {
    let [target] = options.targets.as_slice() else {
        return Err("bisect: expected exactly one scenario file".into());
    };
    if matches!(options.shards, Some(shards) if shards != 1) {
        return Err("bisect requires --shards 1 (the search hops via checkpoints)".into());
    }
    let Some(trace_path) = options.trace.clone() else {
        return Err("bisect: --trace IN.trc is required".into());
    };
    let (scenario, case) = load_single_case(target, "bisect")?;
    let config = case
        .spec
        .build()
        .map_err(|e| format!("{target}: case {:?}: {e}", case.label))?;
    let report = scrip_bench::bisect::bisect_trace(
        &config,
        scenario.run.seed,
        SimTime::from_secs(scenario.run.horizon_secs),
        Path::new(&trace_path),
    )
    .map_err(|e| format!("{target}: {e}"))?;
    let (lo, hi) = report.window;
    eprintln!(
        "bisect: {} digest probe(s), window ({}µs, {}µs]",
        report.probes,
        lo.as_micros(),
        hi.as_micros()
    );
    match report.divergence {
        Some(divergence) => {
            println!("{divergence}");
            Ok(())
        }
        None => {
            println!("no divergence: live run matches the recorded trace");
            Ok(())
        }
    }
}

/// Runs `body` with `--shards` applied to every queue-level market run,
/// restoring the previous override afterwards. Output stays byte-identical
/// for every shard count; only the execution strategy changes.
fn with_shard_override(
    shards: Option<usize>,
    body: impl FnOnce() -> Result<(), String>,
) -> Result<(), String> {
    let previous = scrip_bench::scenario::set_shard_override(shards);
    let outcome = body();
    scrip_bench::scenario::set_shard_override(previous);
    outcome
}

fn cmd_run(options: &Options) -> Result<(), String> {
    if options.targets.is_empty() {
        return Err("run: no experiment or scenario file given".into());
    }
    if options.checkpoint_every.is_some()
        || options.checkpoint_file.is_some()
        || options.resume.is_some()
    {
        let [target] = options.targets.as_slice() else {
            return Err("run: checkpoint/resume flags apply to exactly one scenario file".into());
        };
        if figures::experiments().iter().any(|&(n, _)| n == target) {
            return Err(format!(
                "run: built-in experiment {target:?} cannot checkpoint; \
                 export it first (`scrip-sim export {target}`)"
            ));
        }
        return run_file_checkpointed(target, options);
    }
    with_shard_override(options.shards, || {
        let builtin: Vec<&str> = figures::experiments().iter().map(|&(n, _)| n).collect();
        for target in &options.targets {
            if builtin.contains(&target.as_str()) {
                run_builtin(target, options)?;
            } else {
                run_file(target, options)?;
            }
        }
        Ok(())
    })
}

fn cmd_all(options: &Options) -> Result<(), String> {
    if let [stray, ..] = options.targets.as_slice() {
        return Err(format!(
            "all takes no experiment names (got {stray:?}); did you mean `scrip-sim run {stray}`?"
        ));
    }
    let scale = RunScale::from_env();
    eprintln!("running all experiments at scale {scale:?}");
    with_shard_override(options.shards, || {
        figures::run_all_experiments(scale, options.threads)
            .map_err(|e| e.to_string())?
            .print(options.csv);
        Ok(())
    })
}

fn cmd_list(options: &Options) -> Result<(), String> {
    if !options.targets.is_empty() {
        return Err("list takes no arguments".into());
    }
    print_list();
    Ok(())
}

fn print_list() {
    let scenario_names: Vec<&str> = figures::scenarios().iter().map(|&(n, _)| n).collect();
    println!("built-in experiments (scrip-sim run <NAME>):");
    for (name, _) in figures::experiments() {
        let kind = if scenario_names.contains(&name) {
            "scenario-driven (scrip-sim export works)"
        } else {
            "analytic"
        };
        println!("  {name:<10} {kind}");
    }
}

fn cmd_metrics(options: &Options) -> Result<(), String> {
    if !options.targets.is_empty() {
        return Err("metrics takes no arguments".into());
    }
    println!("registered metrics (scenario files: metrics = [\"<name>\", ...] under [run]):");
    for metric in Metric::registry() {
        let tag = if metric.always_on() {
            "always measured"
        } else {
            "opt-in"
        };
        println!("  {:<18} {:<16} {}", metric.name(), tag, metric.doc());
    }
    Ok(())
}

fn cmd_check(options: &Options) -> Result<(), String> {
    if options.targets.is_empty() {
        return Err("check: no scenario file given".into());
    }
    for path in &options.targets {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let scenario = Scenario::parse_str(&text).map_err(|e| format!("{path}: {e}"))?;
        scenario.validate().map_err(|e| format!("{path}: {e}"))?;
        let cases = scenario.expand().map_err(|e| format!("{path}: {e}"))?;
        let jobs = cases.len() * scenario.run.replications;
        println!(
            "{path}: ok — scenario {:?}, {} case(s) × {} replication(s) = {jobs} job(s)",
            scenario.name,
            cases.len(),
            scenario.run.replications
        );
        for case in cases {
            println!("  case {}", case.label);
        }
    }
    Ok(())
}

fn cmd_bench(options: &Options) -> Result<(), String> {
    if let [stray, ..] = options.targets.as_slice() {
        return Err(format!(
            "bench takes no positional arguments (got {stray:?})"
        ));
    }
    let scale = RunScale::from_env();
    eprintln!("running market bench at scale {scale:?} (single-threaded)");
    let report = scrip_bench::perf::run_bench(scale);
    // --out implies writing the file even without --json.
    if options.json || options.out.is_some() {
        let path = options.out.as_deref().unwrap_or("BENCH_market.json");
        std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    } else {
        print!("{}", report.to_json());
    }
    if let Some(baseline_path) = &options.against {
        let text =
            std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
        let baseline = scrip_bench::perf::BenchReport::from_json(&text)
            .map_err(|e| format!("{baseline_path}: {e}"))?;
        let failures = scrip_bench::perf::compare_against(&report, &baseline, 0.30);
        if !failures.is_empty() {
            return Err(format!(
                "throughput regression vs {baseline_path}:\n  {}",
                failures.join("\n  ")
            ));
        }
        eprintln!("no case regressed more than 30% vs {baseline_path}");
    }
    let record_failures = scrip_bench::perf::record_overhead_failures(&report);
    if !record_failures.is_empty() {
        return Err(format!(
            "trace-recording overhead gate failed:\n  {}",
            record_failures.join("\n  ")
        ));
    }
    eprintln!("trace recording stayed within its churn-throughput overhead floor");
    let budget = scrip_bench::perf::rss_budget_bytes(scale);
    let rss_failures = scrip_bench::perf::check_rss_budget(&report, budget);
    if !rss_failures.is_empty() {
        return Err(format!(
            "peak-RSS budget exceeded:\n  {}",
            rss_failures.join("\n  ")
        ));
    }
    eprintln!(
        "peak RSS within the {} MiB budget for scale {scale:?}",
        budget >> 20
    );
    Ok(())
}

fn cmd_export(options: &Options) -> Result<(), String> {
    let [name] = options.targets.as_slice() else {
        return Err("export: expected exactly one built-in scenario name".into());
    };
    let scale = RunScale::from_env();
    let (_, emit) = figures::scenarios()
        .into_iter()
        .find(|(n, _)| n == name)
        .ok_or_else(|| {
            format!("no scenario behind {name:?} (analytic experiments cannot be exported)")
        })?;
    print!("{}", emit(scale).to_file_string());
    Ok(())
}

/// Renders one frame for `tail` output: market-event payloads decode to
/// their debug form, text payloads (e.g. daemon sample logs) print
/// verbatim, anything else by size.
fn describe_tail_frame(frame: &TraceFrame) -> String {
    match frame {
        TraceFrame::Event { time, seq, payload } => {
            let body = match MarketEvent::from_trace_payload(payload) {
                Ok(event) => format!("{event:?}"),
                Err(_) => match std::str::from_utf8(payload) {
                    Ok(text) => text.to_string(),
                    Err(_) => format!("<{} payload bytes>", payload.len()),
                },
            };
            format!("event t={}µs seq={seq} {body}", time.as_micros())
        }
        TraceFrame::Digest {
            time,
            events_processed,
            digest,
        } => format!(
            "digest t={}µs events={events_processed} {digest:#018x}",
            time.as_micros()
        ),
        TraceFrame::End {
            time,
            events_processed,
        } => format!("end t={}µs events={events_processed}", time.as_micros()),
    }
}

/// `scrip-sim tail FILE.trc [--follow]`: print a SCRIPTRC file's frames
/// as they land. Without --follow, prints what is currently decodable
/// and exits; with it, keeps polling (surviving a torn frame at the
/// tail) until the writer closes the file with its end frame.
fn cmd_tail(options: &Options) -> Result<(), String> {
    let [path] = options.targets.as_slice() else {
        return Err("tail: expected exactly one trace file".into());
    };
    let mut tailer = TraceTailer::new(Path::new(path));
    let mut announced = false;
    loop {
        let frames = tailer.poll().map_err(|e| format!("{path}: {e}"))?;
        if !announced {
            if let Some(header) = tailer.header() {
                eprintln!(
                    "{path}: fingerprint {:#018x}, seed {}",
                    header.fingerprint, header.seed
                );
                announced = true;
            }
        }
        let idle = frames.is_empty();
        for frame in &frames {
            println!("{}", describe_tail_frame(frame));
        }
        if tailer.finished() {
            return Ok(());
        }
        if options.follow {
            std::thread::sleep(std::time::Duration::from_millis(25));
        } else if idle {
            return Ok(());
        }
    }
}

/// `scrip-sim serve`: run the job daemon until a client drains it.
fn cmd_serve(options: &Options) -> Result<(), String> {
    if let [stray, ..] = options.targets.as_slice() {
        return Err(format!(
            "serve takes no positional arguments (got {stray:?})"
        ));
    }
    let mut serve_options = ServeOptions::new(options.addr.clone(), &options.state_dir);
    serve_options.workers = options.workers;
    let server = Server::start(&serve_options)?;
    server.join();
    eprintln!("serve: drained, exiting");
    Ok(())
}

/// `scrip-sim submit FILE.scn`: send a scenario to the daemon; prints
/// the job id. With --wait, blocks until the job is terminal and exits
/// non-zero unless it completed.
fn cmd_submit(options: &Options) -> Result<(), String> {
    let [path] = options.targets.as_slice() else {
        return Err("submit: expected exactly one scenario file".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut client = Client::connect(&options.addr)?;
    let job = client.submit(
        &text,
        options.name.as_deref(),
        options.timeout_secs,
        options.checkpoint_every,
    )?;
    println!("{job}");
    if options.wait {
        let state = client.wait_terminal(&job, 86_400)?;
        let detail = client.status(&job)?;
        eprintln!("{job}: {detail}");
        if state != "completed" {
            return Err(format!("job {job} {state}"));
        }
    }
    Ok(())
}

/// `scrip-sim status JOB`: print the job's state word (plus detail).
fn cmd_status(options: &Options) -> Result<(), String> {
    let [job] = options.targets.as_slice() else {
        return Err("status: expected exactly one job id".into());
    };
    println!("{}", Client::connect(&options.addr)?.status(job)?);
    Ok(())
}

/// `scrip-sim result JOB`: print a completed job's CSV to stdout.
fn cmd_result(options: &Options) -> Result<(), String> {
    let [job] = options.targets.as_slice() else {
        return Err("result: expected exactly one job id".into());
    };
    print!("{}", Client::connect(&options.addr)?.result_csv(job)?);
    Ok(())
}

/// `scrip-sim cancel JOB`: request cancellation.
fn cmd_cancel(options: &Options) -> Result<(), String> {
    let [job] = options.targets.as_slice() else {
        return Err("cancel: expected exactly one job id".into());
    };
    println!("{}", Client::connect(&options.addr)?.cancel(job)?);
    Ok(())
}

/// `scrip-sim watch JOB`: stream the job's live samples to stdout (one
/// `sample …` line per boundary) until the job ends; exits non-zero
/// when the job failed.
fn cmd_watch(options: &Options) -> Result<(), String> {
    let [job] = options.targets.as_slice() else {
        return Err("watch: expected exactly one job id".into());
    };
    let client = Client::connect(&options.addr)?;
    let state = client.subscribe(job, |payload| println!("sample {payload}"))?;
    eprintln!("{job}: {state}");
    if state == "failed" {
        return Err(format!("job {job} failed"));
    }
    Ok(())
}

/// `scrip-sim stats`: print the daemon's counters.
fn cmd_stats(options: &Options) -> Result<(), String> {
    if let [stray, ..] = options.targets.as_slice() {
        return Err(format!(
            "stats takes no positional arguments (got {stray:?})"
        ));
    }
    println!("{}", Client::connect(&options.addr)?.stats()?);
    Ok(())
}

/// `scrip-sim drain`: finish the queue and shut the daemon down.
fn cmd_drain(options: &Options) -> Result<(), String> {
    if let [stray, ..] = options.targets.as_slice() {
        return Err(format!(
            "drain takes no positional arguments (got {stray:?})"
        ));
    }
    Client::connect(&options.addr)?.drain()?;
    eprintln!("drained {}", options.addr);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let options = match parse_options(rest) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("scrip-sim: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match command.as_str() {
        "list" => cmd_list(&options),
        "metrics" => cmd_metrics(&options),
        "all" => cmd_all(&options),
        "run" => cmd_run(&options),
        "check" => cmd_check(&options),
        "export" => cmd_export(&options),
        "bench" => cmd_bench(&options),
        "record" => cmd_record(&options),
        "replay" => cmd_replay(&options),
        "trace-diff" => cmd_trace_diff(&options),
        "bisect" => cmd_bisect(&options),
        "tail" => cmd_tail(&options),
        "serve" => cmd_serve(&options),
        "submit" => cmd_submit(&options),
        "status" => cmd_status(&options),
        "result" => cmd_result(&options),
        "cancel" => cmd_cancel(&options),
        "watch" => cmd_watch(&options),
        "stats" => cmd_stats(&options),
        "drain" => cmd_drain(&options),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scrip-sim: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Regenerates the `fig06_convergence_late` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = match scrip_bench::figures::fig06_convergence_late(scale) {
        Ok(figure) => figure,
        Err(e) => {
            eprintln!("fig06_convergence_late: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", figure.to_csv());
}

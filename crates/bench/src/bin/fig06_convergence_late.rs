//! Regenerates the `fig06_convergence_late` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = scrip_bench::figures::fig06_convergence_late(scale);
    print!("{}", figure.to_csv());
}

//! Regenerates the `fig09_taxation` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = scrip_bench::figures::fig09_taxation(scale);
    print!("{}", figure.to_csv());
}

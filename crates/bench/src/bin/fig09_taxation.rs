//! Regenerates the `fig09_taxation` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = match scrip_bench::figures::fig09_taxation(scale) {
        Ok(figure) => figure,
        Err(e) => {
            eprintln!("fig09_taxation: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", figure.to_csv());
}

//! Regenerates every figure and ablation of the paper's evaluation in
//! one run, dispatching the scenarios across worker threads and printing
//! each figure's metadata and measured notes (the data recorded in
//! `EXPERIMENTS.md`) in canonical order. Pass `--csv` to also dump the
//! full series, `--threads N` to cap the workers (`--serial` is
//! shorthand for `--threads 1`).
//!
//! Set `SCRIP_QUICK=1` for a reduced-scale smoke run; `SCRIP_THREADS`
//! is the default worker cap when `--threads` is absent. The cap is
//! real: experiments fan out across the workers while each experiment's
//! internal batch runner stays serial. Stdout is byte-identical for
//! every thread count — all timing goes to stderr.

use scrip_bench::figures;
use scrip_bench::scale::RunScale;
use scrip_bench::scenario::RunnerOptions;

fn main() {
    let mut dump_csv = false;
    let mut threads = RunnerOptions::from_env().threads;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => dump_csv = true,
            "--serial" => threads = 1,
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads expects a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (expected --csv, --threads N, --serial)");
                std::process::exit(2);
            }
        }
    }

    let scale = RunScale::from_env();
    eprintln!(
        "running at scale {scale:?} (set SCRIP_QUICK=1 for quick runs, SCRIP_THREADS/--threads \
         to cap workers)"
    );
    match figures::run_all_experiments(scale, threads) {
        Ok(report) => report.print(dump_csv),
        Err(e) => {
            eprintln!("fig_all: {e}");
            std::process::exit(1);
        }
    }
}

//! Regenerates every figure and ablation of the paper's evaluation in
//! one run, printing each figure's metadata and measured notes (the
//! data recorded in `EXPERIMENTS.md`). Pass `--csv` to also dump the
//! full series.
//!
//! Set `SCRIP_QUICK=1` for a reduced-scale smoke run.

use scrip_bench::figures::{self, FigureResult};
use scrip_bench::scale::RunScale;

type Experiment = (&'static str, fn(RunScale) -> FigureResult);

fn main() {
    let dump_csv = std::env::args().any(|a| a == "--csv");
    let scale = RunScale::from_env();
    eprintln!("running at scale {scale:?} (set SCRIP_QUICK=1 for quick runs)");

    let experiments: Vec<Experiment> = vec![
        ("fig01", figures::fig01_spending_rates),
        ("fig02", figures::fig02_lorenz_pmf),
        ("fig03", figures::fig03_gini_vs_wealth),
        ("fig04", figures::fig04_efficiency),
        ("fig05", figures::fig05_convergence_early),
        ("fig06", figures::fig06_convergence_late),
        ("fig07", figures::fig07_gini_evolution_symmetric),
        ("fig08", figures::fig08_gini_evolution_asymmetric),
        ("fig09", figures::fig09_taxation),
        ("fig10", figures::fig10_dynamic_spending),
        ("fig11", figures::fig11_churn),
        ("ablation1", figures::ablation_approx_vs_exact),
        ("ablation2", figures::ablation_solvers),
        ("ablation3", figures::ablation_queue_vs_protocol),
    ];

    for (name, run) in experiments {
        let start = std::time::Instant::now();
        let fig = run(scale);
        let elapsed = start.elapsed();
        println!("== {} — {} ({:.1?})", fig.id, fig.title, elapsed);
        println!("   paper: {}", fig.paper_expectation);
        for note in &fig.notes {
            println!("   measured: {note}");
        }
        if dump_csv {
            print!("{}", fig.to_csv());
        }
        let _ = name;
    }
}

//! Regenerates the `ablation_approx_vs_exact` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = scrip_bench::figures::ablation_approx_vs_exact(scale);
    print!("{}", figure.to_csv());
}

//! Regenerates the `ablation_approx_vs_exact` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = match scrip_bench::figures::ablation_approx_vs_exact(scale) {
        Ok(figure) => figure,
        Err(e) => {
            eprintln!("ablation_approx_vs_exact: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", figure.to_csv());
}

//! Regenerates the `fig02_lorenz_pmf` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = scrip_bench::figures::fig02_lorenz_pmf(scale);
    print!("{}", figure.to_csv());
}

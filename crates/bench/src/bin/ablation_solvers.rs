//! Regenerates the `ablation_solvers` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = match scrip_bench::figures::ablation_solvers(scale) {
        Ok(figure) => figure,
        Err(e) => {
            eprintln!("ablation_solvers: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", figure.to_csv());
}

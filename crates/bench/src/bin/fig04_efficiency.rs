//! Regenerates the `fig04_efficiency` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = match scrip_bench::figures::fig04_efficiency(scale) {
        Ok(figure) => figure,
        Err(e) => {
            eprintln!("fig04_efficiency: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", figure.to_csv());
}

//! Regenerates the `fig04_efficiency` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = scrip_bench::figures::fig04_efficiency(scale);
    print!("{}", figure.to_csv());
}

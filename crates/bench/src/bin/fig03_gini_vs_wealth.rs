//! Regenerates the `fig03_gini_vs_wealth` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = match scrip_bench::figures::fig03_gini_vs_wealth(scale) {
        Ok(figure) => figure,
        Err(e) => {
            eprintln!("fig03_gini_vs_wealth: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", figure.to_csv());
}

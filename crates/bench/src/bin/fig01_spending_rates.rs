//! Regenerates the `fig01_spending_rates` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = match scrip_bench::figures::fig01_spending_rates(scale) {
        Ok(figure) => figure,
        Err(e) => {
            eprintln!("fig01_spending_rates: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", figure.to_csv());
}

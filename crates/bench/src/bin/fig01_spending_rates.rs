//! Regenerates the `fig01_spending_rates` experiment; prints CSV to stdout.
//! Set `SCRIP_QUICK=1` for a reduced-scale run.

fn main() {
    let scale = scrip_bench::scale::RunScale::from_env();
    let figure = scrip_bench::figures::fig01_spending_rates(scale);
    print!("{}", figure.to_csv());
}

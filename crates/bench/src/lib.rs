//! # scrip-bench — experiment harness for the `scrip` reproduction
//!
//! One regenerator per table/figure of Qiu et al., *"Exploring the
//! Sustainability of Credit-incentivized Peer-to-Peer Content
//! Distribution"* (ICDCSW 2012), plus ablation studies and Criterion
//! performance benches.
//!
//! Every figure is implemented as a library function in [`figures`]
//! returning a typed [`figures::FigureResult`]; the `fig*` binaries
//! print them as CSV, the `figure_smoke` integration test runs them at
//! reduced scale, and `fig_all` regenerates the whole evaluation
//! section in one go.
//!
//! Scale control: set `SCRIP_QUICK=1` to run every experiment at a
//! reduced scale (smaller overlays, shorter horizons) — used by CI and
//! the smoke tests. The default is the paper's scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod scale;

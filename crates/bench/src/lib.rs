//! # scrip-bench — experiment harness for the `scrip` reproduction
//!
//! One regenerator per table/figure of Qiu et al., *"Exploring the
//! Sustainability of Credit-incentivized Peer-to-Peer Content
//! Distribution"* (ICDCSW 2012), plus ablation studies and Criterion
//! performance benches.
//!
//! Every figure is implemented as a library function in [`figures`]
//! returning a typed [`figures::FigureResult`]; the `fig*` binaries
//! print them as CSV, the `figure_smoke` integration test runs them at
//! reduced scale, and `fig_all` regenerates the whole evaluation
//! section in one go.
//!
//! Experiments are described declaratively by the [`scenario`] engine: a
//! [`scenario::Scenario`] bundles a base market, execution parameters,
//! explicit cases, and sweep axes, and the multi-threaded batch runner
//! ([`scenario::run_scenario`]) executes the whole grid with
//! deterministic per-replication seeds — results are byte-identical for
//! any thread count. The `scrip-sim` binary exposes all of this on the
//! command line, including scenario *files* (see `docs/SCENARIOS.md`).
//!
//! Scale control: set `SCRIP_QUICK=1` to run every experiment at a
//! reduced scale (smaller overlays, shorter horizons) — used by CI and
//! the smoke tests. The default is the paper's scale. Set
//! `SCRIP_THREADS=n` to cap the batch runner's worker threads (0 or
//! unset: one per core).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisect;
pub mod figures;
pub mod perf;
pub mod scale;
pub mod scenario;
pub mod serve;

//! Random overlay generators.
//!
//! The paper's default overlay is **scale-free**: node degrees follow
//! `P(D) ~ D^-k` with `k = 2.5` and a mean of 20 neighbors (Sec. VI). The
//! [`scale_free`] generator reproduces this via a configuration model with
//! a bounded power-law degree sequence, then patches connectivity.
//! Alternative families ([`barabasi_albert`], [`erdos_renyi`],
//! [`random_regular`], [`complete`], [`ring`]) support ablations over
//! topology choice.

use std::error::Error;
use std::fmt;

use rand::Rng;
use scrip_des::dist::{DiscretePowerLaw, ParamError};

use crate::graph::{Graph, NodeId};

/// Errors from topology generation.
#[derive(Clone, Debug, PartialEq)]
pub enum GenError {
    /// A configuration parameter was invalid.
    InvalidParam(String),
    /// The underlying degree distribution could not be built.
    Distribution(ParamError),
    /// No graph satisfying the constraints could be realised.
    Infeasible(String),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::InvalidParam(msg) => write!(f, "invalid generator parameter: {msg}"),
            GenError::Distribution(e) => write!(f, "degree distribution: {e}"),
            GenError::Infeasible(msg) => write!(f, "infeasible topology: {msg}"),
        }
    }
}

impl Error for GenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GenError::Distribution(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamError> for GenError {
    fn from(e: ParamError) -> Self {
        GenError::Distribution(e)
    }
}

/// Configuration for the paper's scale-free overlay.
///
/// Defaults mirror Sec. VI of the paper: power-law exponent `k = 2.5` and
/// an average of roughly 20 neighbors. For a power law with `k = 2.5` the
/// mean is ≈ 3× the minimum degree (continuous approximation
/// `mean = min·(k−1)/(k−2)`), so the default minimum degree is 7, which
/// yields an asymptotic mean of ≈ 19.5.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleFreeConfig {
    /// Number of nodes.
    pub n: usize,
    /// Power-law shape parameter `k` in `P(D) ~ D^-k`.
    pub exponent: f64,
    /// Minimum degree of any node.
    pub min_degree: u64,
    /// Upper truncation of the degree distribution. Always additionally
    /// capped at `n − 1` when sampling.
    pub max_degree: u64,
}

impl ScaleFreeConfig {
    /// Paper defaults for an overlay of `n` nodes.
    ///
    /// # Errors
    /// Returns [`GenError::InvalidParam`] if `n < 2`.
    pub fn new(n: usize) -> Result<Self, GenError> {
        if n < 2 {
            return Err(GenError::InvalidParam(format!(
                "scale-free overlay needs n >= 2, got {n}"
            )));
        }
        Ok(ScaleFreeConfig {
            n,
            exponent: 2.5,
            min_degree: 7,
            max_degree: 4096,
        })
    }

    /// Overrides the power-law exponent.
    pub fn exponent(mut self, k: f64) -> Self {
        self.exponent = k;
        self
    }

    /// Overrides the minimum degree (which for exponent 2.5 sets the mean
    /// degree to roughly 3× this value).
    pub fn min_degree(mut self, min: u64) -> Self {
        self.min_degree = min;
        self
    }

    /// Overrides the degree-distribution truncation point.
    pub fn max_degree(mut self, max: u64) -> Self {
        self.max_degree = max;
        self
    }
}

/// Generates a connected scale-free overlay via the configuration model.
///
/// Draws a degree sequence from a bounded power law matched to
/// `config.mean_degree`, pairs stubs uniformly at random (rejecting
/// self-loops and parallel edges), then links any leftover components so
/// the overlay is connected — matching the paper's always-connected
/// streaming swarm.
///
/// # Errors
/// Returns [`GenError`] for invalid parameters or unachievable mean
/// degrees.
pub fn scale_free<R: Rng + ?Sized>(
    config: &ScaleFreeConfig,
    rng: &mut R,
) -> Result<Graph, GenError> {
    if config.n < 2 {
        return Err(GenError::InvalidParam(format!(
            "scale-free overlay needs n >= 2, got {}",
            config.n
        )));
    }
    if config.min_degree as usize >= config.n {
        return Err(GenError::InvalidParam(format!(
            "min degree {} must be below n = {}",
            config.min_degree, config.n
        )));
    }
    let max = config.max_degree.min(config.n as u64 - 1);
    let degree_dist = DiscretePowerLaw::new(config.min_degree, max, config.exponent)?;

    let mut graph = Graph::with_nodes(config.n);
    let ids: Vec<NodeId> = graph.node_ids().collect();

    // Degree sequence, capped at n-1 and with an even stub total.
    let cap = (config.n - 1) as u64;
    let mut degrees: Vec<u64> = (0..config.n)
        .map(|_| degree_dist.sample(rng).min(cap))
        .collect();
    if degrees.iter().sum::<u64>() % 2 == 1 {
        // Flip one unit on a random node to make the stub count even.
        let i = rng.gen_range(0..config.n);
        degrees[i] = if degrees[i] < cap {
            degrees[i] + 1
        } else {
            degrees[i] - 1
        };
    }

    // Stub list: node index repeated degree-many times.
    let mut stubs: Vec<usize> = Vec::with_capacity(degrees.iter().sum::<u64>() as usize);
    for (i, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat(i).take(d as usize));
    }
    // Fisher–Yates shuffle, then pair adjacent stubs.
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }
    for pair in stubs.chunks_exact(2) {
        let (a, b) = (ids[pair[0]], ids[pair[1]]);
        if a != b {
            // Parallel edges collapse silently (add_edge is idempotent).
            let _ = graph.add_edge(a, b);
        }
    }

    connect_components(&mut graph, rng);
    Ok(graph)
}

/// Generates a Barabási–Albert preferential-attachment graph: starts from
/// a small clique and attaches each new node to `m` existing nodes chosen
/// proportionally to degree.
///
/// # Errors
/// Returns [`GenError::InvalidParam`] unless `1 <= m < n`.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GenError> {
    if m == 0 || m >= n {
        return Err(GenError::InvalidParam(format!(
            "Barabási–Albert requires 1 <= m < n (m = {m}, n = {n})"
        )));
    }
    let mut graph = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|_| graph.add_node()).collect();

    // Seed clique over the first m+1 nodes.
    for i in 0..=m {
        for j in (i + 1)..=m {
            graph
                .add_edge(ids[i], ids[j])
                .expect("seed clique edges are valid");
        }
    }

    // Repeated-endpoints list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<usize> = Vec::new();
    for i in 0..=m {
        endpoints.extend(std::iter::repeat(i).take(m));
    }

    for new in (m + 1)..n {
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0usize;
        while targets.len() < m {
            let pick = endpoints[rng.gen_range(0..endpoints.len())];
            if pick != new && !targets.contains(&pick) {
                targets.push(pick);
            }
            guard += 1;
            if guard > 100 * (m + 1) {
                // Fall back to uniform choice to guarantee progress.
                let pick = rng.gen_range(0..new);
                if !targets.contains(&pick) {
                    targets.push(pick);
                }
            }
        }
        for &t in &targets {
            graph
                .add_edge(ids[new], ids[t])
                .expect("preferential edges are valid");
            endpoints.push(t);
            endpoints.push(new);
        }
    }
    Ok(graph)
}

/// Generates an Erdős–Rényi `G(n, p)` graph (not necessarily connected).
///
/// # Errors
/// Returns [`GenError::InvalidParam`] unless `0 <= p <= 1`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GenError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GenError::InvalidParam(format!(
            "edge probability must be in [0, 1], got {p}"
        )));
    }
    let mut graph = Graph::with_nodes(n);
    let ids: Vec<NodeId> = graph.node_ids().collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                graph.add_edge(ids[i], ids[j]).expect("distinct live nodes");
            }
        }
    }
    Ok(graph)
}

/// Generates a random `d`-regular graph by stub matching with restarts.
///
/// # Errors
/// Returns [`GenError::InvalidParam`] if `n * d` is odd or `d >= n`, and
/// [`GenError::Infeasible`] if no simple matching is found in 100
/// restarts (practically impossible for feasible parameters).
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<Graph, GenError> {
    if n * d % 2 == 1 {
        return Err(GenError::InvalidParam(format!(
            "n*d must be even (n = {n}, d = {d})"
        )));
    }
    if d >= n {
        return Err(GenError::InvalidParam(format!(
            "degree d = {d} must be below n = {n}"
        )));
    }
    'restart: for _ in 0..100 {
        let mut graph = Graph::with_nodes(n);
        let ids: Vec<NodeId> = graph.node_ids().collect();
        let mut stubs: Vec<usize> = (0..n).flat_map(|i| std::iter::repeat(i).take(d)).collect();
        // Pair random stubs, retrying locally on self-loops/parallel edges;
        // restart from scratch only on a genuine dead end.
        while !stubs.is_empty() {
            let mut attempts = 0;
            loop {
                let i = rng.gen_range(0..stubs.len());
                let mut j = rng.gen_range(0..stubs.len() - 1);
                if j >= i {
                    j += 1;
                }
                let (a, b) = (stubs[i], stubs[j]);
                if a != b && !graph.has_edge(ids[a], ids[b]) {
                    graph.add_edge(ids[a], ids[b]).expect("checked simple");
                    let (hi, lo) = (i.max(j), i.min(j));
                    stubs.swap_remove(hi);
                    stubs.swap_remove(lo);
                    break;
                }
                attempts += 1;
                if attempts > 100 + 10 * stubs.len() {
                    continue 'restart;
                }
            }
        }
        return Ok(graph);
    }
    Err(GenError::Infeasible(format!(
        "no simple {d}-regular graph on {n} nodes found after 100 restarts"
    )))
}

/// Generates the complete graph `K_n` (the topology of Dandekar et al.'s
/// credit-network model, useful for baselines).
pub fn complete(n: usize) -> Graph {
    let mut graph = Graph::with_nodes(n);
    let ids: Vec<NodeId> = graph.node_ids().collect();
    for i in 0..n {
        for j in (i + 1)..n {
            graph.add_edge(ids[i], ids[j]).expect("distinct live nodes");
        }
    }
    graph
}

/// Generates a ring (cycle) of `n >= 3` nodes.
///
/// # Errors
/// Returns [`GenError::InvalidParam`] if `n < 3`.
pub fn ring(n: usize) -> Result<Graph, GenError> {
    if n < 3 {
        return Err(GenError::InvalidParam(format!(
            "ring needs n >= 3, got {n}"
        )));
    }
    let mut graph = Graph::with_nodes(n);
    let ids: Vec<NodeId> = graph.node_ids().collect();
    for i in 0..n {
        graph
            .add_edge(ids[i], ids[(i + 1) % n])
            .expect("distinct live nodes");
    }
    Ok(graph)
}

/// Links connected components into one by adding one edge between a random
/// member of each subsequent component and a random member of the first.
pub(crate) fn connect_components<R: Rng + ?Sized>(graph: &mut Graph, rng: &mut R) {
    let components = graph.connected_components();
    if components.len() <= 1 {
        return;
    }
    let anchor_component = &components[0];
    for comp in &components[1..] {
        let a = anchor_component[rng.gen_range(0..anchor_component.len())];
        let b = comp[rng.gen_range(0..comp.len())];
        graph.add_edge(a, b).expect("distinct components");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use scrip_des::SimRng;

    #[test]
    fn scale_free_matches_paper_defaults() {
        let mut rng = SimRng::seed_from_u64(1);
        let config = ScaleFreeConfig::new(500).expect("valid");
        assert_eq!(config.exponent, 2.5);
        let g = scale_free(&config, &mut rng).expect("generated");
        assert_eq!(g.node_count(), 500);
        assert!(g.is_connected());
        let mean = metrics::mean_degree(&g);
        // Paper target is ~20 neighbors on average; truncation at n-1 and
        // configuration-model edge collapsing lose some edges.
        assert!((12.0..=22.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn scale_free_is_heavy_tailed() {
        let mut rng = SimRng::seed_from_u64(2);
        let config = ScaleFreeConfig::new(1000).expect("valid");
        let g = scale_free(&config, &mut rng).expect("generated");
        let max = metrics::max_degree(&g);
        let mean = metrics::mean_degree(&g);
        assert!(
            max as f64 > 4.0 * mean,
            "expected hub nodes: max {max}, mean {mean}"
        );
    }

    #[test]
    fn scale_free_rejects_tiny_n() {
        assert!(ScaleFreeConfig::new(1).is_err());
        let mut rng = SimRng::seed_from_u64(3);
        let mut config = ScaleFreeConfig::new(10).expect("valid");
        config.min_degree = 50;
        assert!(scale_free(&config, &mut rng).is_err());
    }

    #[test]
    fn scale_free_builder_overrides() {
        let config = ScaleFreeConfig::new(100)
            .expect("valid")
            .exponent(3.0)
            .min_degree(2)
            .max_degree(64);
        assert_eq!(config.exponent, 3.0);
        assert_eq!(config.min_degree, 2);
        assert_eq!(config.max_degree, 64);
        let mut rng = SimRng::seed_from_u64(4);
        let g = scale_free(&config, &mut rng).expect("generated");
        assert_eq!(g.node_count(), 100);
        assert!(g.is_connected());
    }

    #[test]
    fn barabasi_albert_structure() {
        let mut rng = SimRng::seed_from_u64(5);
        let g = barabasi_albert(200, 3, &mut rng).expect("generated");
        assert_eq!(g.node_count(), 200);
        assert!(g.is_connected());
        // Each non-seed node adds exactly m edges.
        let expected_edges = 3 * 4 / 2 + (200 - 4) * 3;
        assert_eq!(g.edge_count(), expected_edges);
        for id in g.node_ids() {
            assert!(g.degree(id).expect("live") >= 3);
        }
    }

    #[test]
    fn barabasi_albert_rejects_bad_m() {
        let mut rng = SimRng::seed_from_u64(6);
        assert!(barabasi_albert(10, 0, &mut rng).is_err());
        assert!(barabasi_albert(10, 10, &mut rng).is_err());
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let mut rng = SimRng::seed_from_u64(7);
        let n = 300;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut rng).expect("generated");
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.edge_count() as f64;
        assert!(
            (actual - expected).abs() < 0.15 * expected,
            "edges {actual} vs expected {expected}"
        );
    }

    #[test]
    fn erdos_renyi_extreme_p() {
        let mut rng = SimRng::seed_from_u64(8);
        assert_eq!(erdos_renyi(20, 0.0, &mut rng).expect("ok").edge_count(), 0);
        assert_eq!(
            erdos_renyi(20, 1.0, &mut rng).expect("ok").edge_count(),
            20 * 19 / 2
        );
        assert!(erdos_renyi(20, 1.5, &mut rng).is_err());
        assert!(erdos_renyi(20, -0.1, &mut rng).is_err());
    }

    #[test]
    fn random_regular_has_exact_degrees() {
        let mut rng = SimRng::seed_from_u64(9);
        let g = random_regular(50, 6, &mut rng).expect("generated");
        for id in g.node_ids() {
            assert_eq!(g.degree(id), Some(6));
        }
    }

    #[test]
    fn random_regular_rejects_odd_product_and_big_d() {
        let mut rng = SimRng::seed_from_u64(10);
        assert!(random_regular(5, 3, &mut rng).is_err());
        assert!(random_regular(5, 5, &mut rng).is_err());
    }

    #[test]
    fn complete_graph() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        for id in g.node_ids() {
            assert_eq!(g.degree(id), Some(5));
        }
    }

    #[test]
    fn ring_graph() {
        let g = ring(5).expect("valid");
        assert_eq!(g.edge_count(), 5);
        for id in g.node_ids() {
            assert_eq!(g.degree(id), Some(2));
        }
        assert!(ring(2).is_err());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = ScaleFreeConfig::new(200).expect("valid");
        let g1 = scale_free(&config, &mut SimRng::seed_from_u64(77)).expect("ok");
        let g2 = scale_free(&config, &mut SimRng::seed_from_u64(77)).expect("ok");
        assert_eq!(g1, g2);
        let g3 = scale_free(&config, &mut SimRng::seed_from_u64(78)).expect("ok");
        assert_ne!(g1, g3);
    }

    #[test]
    fn gen_error_display() {
        let e = GenError::InvalidParam("boom".into());
        assert!(e.to_string().contains("boom"));
        let e = GenError::Infeasible("nope".into());
        assert!(e.to_string().contains("nope"));
    }
}

//! Peer churn: join and leave operations on a live overlay.
//!
//! Sec. VI-E of the paper studies *dynamic* overlays where peers arrive as
//! a Poisson process and stay for exponentially distributed lifespans. A
//! joining peer attaches to a bounded number of existing peers; a leaving
//! peer takes its credits away and its edges vanish. These operations keep
//! the overlay usable for the streaming protocol (every node keeps at
//! least one neighbor whenever possible).

use rand::Rng;

use crate::graph::{Graph, GraphError, NodeId};

/// How a joining peer selects its initial neighbors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AttachmentRule {
    /// Choose neighbors uniformly at random.
    Uniform,
    /// Choose neighbors proportionally to their current degree, which
    /// preserves the scale-free shape under churn (preferential
    /// attachment). This is the default, matching the paper's scale-free
    /// overlays.
    #[default]
    Preferential,
}

/// Configuration for churn operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnTopology {
    /// Number of neighbors a joining peer attaches to (capped by the
    /// current overlay size).
    pub attach_degree: usize,
    /// Neighbor selection rule on join.
    pub rule: AttachmentRule,
}

impl Default for ChurnTopology {
    fn default() -> Self {
        ChurnTopology {
            attach_degree: 20,
            rule: AttachmentRule::Preferential,
        }
    }
}

impl ChurnTopology {
    /// Creates a churn config attaching each joiner to `attach_degree`
    /// neighbors with the default preferential rule.
    pub fn new(attach_degree: usize) -> Self {
        ChurnTopology {
            attach_degree,
            ..Default::default()
        }
    }

    /// Adds a node to the overlay and wires it to up to
    /// [`ChurnTopology::attach_degree`] existing nodes per the attachment
    /// rule. Returns the new node's ID.
    pub fn join<R: Rng + ?Sized>(&self, graph: &mut Graph, rng: &mut R) -> NodeId {
        let existing: Vec<NodeId> = graph.node_ids().collect();
        let new = graph.add_node();
        if existing.is_empty() {
            return new;
        }
        let want = self.attach_degree.min(existing.len()).max(1);
        match self.rule {
            AttachmentRule::Uniform => {
                let mut pool = existing;
                // Partial Fisher–Yates: first `want` entries become the sample.
                for i in 0..want {
                    let j = rng.gen_range(i..pool.len());
                    pool.swap(i, j);
                }
                for &nb in &pool[..want] {
                    graph.add_edge(new, nb).expect("distinct live nodes");
                }
            }
            AttachmentRule::Preferential => {
                // Degree-proportional sampling with +1 smoothing so isolated
                // nodes remain reachable.
                let weights: Vec<f64> = existing
                    .iter()
                    .map(|&id| (graph.degree(id).unwrap_or(0) + 1) as f64)
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut chosen: Vec<NodeId> = Vec::with_capacity(want);
                let mut guard = 0usize;
                while chosen.len() < want && guard < 1000 * want {
                    guard += 1;
                    let mut target = rng.gen::<f64>() * total;
                    let mut pick = existing[existing.len() - 1];
                    for (i, &w) in weights.iter().enumerate() {
                        if target < w {
                            pick = existing[i];
                            break;
                        }
                        target -= w;
                    }
                    if !chosen.contains(&pick) {
                        chosen.push(pick);
                    }
                }
                for &nb in &chosen {
                    graph.add_edge(new, nb).expect("distinct live nodes");
                }
            }
        }
        new
    }

    /// Removes a departing node, returning its former neighbors.
    ///
    /// # Errors
    /// Returns [`GraphError::NoSuchNode`] if the node is already gone.
    pub fn leave(&self, graph: &mut Graph, id: NodeId) -> Result<Vec<NodeId>, GraphError> {
        graph.remove_node(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, ScaleFreeConfig};
    use scrip_des::SimRng;

    #[test]
    fn join_into_empty_graph() {
        let mut g = Graph::new();
        let mut rng = SimRng::seed_from_u64(1);
        let churn = ChurnTopology::new(5);
        let id = churn.join(&mut g, &mut rng);
        assert!(g.has_node(id));
        assert_eq!(g.degree(id), Some(0));
    }

    #[test]
    fn join_attaches_requested_degree() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut g = generators::complete(30);
        let churn = ChurnTopology::new(10);
        let id = churn.join(&mut g, &mut rng);
        assert_eq!(g.degree(id), Some(10));
    }

    #[test]
    fn join_caps_at_overlay_size() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut g = generators::complete(4);
        let churn = ChurnTopology::new(100);
        let id = churn.join(&mut g, &mut rng);
        assert_eq!(g.degree(id), Some(4));
    }

    #[test]
    fn uniform_rule_attaches() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut g = generators::complete(20);
        let churn = ChurnTopology {
            attach_degree: 7,
            rule: AttachmentRule::Uniform,
        };
        let id = churn.join(&mut g, &mut rng);
        assert_eq!(g.degree(id), Some(7));
    }

    #[test]
    fn preferential_rule_prefers_hubs() {
        let mut rng = SimRng::seed_from_u64(5);
        // A star graph: node 0 is the hub.
        let mut g = Graph::with_nodes(21);
        let ids: Vec<NodeId> = g.node_ids().collect();
        for &leaf in &ids[1..] {
            g.add_edge(ids[0], leaf).expect("valid");
        }
        let churn = ChurnTopology::new(1);
        let mut hub_hits = 0;
        let trials = 200;
        for _ in 0..trials {
            let mut g2 = g.clone();
            let id = churn.join(&mut g2, &mut rng);
            let nb: Vec<NodeId> = g2.neighbors(id).expect("live").collect();
            if nb == vec![ids[0]] {
                hub_hits += 1;
            }
        }
        // Hub has degree 20 of total degree 40 (+1 smoothing dilutes a bit);
        // uniform choice would hit it ~1/21 of the time.
        assert!(
            hub_hits > trials / 4,
            "hub attached only {hub_hits}/{trials} times"
        );
    }

    #[test]
    fn leave_removes_node_and_reports_neighbors() {
        let mut rng = SimRng::seed_from_u64(6);
        let config = ScaleFreeConfig::new(50).expect("valid");
        let mut g = generators::scale_free(&config, &mut rng).expect("generated");
        let victim = g.node_ids().nth(10).expect("exists");
        let expected: Vec<NodeId> = g.neighbors(victim).expect("live").collect();
        let churn = ChurnTopology::default();
        let got = churn.leave(&mut g, victim).expect("was live");
        assert_eq!(got, expected);
        assert!(!g.has_node(victim));
        assert!(churn.leave(&mut g, victim).is_err());
    }

    #[test]
    fn sustained_churn_keeps_overlay_usable() {
        let mut rng = SimRng::seed_from_u64(7);
        let config = ScaleFreeConfig::new(100).expect("valid");
        let mut g = generators::scale_free(&config, &mut rng).expect("generated");
        let churn = ChurnTopology::new(8);
        for round in 0..300 {
            if round % 2 == 0 {
                churn.join(&mut g, &mut rng);
            } else {
                let ids: Vec<NodeId> = g.node_ids().collect();
                let victim = ids[rng.index(ids.len())];
                churn.leave(&mut g, victim).expect("live");
            }
        }
        assert_eq!(g.node_count(), 100);
        // All surviving joiners should have at least one neighbor unless the
        // overlay collapsed (it should not at this size).
        let isolated = g.node_ids().filter(|&id| g.degree(id) == Some(0)).count();
        assert!(isolated < 5, "{isolated} isolated nodes after churn");
    }
}

//! Balanced graph partitioning for sharded execution.
//!
//! [`Partition::regions`] splits a [`Graph`]'s node set into `k`
//! regions of near-equal size (every region holds at most `⌈n/k⌉`
//! nodes) while keeping the edge cut small, and records everything the
//! sharded runner needs: the node→shard map, each region's member
//! list, and each region's *frontier* — the members with at least one
//! neighbor on another shard, i.e. exactly the peers whose trades can
//! cross a shard boundary.
//!
//! The partitioner is greedy BFS growth: region `s` starts from the
//! lowest-numbered unassigned node and absorbs unassigned neighbors in
//! ascending-ID breadth-first order until it reaches its size target,
//! re-seeding from the lowest unassigned node whenever its frontier
//! runs dry (disconnected graphs partition fine). The procedure draws
//! no randomness and iterates the graph only through its deterministic
//! ascending-ID views, so the same graph always yields the same
//! partition — a prerequisite for byte-reproducible sharded runs.

use std::collections::VecDeque;

use crate::graph::Graph;
use crate::NodeId;

/// Shard sentinel for IDs that are not in any region.
const ABSENT: u32 = u32::MAX;

/// A `k`-way partition of a graph's nodes; see the [module docs](self).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Raw node ID → shard index ([`ABSENT`] for IDs not in the graph).
    shard_of: Vec<u32>,
    /// Per-shard member lists, each ascending.
    regions: Vec<Vec<NodeId>>,
    /// Per-shard frontier lists (members with ≥ 1 cross-shard
    /// neighbor), each ascending.
    frontiers: Vec<Vec<NodeId>>,
    /// Number of edges whose endpoints lie in different regions.
    edge_cut: usize,
}

impl Partition {
    /// Partitions `graph` into `k` balanced regions.
    ///
    /// Every node lands in exactly one region and every region holds at
    /// most `⌈n/k⌉` nodes (regions differ in size by at most one; when
    /// `k > n` the surplus regions are empty). Deterministic: no RNG,
    /// ascending-ID iteration only.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn regions(graph: &Graph, k: usize) -> Partition {
        assert!(k > 0, "cannot partition into zero regions");
        let n = graph.node_count();
        let ids: Vec<NodeId> = graph.node_ids().collect();
        let mut shard_of = vec![ABSENT; graph.next_raw_id() as usize];
        let mut regions: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        // Exact balance: the first n % k regions take one extra node.
        let targets: Vec<usize> = (0..k).map(|s| n / k + usize::from(s < n % k)).collect();
        let mut seed_cursor = 0usize; // index into `ids` (ascending)
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for (s, &target) in targets.iter().enumerate() {
            queue.clear();
            while regions[s].len() < target {
                let next = match queue.pop_front() {
                    Some(id) if shard_of[id.raw() as usize] == ABSENT => id,
                    Some(_) => continue, // claimed since it was enqueued
                    None => {
                        // Frontier dry: re-seed from the lowest
                        // unassigned node.
                        while seed_cursor < ids.len()
                            && shard_of[ids[seed_cursor].raw() as usize] != ABSENT
                        {
                            seed_cursor += 1;
                        }
                        match ids.get(seed_cursor) {
                            Some(&id) => id,
                            None => break, // nothing left anywhere
                        }
                    }
                };
                shard_of[next.raw() as usize] = s as u32;
                regions[s].push(next);
                for &nb in graph.neighbor_slice(next).unwrap_or(&[]) {
                    if shard_of[nb.raw() as usize] == ABSENT {
                        queue.push_back(nb);
                    }
                }
            }
            regions[s].sort_unstable();
        }
        debug_assert_eq!(
            regions.iter().map(Vec::len).sum::<usize>(),
            n,
            "partition must cover every node"
        );
        // Frontiers and edge cut, from the assignment.
        let mut frontiers: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut edge_cut = 0usize;
        for &id in &ids {
            let s = shard_of[id.raw() as usize];
            let mut boundary = false;
            for &nb in graph.neighbor_slice(id).unwrap_or(&[]) {
                if shard_of[nb.raw() as usize] != s {
                    boundary = true;
                    if nb > id {
                        edge_cut += 1;
                    }
                }
            }
            if boundary {
                frontiers[s as usize].push(id);
            }
        }
        Partition {
            shard_of,
            regions,
            frontiers,
            edge_cut,
        }
    }

    /// Number of regions (`k`).
    pub fn shard_count(&self) -> usize {
        self.regions.len()
    }

    /// The shard holding `id`, or [`None`] if `id` was not in the graph
    /// when the partition was computed.
    pub fn shard_of(&self, id: NodeId) -> Option<usize> {
        match self.shard_of.get(id.raw() as usize) {
            Some(&s) if s != ABSENT => Some(s as usize),
            _ => None,
        }
    }

    /// The members of region `s`, ascending.
    pub fn region(&self, s: usize) -> &[NodeId] {
        &self.regions[s]
    }

    /// The frontier of region `s`: members with at least one neighbor
    /// in another region, ascending.
    pub fn frontier(&self, s: usize) -> &[NodeId] {
        &self.frontiers[s]
    }

    /// Number of edges crossing between regions.
    pub fn edge_cut(&self) -> usize {
        self.edge_cut
    }

    /// Total nodes covered (equals the partitioned graph's node count).
    pub fn node_count(&self) -> usize {
        self.regions.iter().map(Vec::len).sum()
    }

    /// The size of the largest region (≤ `⌈node_count / k⌉` by
    /// construction).
    pub fn max_region_size(&self) -> usize {
        self.regions.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ring_partition_is_contiguous_and_balanced() {
        let g = generators::ring(12).expect("ring");
        let p = Partition::regions(&g, 3);
        assert_eq!(p.shard_count(), 3);
        assert_eq!(p.node_count(), 12);
        assert_eq!(p.max_region_size(), 4);
        for s in 0..3 {
            assert_eq!(p.region(s).len(), 4);
        }
        // BFS growth on a ring yields contiguous arcs: the cut is the
        // minimum possible (one edge per boundary, 3 boundaries).
        assert!(p.edge_cut() <= 4, "cut {}", p.edge_cut());
        // Every member with a cross-shard neighbor is in the frontier.
        for s in 0..3 {
            for &id in p.frontier(s) {
                assert_eq!(p.shard_of(id), Some(s));
            }
        }
    }

    #[test]
    fn single_region_has_no_cut_or_frontier() {
        let g = generators::complete(8);
        let p = Partition::regions(&g, 1);
        assert_eq!(p.edge_cut(), 0);
        assert!(p.frontier(0).is_empty());
        assert_eq!(p.region(0).len(), 8);
    }

    #[test]
    fn more_regions_than_nodes_leaves_surplus_empty() {
        let g = generators::complete(3);
        let p = Partition::regions(&g, 5);
        assert_eq!(p.node_count(), 3);
        let sizes: Vec<usize> = (0..5).map(|s| p.region(s).len()).collect();
        assert_eq!(sizes, vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn covers_disconnected_graphs() {
        let mut g = Graph::with_nodes(6); // no edges: 6 singletons
        let ids: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(ids[0], ids[5]).expect("ok");
        let p = Partition::regions(&g, 2);
        assert_eq!(p.node_count(), 6);
        assert_eq!(p.max_region_size(), 3);
        for &id in &ids {
            assert!(p.shard_of(id).is_some());
        }
    }

    #[test]
    fn deterministic_for_the_same_graph() {
        let mut rng = scrip_des::SimRng::seed_from_u64(7);
        let g = generators::scale_free(
            &generators::ScaleFreeConfig::new(80).expect("valid"),
            &mut rng,
        )
        .expect("generates");
        let a = Partition::regions(&g, 4);
        let b = Partition::regions(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn absent_ids_map_to_none() {
        let mut g = Graph::with_nodes(4);
        let ids: Vec<NodeId> = g.node_ids().collect();
        g.remove_node(ids[1]).expect("live");
        let p = Partition::regions(&g, 2);
        assert_eq!(p.shard_of(ids[1]), None);
        assert_eq!(p.shard_of(NodeId::from_raw(999)), None);
        assert_eq!(p.node_count(), 3);
    }

    #[test]
    #[should_panic(expected = "zero regions")]
    fn zero_regions_panics() {
        let g = generators::complete(3);
        let _ = Partition::regions(&g, 0);
    }
}

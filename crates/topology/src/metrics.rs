//! Structural metrics for overlay graphs.
//!
//! Used to verify that generated overlays match the paper's stated
//! configuration (power-law degrees with `k = 2.5`, mean degree 20) and to
//! report topology statistics in experiments.

use std::collections::BTreeMap;

use crate::graph::{Graph, NodeId};

/// Mean node degree (0 for the empty graph).
pub fn mean_degree(graph: &Graph) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    2.0 * graph.edge_count() as f64 / graph.node_count() as f64
}

/// Maximum node degree (0 for the empty graph).
pub fn max_degree(graph: &Graph) -> usize {
    graph
        .node_ids()
        .filter_map(|id| graph.degree(id))
        .max()
        .unwrap_or(0)
}

/// Minimum node degree (0 for the empty graph).
pub fn min_degree(graph: &Graph) -> usize {
    graph
        .node_ids()
        .filter_map(|id| graph.degree(id))
        .min()
        .unwrap_or(0)
}

/// Degree histogram: `degree -> number of nodes with that degree`.
pub fn degree_histogram(graph: &Graph) -> BTreeMap<usize, usize> {
    let mut hist = BTreeMap::new();
    for id in graph.node_ids() {
        *hist
            .entry(graph.degree(id).expect("live node"))
            .or_insert(0) += 1;
    }
    hist
}

/// Maximum-likelihood estimate of the power-law exponent `k` of the degree
/// distribution, using the discrete Clauset–Shalizi–Newman approximation
///
/// ```text
/// k ≈ 1 + n / Σ ln(d_i / (d_min − 0.5))
/// ```
///
/// over nodes with degree ≥ `d_min`. Returns [`None`] if fewer than two
/// nodes qualify.
pub fn power_law_exponent_mle(graph: &Graph, d_min: usize) -> Option<f64> {
    let degrees: Vec<usize> = graph
        .node_ids()
        .filter_map(|id| graph.degree(id))
        .filter(|&d| d >= d_min && d > 0)
        .collect();
    if degrees.len() < 2 || d_min == 0 {
        return None;
    }
    let denom: f64 = degrees
        .iter()
        .map(|&d| (d as f64 / (d_min as f64 - 0.5)).ln())
        .sum();
    if denom <= 0.0 {
        return None;
    }
    Some(1.0 + degrees.len() as f64 / denom)
}

/// Local clustering coefficient of one node: the fraction of its neighbor
/// pairs that are themselves connected. [`None`] if the node is absent;
/// 0.0 for degree < 2.
pub fn local_clustering(graph: &Graph, id: NodeId) -> Option<f64> {
    let neighbors: Vec<NodeId> = graph.neighbors(id)?.collect();
    let d = neighbors.len();
    if d < 2 {
        return Some(0.0);
    }
    let mut closed = 0usize;
    for i in 0..d {
        for j in (i + 1)..d {
            if graph.has_edge(neighbors[i], neighbors[j]) {
                closed += 1;
            }
        }
    }
    Some(2.0 * closed as f64 / (d * (d - 1)) as f64)
}

/// Average of local clustering coefficients over all nodes (0 for the
/// empty graph).
pub fn average_clustering(graph: &Graph) -> f64 {
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    graph
        .node_ids()
        .map(|id| local_clustering(graph, id).expect("live node"))
        .sum::<f64>()
        / n as f64
}

/// A compact topology report for experiment logs.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologyReport {
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// MLE power-law exponent (with `d_min` = observed minimum positive
    /// degree), if estimable.
    pub exponent_mle: Option<f64>,
    /// Average clustering coefficient.
    pub clustering: f64,
    /// Whether the overlay is connected.
    pub connected: bool,
}

impl TopologyReport {
    /// Computes the report for a graph.
    pub fn of(graph: &Graph) -> Self {
        let dmin = min_degree(graph).max(2);
        TopologyReport {
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            mean_degree: mean_degree(graph),
            min_degree: min_degree(graph),
            max_degree: max_degree(graph),
            exponent_mle: power_law_exponent_mle(graph, dmin),
            clustering: average_clustering(graph),
            connected: graph.is_connected(),
        }
    }
}

impl std::fmt::Display for TopologyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} edges={} degree[min/mean/max]={}/{:.2}/{} k_mle={} clustering={:.3} connected={}",
            self.nodes,
            self.edges,
            self.min_degree,
            self.mean_degree,
            self.max_degree,
            self.exponent_mle
                .map(|k| format!("{k:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            self.clustering,
            self.connected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, ScaleFreeConfig};
    use scrip_des::SimRng;

    #[test]
    fn degrees_of_complete_graph() {
        let g = generators::complete(10);
        assert_eq!(mean_degree(&g), 9.0);
        assert_eq!(max_degree(&g), 9);
        assert_eq!(min_degree(&g), 9);
        let hist = degree_histogram(&g);
        assert_eq!(hist.get(&9), Some(&10));
    }

    #[test]
    fn empty_graph_metrics() {
        let g = Graph::new();
        assert_eq!(mean_degree(&g), 0.0);
        assert_eq!(max_degree(&g), 0);
        assert_eq!(min_degree(&g), 0);
        assert_eq!(average_clustering(&g), 0.0);
        assert!(degree_histogram(&g).is_empty());
    }

    #[test]
    fn clustering_of_triangle_and_path() {
        let mut g = Graph::with_nodes(3);
        let ids: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(ids[0], ids[1]).expect("ok");
        g.add_edge(ids[1], ids[2]).expect("ok");
        // Path: middle node's neighbors unconnected.
        assert_eq!(local_clustering(&g, ids[1]), Some(0.0));
        g.add_edge(ids[0], ids[2]).expect("ok");
        // Triangle: clustering 1 everywhere.
        assert_eq!(local_clustering(&g, ids[1]), Some(1.0));
        assert_eq!(average_clustering(&g), 1.0);
    }

    #[test]
    fn clustering_absent_node_is_none() {
        let g = Graph::new();
        assert_eq!(local_clustering(&g, NodeId::from_raw(7)), None);
    }

    #[test]
    fn mle_recovers_exponent_on_scale_free_overlay() {
        let mut rng = SimRng::seed_from_u64(11);
        let config = ScaleFreeConfig::new(3000).expect("valid");
        let g = generators::scale_free(&config, &mut rng).expect("generated");
        let k = power_law_exponent_mle(&g, 6).expect("estimable");
        // The configuration model + connectivity patching perturbs the tail;
        // accept a generous band around the true 2.5.
        assert!((1.8..=3.2).contains(&k), "estimated exponent {k}");
    }

    #[test]
    fn mle_degenerate_inputs() {
        let g = Graph::with_nodes(5);
        assert_eq!(power_law_exponent_mle(&g, 1), None);
        let g2 = generators::complete(2);
        assert_eq!(power_law_exponent_mle(&g2, 0), None);
    }

    #[test]
    fn report_on_ring() {
        let g = generators::ring(10).expect("valid");
        let r = TopologyReport::of(&g);
        assert_eq!(r.nodes, 10);
        assert_eq!(r.edges, 10);
        assert_eq!(r.mean_degree, 2.0);
        assert!(r.connected);
        assert_eq!(r.clustering, 0.0);
        let text = r.to_string();
        assert!(text.contains("nodes=10"));
        assert!(text.contains("connected=true"));
    }
}

//! The dense peer arena: `NodeId → u32` slot map with swap-remove.
//!
//! All per-peer market state (wallets, spending rates, spent counters,
//! activity traces, posted prices) lives in slot-indexed `Vec`s instead
//! of `BTreeMap<NodeId, _>`s: a lookup is one array load instead of an
//! O(log n) pointer chase, and iteration is a linear scan. [`PeerArena`]
//! owns the `NodeId ↔ slot` correspondence; parallel `Vec`s mirror its
//! insert/swap-remove discipline (push on insert, `swap_remove(slot)` on
//! removal) so a peer's slot indexes every structure at once.
//!
//! Slot order is insertion order perturbed by swap-removes — exactly the
//! order the market's old `peers_vec` maintained, so uniform peer picks
//! (`slots()[rng.index(len)]`) reproduce the pre-arena RNG trajectories
//! bit for bit.
//!
//! The reverse map is a flat `Vec<u32>` indexed by raw [`NodeId`] value:
//! IDs are allocated densely from 0 by [`crate::Graph`] and
//! never reused, so the map stays small ( ≈ 4 bytes × IDs ever minted).
//!
//! [`crate::Graph`] applies the same slot-map discipline internally
//! (interleaved with its adjacency rows and sorted-id list); a change
//! to the swap-remove bookkeeping here likely applies there too.

use crate::NodeId;

/// Slot sentinel for IDs not present in the arena.
const ABSENT: u32 = u32::MAX;

/// A dense slot allocator over live [`NodeId`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeerArena {
    /// Slot → ID.
    ids: Vec<NodeId>,
    /// Raw ID → slot ([`ABSENT`] when not live).
    id_to_slot: Vec<u32>,
}

/// The bookkeeping of one [`PeerArena::remove`]: which slot was freed
/// and which peer (if any) was swapped into it. Mirror the same
/// `swap_remove(slot)` on every parallel `Vec`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotRemoval {
    /// The slot the removed peer occupied.
    pub slot: usize,
    /// The peer that now occupies `slot` (the former last slot), if the
    /// removed peer was not itself last.
    pub moved: Option<NodeId>,
}

impl PeerArena {
    /// An empty arena.
    pub fn new() -> Self {
        PeerArena::default()
    }

    /// An arena pre-populated with `ids`, slotted in the given order.
    pub fn from_ids(ids: &[NodeId]) -> Self {
        let mut arena = PeerArena {
            ids: Vec::with_capacity(ids.len()),
            id_to_slot: Vec::new(),
        };
        for &id in ids {
            arena.insert(id);
        }
        arena
    }

    /// The slot of `id`, or [`None`] if it is not live.
    #[inline]
    pub fn slot(&self, id: NodeId) -> Option<usize> {
        match self.id_to_slot.get(id.raw() as usize) {
            Some(&s) if s != ABSENT => Some(s as usize),
            _ => None,
        }
    }

    /// Whether `id` is live.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.slot(id).is_some()
    }

    /// The live IDs in slot order (the dense view: index = slot).
    #[inline]
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of live peers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Heap bytes reserved by the slot map: the dense slot → ID `Vec`
    /// plus the raw-ID → slot reverse map (capacities, not lengths, so
    /// the figure matches what the allocator is actually holding). Used
    /// by the arena layout audit to account bytes per peer.
    pub fn heap_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<NodeId>()
            + self.id_to_slot.capacity() * std::mem::size_of::<u32>()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Assigns the next slot to `id` and returns it. Push a matching
    /// entry onto every parallel `Vec`.
    ///
    /// The reverse map grows to `id.raw() + 1` entries, so this is for
    /// *densely allocated* IDs (as handed out by
    /// [`crate::Graph::add_node`]); inserting an arbitrary
    /// huge `NodeId::from_raw` value would allocate proportional
    /// memory. Lookups ([`PeerArena::slot`], [`PeerArena::contains`])
    /// are safe for any ID.
    ///
    /// # Panics
    /// Panics if `id` is already live (a slot leak otherwise).
    pub fn insert(&mut self, id: NodeId) -> usize {
        let raw = id.raw() as usize;
        if raw >= self.id_to_slot.len() {
            self.id_to_slot.resize(raw + 1, ABSENT);
        }
        assert_eq!(self.id_to_slot[raw], ABSENT, "{id} already has a slot");
        let slot = self.ids.len();
        self.id_to_slot[raw] = slot as u32;
        self.ids.push(id);
        slot
    }

    /// Frees `id`'s slot by swap-remove, or returns [`None`] if it is
    /// not live. Apply `swap_remove(removal.slot)` to every parallel
    /// `Vec`.
    pub fn remove(&mut self, id: NodeId) -> Option<SlotRemoval> {
        let slot = self.slot(id)?;
        self.ids.swap_remove(slot);
        self.id_to_slot[id.raw() as usize] = ABSENT;
        let moved = self.ids.get(slot).copied();
        if let Some(moved_id) = moved {
            self.id_to_slot[moved_id.raw() as usize] = slot as u32;
        }
        Some(SlotRemoval { slot, moved })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> NodeId {
        NodeId::from_raw(n)
    }

    #[test]
    fn insert_assigns_dense_slots() {
        let mut a = PeerArena::new();
        assert_eq!(a.insert(id(5)), 0);
        assert_eq!(a.insert(id(2)), 1);
        assert_eq!(a.insert(id(9)), 2);
        assert_eq!(a.slot(id(2)), Some(1));
        assert_eq!(a.slot(id(7)), None);
        assert_eq!(a.ids(), &[id(5), id(2), id(9)]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(id(9)));
        assert!(!a.contains(id(10_000)), "out-of-range probe is safe");
    }

    #[test]
    fn remove_swaps_last_into_slot() {
        let mut a = PeerArena::from_ids(&[id(0), id(1), id(2), id(3)]);
        let removal = a.remove(id(1)).expect("live");
        assert_eq!(removal.slot, 1);
        assert_eq!(removal.moved, Some(id(3)));
        assert_eq!(a.ids(), &[id(0), id(3), id(2)]);
        assert_eq!(a.slot(id(3)), Some(1));
        assert_eq!(a.slot(id(1)), None);
        // Removing the last slot moves nothing.
        let removal = a.remove(id(2)).expect("live");
        assert_eq!(removal.moved, None);
        assert_eq!(a.remove(id(2)), None, "double remove is None");
    }

    #[test]
    fn slots_can_be_reassigned_after_removal() {
        let mut a = PeerArena::from_ids(&[id(0), id(1)]);
        a.remove(id(0)).expect("live");
        let slot = a.insert(id(0));
        assert_eq!(slot, 1, "re-inserted id takes a fresh slot");
        assert_eq!(a.ids(), &[id(1), id(0)]);
    }

    #[test]
    fn parallel_vec_mirroring() {
        let mut a = PeerArena::from_ids(&[id(0), id(1), id(2)]);
        let mut wealth = vec![10u64, 20, 30];
        let removal = a.remove(id(0)).expect("live");
        wealth.swap_remove(removal.slot);
        for (slot, &peer) in a.ids().iter().enumerate() {
            assert_eq!(wealth[slot], (peer.raw() + 1) * 10);
        }
    }

    #[test]
    #[should_panic(expected = "already has a slot")]
    fn double_insert_panics() {
        let mut a = PeerArena::new();
        a.insert(id(3));
        a.insert(id(3));
    }
}

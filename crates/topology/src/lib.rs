//! # scrip-topology — P2P overlay topologies
//!
//! Overlay-graph substrate for the `scrip` reproduction of Qiu et al.,
//! *"Exploring the Sustainability of Credit-incentivized Peer-to-Peer
//! Content Distribution"* (ICDCSW 2012).
//!
//! The paper's simulations run on **scale-free overlays** whose degree
//! distribution follows a power law `P(D) ~ D^-k` with shape `k = 2.5` and
//! an average of 20 neighbors, over 500–1000 peers, with peers joining and
//! leaving dynamically (Sec. VI). This crate provides:
//!
//! * [`Graph`] — an undirected overlay with stable [`NodeId`]s that survive
//!   churn (IDs are never reused).
//! * [`generators`] — scale-free (configuration model and preferential
//!   attachment), Erdős–Rényi, random-regular, complete and ring graphs.
//! * [`churn`] — join/leave operations that keep the overlay connected.
//! * [`metrics`] — degree statistics, power-law exponent MLE, clustering
//!   coefficient and connectivity checks.
//! * [`partition`] — deterministic balanced edge-cut partitioning of the
//!   overlay into `k` regions, for sharded execution of a single run.
//!
//! ## Example
//!
//! ```
//! use scrip_des::SimRng;
//! use scrip_topology::generators::{self, ScaleFreeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = SimRng::seed_from_u64(42);
//! let graph = generators::scale_free(&ScaleFreeConfig::new(500)?, &mut rng)?;
//! assert_eq!(graph.node_count(), 500);
//! let mean_degree = scrip_topology::metrics::mean_degree(&graph);
//! assert!(mean_degree > 4.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod churn;
pub mod generators;
pub mod graph;
pub mod metrics;
pub mod partition;

pub use arena::{PeerArena, SlotRemoval};
pub use graph::{Graph, GraphError, NodeId};
pub use partition::Partition;

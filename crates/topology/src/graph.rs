//! The overlay graph: undirected, with stable node identities.
//!
//! Storage is CSR-style: each live node occupies a dense *slot* and its
//! neighbors live in one sorted `Vec<NodeId>`, exposed as a stable
//! [`Graph::neighbor_slice`]. Hot simulation loops borrow that slice
//! directly (no per-event clone, no tree walk); churn updates it
//! incrementally (binary-search insert/remove) instead of rebuilding
//! neighborhoods.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;

/// A stable identifier for an overlay node.
///
/// IDs are allocated by [`Graph::add_node`] and are **never reused**, so a
/// departed peer's ID cannot be confused with a later joiner's — essential
/// for churn experiments where per-peer wallets outlive topology changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

impl NodeId {
    /// The raw numeric value (useful for dense indexing in reports).
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an ID from its raw value.
    ///
    /// Only meaningful for values previously obtained via
    /// [`NodeId::raw`] on the same graph; probing a graph with arbitrary
    /// values is safe but will usually name an absent node.
    pub const fn from_raw(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors returned by graph mutations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The referenced node does not exist (or no longer exists).
    NoSuchNode(NodeId),
    /// Self-loops are not allowed in an overlay.
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NoSuchNode(id) => write!(f, "no such node: {id}"),
            GraphError::SelfLoop(id) => write!(f, "self-loop rejected at {id}"),
        }
    }
}

impl Error for GraphError {}

/// An undirected overlay graph with deterministic iteration order.
///
/// Node and neighbor iteration follow ascending [`NodeId`] order, so every
/// algorithm that walks the graph is reproducible.
///
/// ```
/// use scrip_topology::Graph;
///
/// # fn main() -> Result<(), scrip_topology::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b)?;
/// assert_eq!(g.degree(a), Some(1));
/// assert!(g.has_edge(a, b));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Graph {
    // The slot-map discipline below (id_to_slot + swap-remove with
    // moved-slot repointing) mirrors scrip-core's PeerArena; a fix to
    // the bookkeeping in one likely applies to the other.
    /// Dense slot → node ID (swap-removed on node removal).
    slot_ids: Vec<NodeId>,
    /// Raw node ID → slot; [`ABSENT`] marks removed/unknown IDs.
    id_to_slot: Vec<u32>,
    /// Slot → sorted neighbor IDs (the CSR-style row).
    adjacency: Vec<Vec<NodeId>>,
    /// Ascending ID list backing [`Graph::node_ids`]. May contain
    /// tombstones — IDs whose `id_to_slot` entry is [`ABSENT`] — left
    /// behind by [`Graph::remove_node`], which marks instead of
    /// memmoving the tail (a removal near the front of a million-node
    /// list would otherwise shift the whole suffix). Compacted once
    /// tombstones outnumber live entries, so removal is O(log n)
    /// amortized and iteration stays within 2× the live count.
    sorted_ids: Vec<NodeId>,
    /// Number of tombstones currently in `sorted_ids`.
    dead_sorted: usize,
    next_id: u64,
    edge_count: usize,
}

/// Slot sentinel for IDs that are not (or no longer) in the graph.
const ABSENT: u32 = u32::MAX;

/// Equality is semantic: same node set and same edges, plus the same ID
/// allocation cursor — independent of slot layout, so graphs that went
/// through different churn histories but describe the same overlay (and
/// would allocate the same next ID) compare equal.
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.next_id == other.next_id
            && self.edge_count == other.edge_count
            && self.node_ids().eq(other.node_ids())
            && self
                .node_ids()
                .all(|id| self.neighbor_slice(id) == other.neighbor_slice(id))
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` isolated nodes (IDs `0..n`).
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Graph {
            slot_ids: Vec::with_capacity(n),
            id_to_slot: Vec::with_capacity(n),
            adjacency: Vec::with_capacity(n),
            sorted_ids: Vec::with_capacity(n),
            dead_sorted: 0,
            next_id: 0,
            edge_count: 0,
        };
        for _ in 0..n {
            g.add_node();
        }
        g
    }

    /// The slot of a live node, if any.
    fn slot(&self, id: NodeId) -> Option<usize> {
        match self.id_to_slot.get(id.0 as usize) {
            Some(&s) if s != ABSENT => Some(s as usize),
            _ => None,
        }
    }

    /// Adds a node and returns its fresh, never-reused ID.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        debug_assert_eq!(self.id_to_slot.len() as u64, id.0);
        self.id_to_slot.push(self.slot_ids.len() as u32);
        self.slot_ids.push(id);
        self.adjacency.push(Vec::new());
        // Fresh IDs are the largest ever allocated: push keeps the order.
        self.sorted_ids.push(id);
        id
    }

    /// Removes a node and all incident edges, returning its former
    /// neighbors (ascending).
    ///
    /// # Errors
    /// Returns [`GraphError::NoSuchNode`] if the node is absent.
    pub fn remove_node(&mut self, id: NodeId) -> Result<Vec<NodeId>, GraphError> {
        let slot = self.slot(id).ok_or(GraphError::NoSuchNode(id))?;
        let neighbors = std::mem::take(&mut self.adjacency[slot]);
        for &nb in &neighbors {
            let nb_slot = self.slot(nb).expect("adjacency symmetric");
            let row = &mut self.adjacency[nb_slot];
            if let Ok(pos) = row.binary_search(&id) {
                row.remove(pos);
            }
        }
        self.edge_count -= neighbors.len();
        // Swap-remove the slot and repoint the node that moved into it.
        self.adjacency.swap_remove(slot);
        self.slot_ids.swap_remove(slot);
        if let Some(&moved) = self.slot_ids.get(slot) {
            self.id_to_slot[moved.0 as usize] = slot as u32;
        }
        self.id_to_slot[id.0 as usize] = ABSENT;
        // Tombstone the sorted-ID entry instead of memmoving the tail;
        // compact once the dead outnumber the living.
        self.dead_sorted += 1;
        if self.dead_sorted * 2 > self.sorted_ids.len() {
            let id_to_slot = &self.id_to_slot;
            self.sorted_ids
                .retain(|nid| id_to_slot[nid.0 as usize] != ABSENT);
            self.dead_sorted = 0;
        }
        Ok(neighbors)
    }

    /// Adds an undirected edge. Returns `true` if the edge was new.
    ///
    /// # Errors
    /// Returns [`GraphError::SelfLoop`] when `a == b` and
    /// [`GraphError::NoSuchNode`] when either endpoint is absent.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool, GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let slot_a = self.slot(a).ok_or(GraphError::NoSuchNode(a))?;
        let slot_b = self.slot(b).ok_or(GraphError::NoSuchNode(b))?;
        let Err(pos_a) = self.adjacency[slot_a].binary_search(&b) else {
            return Ok(false);
        };
        self.adjacency[slot_a].insert(pos_a, b);
        let pos_b = self.adjacency[slot_b]
            .binary_search(&a)
            .expect_err("adjacency symmetric");
        self.adjacency[slot_b].insert(pos_b, a);
        self.edge_count += 1;
        Ok(true)
    }

    /// Removes an undirected edge. Returns `true` if it existed.
    ///
    /// # Errors
    /// Returns [`GraphError::NoSuchNode`] when either endpoint is absent.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool, GraphError> {
        let slot_a = self.slot(a).ok_or(GraphError::NoSuchNode(a))?;
        let slot_b = self.slot(b).ok_or(GraphError::NoSuchNode(b))?;
        let Ok(pos_a) = self.adjacency[slot_a].binary_search(&b) else {
            return Ok(false);
        };
        self.adjacency[slot_a].remove(pos_a);
        let pos_b = self.adjacency[slot_b]
            .binary_search(&a)
            .expect("adjacency symmetric");
        self.adjacency[slot_b].remove(pos_b);
        self.edge_count -= 1;
        Ok(true)
    }

    /// Whether the node exists.
    pub fn has_node(&self, id: NodeId) -> bool {
        self.slot(id).is_some()
    }

    /// Whether an edge exists between `a` and `b`.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.slot(a)
            .map(|s| self.adjacency[s].binary_search(&b).is_ok())
            .unwrap_or(false)
    }

    /// The neighbors of `id` as a stable sorted slice, or [`None`] if the
    /// node is absent. This is the zero-copy view the simulation hot
    /// paths borrow; it stays valid until the next graph mutation.
    pub fn neighbor_slice(&self, id: NodeId) -> Option<&[NodeId]> {
        self.slot(id).map(|s| self.adjacency[s].as_slice())
    }

    /// The neighbors of `id` in ascending ID order, or [`None`] if the node
    /// is absent.
    pub fn neighbors(&self, id: NodeId) -> Option<impl Iterator<Item = NodeId> + '_> {
        self.neighbor_slice(id).map(|s| s.iter().copied())
    }

    /// The degree of `id`, or [`None`] if absent.
    pub fn degree(&self, id: NodeId) -> Option<usize> {
        self.slot(id).map(|s| self.adjacency[s].len())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.slot_ids.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Heap bytes reserved by the slot bookkeeping (slot ↔ ID maps and
    /// the sorted live-ID list), excluding adjacency rows. Capacities,
    /// not lengths — the allocator's view. See
    /// [`Graph::adjacency_heap_bytes`] for the row storage.
    pub fn slot_map_heap_bytes(&self) -> usize {
        self.slot_ids.capacity() * std::mem::size_of::<NodeId>()
            + self.id_to_slot.capacity() * std::mem::size_of::<u32>()
            + self.sorted_ids.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Heap bytes reserved by the CSR-style adjacency rows: each row's
    /// capacity × ID width, plus the outer `Vec`'s row headers. This is
    /// the degree-proportional part of the footprint (≈ `8 × degree`
    /// per peer) that the per-peer *state* budget in the arena layout
    /// audit accounts separately.
    pub fn adjacency_heap_bytes(&self) -> usize {
        let rows: usize = self
            .adjacency
            .iter()
            .map(|row| row.capacity() * std::mem::size_of::<NodeId>())
            .sum();
        rows + self.adjacency.capacity() * std::mem::size_of::<Vec<NodeId>>()
    }

    /// All node IDs in ascending order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.sorted_ids
            .iter()
            .copied()
            .filter(|&id| self.slot(id).is_some())
    }

    /// All edges as `(low, high)` pairs in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        // Tombstoned IDs have no neighbor slice, so they contribute
        // nothing without an explicit liveness filter.
        self.sorted_ids.iter().flat_map(move |&a| {
            self.neighbor_slice(a)
                .unwrap_or(&[])
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Whether every node can reach every other node (the empty graph is
    /// considered connected).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// The connected components, each a sorted vector of node IDs; the
    /// components themselves are sorted by their smallest member.
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let mut visited: BTreeSet<NodeId> = BTreeSet::new();
        let mut components = Vec::new();
        for start in self.node_ids() {
            if visited.contains(&start) {
                continue;
            }
            let mut component = Vec::new();
            let mut queue = VecDeque::from([start]);
            visited.insert(start);
            while let Some(node) = queue.pop_front() {
                component.push(node);
                if let Some(nbrs) = self.neighbors(node) {
                    for nb in nbrs {
                        if visited.insert(nb) {
                            queue.push_back(nb);
                        }
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// The raw value the next [`Graph::add_node`] call will allocate.
    ///
    /// Since IDs are handed out densely from zero and never reused,
    /// every ID ever allocated is `< next_raw_id()` — the watermark
    /// lets layered state (shard maps, wallet mirrors) detect freshly
    /// added nodes by comparing watermarks around a mutation.
    pub fn next_raw_id(&self) -> u64 {
        self.next_id
    }

    /// A dense index for the current node set: maps each live [`NodeId`] to
    /// `0..node_count()` in ascending ID order. Matrix-based analytics
    /// (transfer matrices, utilization vectors) use this to address rows.
    pub fn dense_index(&self) -> BTreeMap<NodeId, usize> {
        self.node_ids().enumerate().map(|(i, id)| (id, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).expect("valid edge");
        }
        (g, ids)
    }

    #[test]
    fn add_and_remove_nodes() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!(g.node_count(), 2);
        assert!(g.has_node(a));
        g.remove_node(a).expect("a exists");
        assert!(!g.has_node(a));
        assert!(g.has_node(b));
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn node_ids_are_never_reused() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.remove_node(a).expect("exists");
        let b = g.add_node();
        assert_ne!(a, b);
    }

    #[test]
    fn edges_are_symmetric() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert!(g.add_edge(a, b).expect("ok"));
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
        assert_eq!(g.edge_count(), 1);
        // Duplicate insertion is a no-op.
        assert!(!g.add_edge(b, a).expect("ok"));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = Graph::new();
        let a = g.add_node();
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn missing_nodes_rejected() {
        let mut g = Graph::new();
        let a = g.add_node();
        let ghost = NodeId(999);
        assert_eq!(g.add_edge(a, ghost), Err(GraphError::NoSuchNode(ghost)));
        assert_eq!(g.remove_edge(ghost, a), Err(GraphError::NoSuchNode(ghost)));
        assert_eq!(g.remove_node(ghost), Err(GraphError::NoSuchNode(ghost)));
    }

    #[test]
    fn remove_node_cleans_incident_edges() {
        let (mut g, ids) = path_graph(3);
        let removed_neighbors = g.remove_node(ids[1]).expect("exists");
        assert_eq!(removed_neighbors, vec![ids[0], ids[2]]);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(ids[0]), Some(0));
        assert_eq!(g.degree(ids[2]), Some(0));
    }

    #[test]
    fn remove_edge_roundtrip() {
        let (mut g, ids) = path_graph(2);
        assert!(g.remove_edge(ids[0], ids[1]).expect("ok"));
        assert!(!g.has_edge(ids[0], ids[1]));
        assert!(!g.remove_edge(ids[0], ids[1]).expect("ok"));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = Graph::new();
        let hub = g.add_node();
        let mut spokes: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        spokes.reverse();
        for &s in &spokes {
            g.add_edge(hub, s).expect("ok");
        }
        let nbrs: Vec<NodeId> = g.neighbors(hub).expect("exists").collect();
        let mut sorted = nbrs.clone();
        sorted.sort_unstable();
        assert_eq!(nbrs, sorted);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let (g, _) = path_graph(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b) in edges {
            assert!(a < b);
        }
    }

    #[test]
    fn connectivity() {
        let (mut g, ids) = path_graph(4);
        assert!(g.is_connected());
        g.remove_edge(ids[1], ids[2]).expect("ok");
        assert!(!g.is_connected());
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![ids[0], ids[1]]);
        assert_eq!(comps[1], vec![ids[2], ids[3]]);
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::new().is_connected());
    }

    #[test]
    fn dense_index_is_ascending() {
        let mut g = Graph::with_nodes(5);
        let ids: Vec<NodeId> = g.node_ids().collect();
        g.remove_node(ids[2]).expect("exists");
        let index = g.dense_index();
        assert_eq!(index.len(), 4);
        assert_eq!(index[&ids[0]], 0);
        assert_eq!(index[&ids[1]], 1);
        assert_eq!(index[&ids[3]], 2);
        assert_eq!(index[&ids[4]], 3);
    }

    #[test]
    fn neighbor_slice_is_sorted_and_tracks_mutations() {
        let mut g = Graph::new();
        let hub = g.add_node();
        let mut spokes: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        spokes.reverse();
        for &s in &spokes {
            g.add_edge(hub, s).expect("ok");
        }
        let slice = g.neighbor_slice(hub).expect("live");
        let mut sorted = slice.to_vec();
        sorted.sort_unstable();
        assert_eq!(slice, sorted.as_slice());
        // Slice agrees with the iterator view.
        let via_iter: Vec<NodeId> = g.neighbors(hub).expect("live").collect();
        assert_eq!(slice, via_iter.as_slice());
        let victim = sorted[2];
        g.remove_edge(hub, victim).expect("ok");
        assert!(!g.neighbor_slice(hub).expect("live").contains(&victim));
        assert_eq!(g.neighbor_slice(NodeId(999)), None);
    }

    #[test]
    fn slot_bookkeeping_survives_interleaved_churn() {
        let mut g = Graph::with_nodes(6);
        let ids: Vec<NodeId> = g.node_ids().collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).expect("ok");
        }
        // Remove from the middle (exercises swap-remove repointing), then
        // keep mutating through the moved slots.
        g.remove_node(ids[1]).expect("live");
        g.remove_node(ids[4]).expect("live");
        let fresh = g.add_node();
        g.add_edge(fresh, ids[0]).expect("ok");
        g.add_edge(fresh, ids[5]).expect("ok");
        let live: Vec<NodeId> = g.node_ids().collect();
        assert_eq!(live, vec![ids[0], ids[2], ids[3], ids[5], fresh]);
        assert_eq!(g.degree(ids[0]), Some(1));
        assert_eq!(g.degree(ids[2]), Some(1));
        assert_eq!(g.degree(ids[3]), Some(1));
        assert_eq!(g.degree(fresh), Some(2));
        assert!(g.has_edge(ids[5], fresh));
        assert!(!g.has_node(ids[1]));
        assert_eq!(
            g.edge_count(),
            g.node_ids()
                .map(|id| g.degree(id).expect("live"))
                .sum::<usize>()
                / 2
        );
    }

    #[test]
    fn equality_is_layout_independent() {
        // Same final overlay reached through different slot histories.
        let mut a = Graph::with_nodes(4);
        let ids: Vec<NodeId> = a.node_ids().collect();
        a.add_edge(ids[0], ids[2]).expect("ok");
        a.add_edge(ids[2], ids[3]).expect("ok");
        a.remove_node(ids[1]).expect("live");

        let mut b = Graph::with_nodes(4);
        b.remove_node(ids[1]).expect("live");
        b.add_edge(ids[2], ids[3]).expect("ok");
        b.add_edge(ids[0], ids[2]).expect("ok");

        assert_eq!(a, b);
        b.remove_edge(ids[0], ids[2]).expect("ok");
        assert_ne!(a, b);
    }

    #[test]
    fn removal_tombstones_instead_of_memmoving() {
        // Pin of the churn-leave cost model: `remove_node` must not
        // shift the sorted-ID suffix on every call (O(n) per leave).
        // Structurally that means the backing list keeps its length —
        // tombstones in place — until the amortized compaction point,
        // where it snaps back to exactly the live count.
        let n = 1_000;
        let mut g = Graph::with_nodes(n);
        let ids: Vec<NodeId> = g.node_ids().collect();
        // Remove nodes from the *front* — the worst case for a
        // memmove-based list — while staying under the compaction
        // threshold (dead ≤ half).
        for &id in ids.iter().take(n / 2) {
            g.remove_node(id).expect("live");
            assert_eq!(
                g.sorted_ids.len(),
                n,
                "a removal memmoved the sorted-ID list"
            );
        }
        assert_eq!(g.dead_sorted, n / 2);
        assert_eq!(g.node_count(), n - n / 2);
        // One more removal tips the balance and compacts to live-only.
        g.remove_node(ids[n / 2]).expect("live");
        assert_eq!(g.sorted_ids.len(), g.node_count());
        assert_eq!(g.dead_sorted, 0);
        // Iteration and lookups see only the living, in order.
        let live: Vec<NodeId> = g.node_ids().collect();
        assert_eq!(live, ids[n / 2 + 1..].to_vec());
        assert!(!g.has_node(ids[0]));
        assert!(g.has_node(ids[n - 1]));
    }

    #[test]
    fn tombstoned_graph_behaves_like_a_compact_one() {
        // Interleave removals (leaving tombstones) with edge mutations
        // and equality checks against a graph built compactly.
        let mut churned = Graph::with_nodes(8);
        let ids: Vec<NodeId> = churned.node_ids().collect();
        for w in ids.windows(2) {
            churned.add_edge(w[0], w[1]).expect("ok");
        }
        churned.remove_node(ids[2]).expect("live");
        churned.remove_node(ids[5]).expect("live");
        assert!(churned.dead_sorted > 0, "tombstones present");

        let mut compact = Graph::with_nodes(8);
        for w in ids.windows(2) {
            compact.add_edge(w[0], w[1]).expect("ok");
        }
        compact.remove_node(ids[5]).expect("live");
        compact.remove_node(ids[2]).expect("live");
        // Force the compact twin through its compaction point too.
        while compact.dead_sorted > 0 {
            let victim = compact.node_ids().next().expect("live");
            compact.remove_node(victim).expect("live");
            churned.remove_node(victim).expect("live");
        }
        assert_eq!(churned, compact);
        assert_eq!(
            churned.edges().collect::<Vec<_>>(),
            compact.edges().collect::<Vec<_>>()
        );
        assert_eq!(churned.dense_index(), compact.dense_index());
    }

    #[test]
    fn display_formats() {
        let mut g = Graph::new();
        let a = g.add_node();
        assert_eq!(a.to_string(), "n0");
        assert_eq!(GraphError::NoSuchNode(a).to_string(), "no such node: n0");
        assert_eq!(
            GraphError::SelfLoop(a).to_string(),
            "self-loop rejected at n0"
        );
    }
}

//! Property-based tests for overlay graphs and generators.

use proptest::prelude::*;
use scrip_des::SimRng;
use scrip_topology::churn::ChurnTopology;
use scrip_topology::generators::{self, ScaleFreeConfig};
use scrip_topology::metrics;
use scrip_topology::Graph;

proptest! {
    /// The handshake lemma holds under arbitrary edit sequences.
    #[test]
    fn degree_sum_equals_twice_edges(ops in prop::collection::vec((0u8..3, 0usize..20, 0usize..20), 1..200)) {
        let mut g = Graph::with_nodes(20);
        let ids: Vec<_> = g.node_ids().collect();
        for (op, a, b) in ops {
            match op {
                0 => { let _ = g.add_edge(ids[a], ids[b]); }
                1 => { let _ = g.remove_edge(ids[a], ids[b]); }
                _ => {}
            }
        }
        let degree_sum: usize = g.node_ids().filter_map(|id| g.degree(id)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    /// Scale-free overlays are connected with at least the minimum
    /// degree honoured on average.
    #[test]
    fn scale_free_always_connected(n in 10usize..150, seed in 0u64..50) {
        let mut rng = SimRng::seed_from_u64(seed);
        let config = ScaleFreeConfig::new(n).expect("valid");
        let g = generators::scale_free(&config, &mut rng).expect("generated");
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.is_connected());
    }

    /// Random regular graphs have exactly the requested degree.
    #[test]
    fn random_regular_exact(n in 4usize..40, d in 2usize..6, seed in 0u64..20) {
        prop_assume!(n * d % 2 == 0 && d < n);
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng).expect("generated");
        for id in g.node_ids() {
            prop_assert_eq!(g.degree(id), Some(d));
        }
    }

    /// Churn preserves graph invariants: no self-loops, symmetric edges,
    /// handshake lemma.
    #[test]
    fn churn_preserves_invariants(rounds in 1usize..100, seed in 0u64..30) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut g = generators::complete(10);
        let churn = ChurnTopology::new(5);
        for i in 0..rounds {
            if i % 2 == 0 {
                churn.join(&mut g, &mut rng);
            } else if g.node_count() > 2 {
                let ids: Vec<_> = g.node_ids().collect();
                let victim = ids[rng.index(ids.len())];
                churn.leave(&mut g, victim).expect("live");
            }
        }
        let degree_sum: usize = g.node_ids().filter_map(|id| g.degree(id)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        for id in g.node_ids() {
            prop_assert!(!g.has_edge(id, id));
        }
    }

    /// Mean degree matches the handshake identity.
    #[test]
    fn mean_degree_identity(n in 2usize..40, p in 0.0f64..1.0, seed in 0u64..20) {
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng).expect("generated");
        let expected = 2.0 * g.edge_count() as f64 / n as f64;
        prop_assert!((metrics::mean_degree(&g) - expected).abs() < 1e-12);
    }
}

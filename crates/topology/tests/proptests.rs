//! Property-based tests for overlay graphs and generators.

use proptest::prelude::*;
use scrip_des::SimRng;
use scrip_topology::churn::ChurnTopology;
use scrip_topology::generators::{self, ScaleFreeConfig};
use scrip_topology::metrics;
use scrip_topology::{Graph, Partition};

proptest! {
    /// The handshake lemma holds under arbitrary edit sequences.
    #[test]
    fn degree_sum_equals_twice_edges(ops in prop::collection::vec((0u8..3, 0usize..20, 0usize..20), 1..200)) {
        let mut g = Graph::with_nodes(20);
        let ids: Vec<_> = g.node_ids().collect();
        for (op, a, b) in ops {
            match op {
                0 => { let _ = g.add_edge(ids[a], ids[b]); }
                1 => { let _ = g.remove_edge(ids[a], ids[b]); }
                _ => {}
            }
        }
        let degree_sum: usize = g.node_ids().filter_map(|id| g.degree(id)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    /// Scale-free overlays are connected with at least the minimum
    /// degree honoured on average.
    #[test]
    fn scale_free_always_connected(n in 10usize..150, seed in 0u64..50) {
        let mut rng = SimRng::seed_from_u64(seed);
        let config = ScaleFreeConfig::new(n).expect("valid");
        let g = generators::scale_free(&config, &mut rng).expect("generated");
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.is_connected());
    }

    /// Random regular graphs have exactly the requested degree.
    #[test]
    fn random_regular_exact(n in 4usize..40, d in 2usize..6, seed in 0u64..20) {
        prop_assume!(n * d % 2 == 0 && d < n);
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng).expect("generated");
        for id in g.node_ids() {
            prop_assert_eq!(g.degree(id), Some(d));
        }
    }

    /// Churn preserves graph invariants: no self-loops, symmetric edges,
    /// handshake lemma.
    #[test]
    fn churn_preserves_invariants(rounds in 1usize..100, seed in 0u64..30) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut g = generators::complete(10);
        let churn = ChurnTopology::new(5);
        for i in 0..rounds {
            if i % 2 == 0 {
                churn.join(&mut g, &mut rng);
            } else if g.node_count() > 2 {
                let ids: Vec<_> = g.node_ids().collect();
                let victim = ids[rng.index(ids.len())];
                churn.leave(&mut g, victim).expect("live");
            }
        }
        let degree_sum: usize = g.node_ids().filter_map(|id| g.degree(id)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        for id in g.node_ids() {
            prop_assert!(!g.has_edge(id, id));
        }
    }

    /// Mean degree matches the handshake identity.
    #[test]
    fn mean_degree_identity(n in 2usize..40, p in 0.0f64..1.0, seed in 0u64..20) {
        let mut rng = SimRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng).expect("generated");
        let expected = 2.0 * g.edge_count() as f64 / n as f64;
        prop_assert!((metrics::mean_degree(&g) - expected).abs() < 1e-12);
    }

    /// `Partition::regions(k)` is a true partition on arbitrary graphs
    /// — including disconnected ones and graphs with ID gaps from
    /// churn: every node lands in exactly one region, region sizes hit
    /// the exact `n/k + (s < n % k)` balance targets, `shard_of` agrees
    /// with region membership, and the result is deterministic.
    #[test]
    fn partition_regions_is_a_true_partition(
        n in 1usize..80,
        p in 0.0f64..1.0,
        k in 1usize..10,
        departures in 0usize..10,
        seed in 0u64..30,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut g = generators::erdos_renyi(n, p, &mut rng).expect("generated");
        // Remove a few nodes so raw IDs have gaps (the post-churn shape
        // the sharded market partitions).
        let churn = ChurnTopology::new(3);
        for _ in 0..departures {
            if g.node_count() <= 1 {
                break;
            }
            let ids: Vec<_> = g.node_ids().collect();
            churn.leave(&mut g, ids[rng.index(ids.len())]).expect("live");
        }

        let part = Partition::regions(&g, k);
        prop_assert_eq!(part.shard_count(), k);
        prop_assert_eq!(part.node_count(), g.node_count());

        // Every node in exactly one region, and shard_of agrees.
        let mut assigned: Vec<_> = (0..k).flat_map(|s| part.region(s).iter().copied()).collect();
        assigned.sort_unstable();
        let mut expected: Vec<_> = g.node_ids().collect();
        expected.sort_unstable();
        prop_assert_eq!(&assigned, &expected);
        for s in 0..k {
            for &id in part.region(s) {
                prop_assert_eq!(part.shard_of(id), Some(s));
            }
        }

        // Exact balance targets: sizes differ by at most one.
        let nodes = g.node_count();
        for s in 0..k {
            prop_assert_eq!(part.region(s).len(), nodes / k + usize::from(s < nodes % k));
        }

        // Frontier nodes are exactly the members with a cross-shard
        // neighbor; the edge cut counts each cross edge once.
        let mut cut = 0usize;
        for id in g.node_ids() {
            let s = part.shard_of(id).expect("member");
            let crossing = g
                .neighbor_slice(id)
                .unwrap_or(&[])
                .iter()
                .filter(|&&nb| part.shard_of(nb) != Some(s))
                .count();
            cut += crossing;
            let on_frontier = part.frontier(s).contains(&id);
            prop_assert_eq!(on_frontier, crossing > 0);
        }
        prop_assert_eq!(part.edge_cut(), cut / 2);

        // RNG-free and ascending-ID: recomputing gives the identical
        // assignment.
        let again = Partition::regions(&g, k);
        for id in g.node_ids() {
            prop_assert_eq!(again.shard_of(id), part.shard_of(id));
        }
    }
}

//! Property-based tests for the inequality metrics.

use proptest::prelude::*;
use scrip_econ::inequality::{hoover, theil};
use scrip_econ::lorenz::LorenzCurve;
use scrip_econ::{gini, gini_u64, IncrementalGini, WealthSnapshot};

fn wealth_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e6, 2..200)
}

/// One random wallet operation for the incremental-Gini equivalence
/// suite: mint into a wallet, burn a wallet, or transfer between two.
#[derive(Clone, Copy, Debug)]
enum WalletOp {
    /// `(wallet index hint, amount)` — creates the wallet if the hint
    /// lands on a fresh index.
    Mint(usize, u64),
    /// Wallet index hint to burn.
    Burn(usize),
    /// `(from hint, to hint, amount)` — clamped to the payer's balance.
    Transfer(usize, usize, u64),
}

fn op_strategy() -> impl Strategy<Value = WalletOp> {
    (0u8..3, 0usize..40, 0usize..40, 0u64..5_000).prop_map(|(kind, a, b, amount)| match kind {
        0 => WalletOp::Mint(a, amount),
        1 => WalletOp::Burn(a),
        _ => WalletOp::Transfer(a, b, amount),
    })
}

proptest! {
    /// Gini is always within [0, 1).
    #[test]
    fn gini_bounded(v in wealth_vec()) {
        let g = gini(&v).expect("valid input");
        prop_assert!((0.0..1.0).contains(&g), "gini {g}");
    }

    /// Gini is scale-invariant.
    #[test]
    fn gini_scale_invariant(v in wealth_vec(), k in 0.001f64..1000.0) {
        let g1 = gini(&v).expect("valid");
        let scaled: Vec<f64> = v.iter().map(|x| x * k).collect();
        let g2 = gini(&scaled).expect("valid");
        prop_assert!((g1 - g2).abs() < 1e-9, "{g1} vs {g2}");
    }

    /// Gini is invariant under population replication.
    #[test]
    fn gini_replication_invariant(v in prop::collection::vec(0.0f64..1e6, 2..50)) {
        let g1 = gini(&v).expect("valid");
        let mut doubled = v.clone();
        doubled.extend_from_slice(&v);
        let g2 = gini(&doubled).expect("valid");
        prop_assert!((g1 - g2).abs() < 1e-9, "{g1} vs {g2}");
    }

    /// A uniform transfer from each peer to the mean (partial
    /// equalization) never increases the Gini (Pigou–Dalton flavour).
    #[test]
    fn gini_decreases_under_equalization(v in wealth_vec(), alpha in 0.0f64..1.0) {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let squeezed: Vec<f64> = v.iter().map(|x| x + alpha * (mean - x)).collect();
        let g1 = gini(&v).expect("valid");
        let g2 = gini(&squeezed).expect("valid");
        prop_assert!(g2 <= g1 + 1e-9, "equalized {g2} > original {g1}");
    }

    /// Lorenz curves are monotone, convex, within the unit square, and
    /// their Gini matches the direct formula.
    #[test]
    fn lorenz_is_well_formed(v in wealth_vec()) {
        let c = LorenzCurve::from_samples(&v).expect("valid");
        let pts = c.points();
        prop_assert_eq!(pts.first().copied(), Some((0.0, 0.0)));
        let (lx, ly) = pts.last().copied().expect("non-empty");
        prop_assert!((lx - 1.0).abs() < 1e-12 && (ly - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1 - 1e-12);
        }
        let direct = gini(&v).expect("valid");
        prop_assert!((c.gini() - direct).abs() < 1e-9);
    }

    /// All inequality indices agree that constants are perfectly equal.
    #[test]
    fn indices_vanish_on_equal_wealth(x in 0.1f64..1e6, n in 2usize..100) {
        let v = vec![x; n];
        prop_assert!(gini(&v).expect("valid") < 1e-12);
        prop_assert!(theil(&v).expect("valid").abs() < 1e-9);
        prop_assert!(hoover(&v).expect("valid") < 1e-12);
    }

    /// The incremental (Fenwick-histogram) Gini stays equivalent to the
    /// sort-based `gini_u64` oracle under arbitrary interleaved
    /// mint/burn/transfer sequences — the exact mutation mix the ledger
    /// drives it with. Tolerance 1e-12; in practice the two are
    /// bit-identical at these magnitudes.
    #[test]
    fn incremental_gini_matches_oracle_under_wallet_ops(
        initial in prop::collection::vec(0u64..2_000, 2..30),
        ops in prop::collection::vec(op_strategy(), 0..120),
    ) {
        let mut acc = IncrementalGini::new();
        let mut wallets: Vec<u64> = initial.clone();
        for &w in &wallets {
            acc.insert(w);
        }
        for op in ops {
            match op {
                WalletOp::Mint(hint, amount) => {
                    if hint < wallets.len() {
                        let old = wallets[hint];
                        wallets[hint] += amount;
                        acc.update(old, old + amount);
                    } else {
                        wallets.push(amount);
                        acc.insert(amount);
                    }
                }
                WalletOp::Burn(hint) => {
                    if !wallets.is_empty() {
                        let victim = wallets.swap_remove(hint % wallets.len());
                        acc.remove(victim);
                    }
                }
                WalletOp::Transfer(from, to, amount) => {
                    if wallets.len() >= 2 {
                        let from = from % wallets.len();
                        let mut to = to % wallets.len();
                        if from == to {
                            to = (to + 1) % wallets.len();
                        }
                        let amount = amount.min(wallets[from]);
                        let (old_from, old_to) = (wallets[from], wallets[to]);
                        wallets[from] -= amount;
                        wallets[to] += amount;
                        acc.update(old_from, old_from - amount);
                        acc.update(old_to, old_to + amount);
                    }
                }
            }
            prop_assert_eq!(acc.len(), wallets.len());
            prop_assert_eq!(acc.total(), wallets.iter().sum::<u64>());
            match (acc.gini(), gini_u64(&wallets)) {
                (Some(inc), Ok(oracle)) => prop_assert!(
                    (inc - oracle).abs() < 1e-12,
                    "incremental {} vs oracle {} over {:?}", inc, oracle, wallets
                ),
                (None, Err(_)) => {} // both agree the set is empty
                (inc, oracle) => prop_assert!(
                    false,
                    "presence mismatch: incremental {:?}, oracle {:?}", inc, oracle.is_ok()
                ),
            }
        }
    }

    /// Snapshot totals are consistent.
    #[test]
    fn snapshot_consistency(v in wealth_vec()) {
        let s = WealthSnapshot::from_values(&v).expect("valid");
        prop_assert_eq!(s.n, v.len());
        prop_assert!((s.total - v.iter().sum::<f64>()).abs() < 1e-6);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!((0.0..=1.0).contains(&s.top_decile_share));
    }
}

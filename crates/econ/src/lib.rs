//! # scrip-econ — wealth-distribution and inequality metrics
//!
//! Measurement toolkit for the `scrip` reproduction of Qiu et al.,
//! *"Exploring the Sustainability of Credit-incentivized Peer-to-Peer
//! Content Distribution"* (ICDCSW 2012).
//!
//! The paper quantifies wealth condensation with the **Gini index**
//! computed from the **Lorenz curve** of the credit distribution
//! (Sec. V-B2, Figs. 1–3 and 7–11). This crate implements those, plus
//! additional inequality indices (Theil, Hoover, Atkinson) used as
//! robustness checks, a compact [`WealthSnapshot`] summary for
//! experiment logs, and cross-replication aggregation ([`aggregate`]) for
//! batch experiments that repeat a configuration over several seeds.
//!
//! ## Example
//!
//! ```
//! use scrip_econ::{gini, lorenz::LorenzCurve};
//!
//! # fn main() -> Result<(), scrip_econ::EconError> {
//! // Perfect equality.
//! assert_eq!(gini(&[5.0, 5.0, 5.0, 5.0])?, 0.0);
//! // One peer holds everything: Gini = (n-1)/n.
//! let g = gini(&[0.0, 0.0, 0.0, 12.0])?;
//! assert!((g - 0.75).abs() < 1e-12);
//! // The Lorenz curve of the same data.
//! let curve = LorenzCurve::from_samples(&[0.0, 0.0, 0.0, 12.0])?;
//! assert_eq!(curve.share_of_bottom(0.75), 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
mod error;
mod gini;
pub mod incremental;
pub mod inequality;
pub mod lorenz;
pub mod snapshot;

pub use aggregate::SummaryStats;
pub use error::EconError;
pub use gini::{gini, gini_from_pmf, gini_u64};
pub use incremental::IncrementalGini;
pub use lorenz::LorenzCurve;
pub use snapshot::WealthSnapshot;

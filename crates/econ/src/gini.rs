//! The Gini index (paper Sec. V-B2).
//!
//! The paper defines the Gini index as the ratio between (a) the area
//! between the perfect-equality line and the Lorenz curve and (b) the
//! total area under the equality line. It is 0 for perfect equality and
//! approaches 1 as wealth condenses onto a single peer.

use crate::error::EconError;

/// Validates a wealth sample: non-empty, finite, non-negative.
fn validate(values: &[f64]) -> Result<f64, EconError> {
    if values.is_empty() {
        return Err(EconError::Empty);
    }
    let mut total = 0.0;
    for (i, &v) in values.iter().enumerate() {
        if !v.is_finite() || v < 0.0 {
            return Err(EconError::InvalidValue(format!("value[{i}] = {v}")));
        }
        total += v;
    }
    Ok(total)
}

/// The Gini index of a wealth sample.
///
/// Uses the sorted-rank identity `G = (2 Σ_i i·x_(i)) / (n Σ x) − (n+1)/n`
/// (with 1-based ranks over ascending `x_(i)`), which equals the paper's
/// Lorenz-area definition. An all-zero sample counts as perfect equality
/// (`G = 0`).
///
/// # Errors
/// Returns [`EconError`] for empty samples or negative/non-finite values.
///
/// ```
/// use scrip_econ::gini;
/// # fn main() -> Result<(), scrip_econ::EconError> {
/// let g = gini(&[1.0, 2.0, 3.0, 4.0])?;
/// assert!((g - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn gini(values: &[f64]) -> Result<f64, EconError> {
    let total = validate(values)?;
    if total <= 0.0 {
        return Ok(0.0);
    }
    let n = values.len();
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    Ok((2.0 * weighted / (n as f64 * total) - (n as f64 + 1.0) / n as f64).max(0.0))
}

/// The Gini index of integer credit balances (the native type of wallets).
///
/// # Errors
/// Returns [`EconError::Empty`] for an empty sample.
pub fn gini_u64(values: &[u64]) -> Result<f64, EconError> {
    if values.is_empty() {
        return Err(EconError::Empty);
    }
    let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    gini(&as_f64)
}

/// The Gini index of a *distribution*: `pmf[b]` is the probability that a
/// peer holds `b` credits. Computed in O(len) from the Lorenz curve of
/// the distribution. Returns 0 for a distribution with zero mean.
///
/// # Errors
/// Returns [`EconError`] if the PMF is empty, has negative/non-finite
/// entries, or its mass deviates from 1 by more than `1e-6`.
pub fn gini_from_pmf(pmf: &[f64]) -> Result<f64, EconError> {
    if pmf.is_empty() {
        return Err(EconError::Empty);
    }
    let mut mass = 0.0;
    let mut mean = 0.0;
    for (b, &p) in pmf.iter().enumerate() {
        if !p.is_finite() || p < 0.0 {
            return Err(EconError::InvalidValue(format!("pmf[{b}] = {p}")));
        }
        mass += p;
        mean += b as f64 * p;
    }
    if (mass - 1.0).abs() > 1e-6 {
        return Err(EconError::InvalidParameter(format!(
            "pmf mass {mass} deviates from 1"
        )));
    }
    if mean <= 0.0 {
        return Ok(0.0);
    }
    // Trapezoid rule over the Lorenz curve: G = 1 − Σ (F_k − F_{k−1})(L_k + L_{k−1}).
    let mut cum_pop_prev = 0.0;
    let mut cum_wealth_prev = 0.0;
    let mut area2 = 0.0; // twice the area under the Lorenz curve
    for (b, &p) in pmf.iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        let cum_pop = cum_pop_prev + p;
        let cum_wealth = cum_wealth_prev + b as f64 * p / mean;
        area2 += (cum_pop - cum_pop_prev) * (cum_wealth + cum_wealth_prev);
        cum_pop_prev = cum_pop;
        cum_wealth_prev = cum_wealth;
    }
    Ok((1.0 - area2).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_zero() {
        assert_eq!(gini(&[7.0; 10]).expect("valid"), 0.0);
        assert_eq!(gini(&[0.0; 10]).expect("valid"), 0.0, "all broke = equal");
    }

    #[test]
    fn single_owner_is_n_minus_one_over_n() {
        for n in [2usize, 5, 100] {
            let mut v = vec![0.0; n];
            v[0] = 42.0;
            let g = gini(&v).expect("valid");
            let expected = (n as f64 - 1.0) / n as f64;
            assert!((g - expected).abs() < 1e-12, "n={n}: {g} vs {expected}");
        }
    }

    #[test]
    fn known_small_case() {
        // {1,2,3,4}: mean 2.5, mean abs diff = 2*(1+2+3+1+2+1)/16 = 1.25,
        // G = 1.25/(2*2.5) = 0.25.
        let g = gini(&[4.0, 1.0, 3.0, 2.0]).expect("valid");
        assert!((g - 0.25).abs() < 1e-12);
    }

    #[test]
    fn scale_invariance() {
        let v = [1.0, 5.0, 2.0, 9.0, 0.5];
        let g1 = gini(&v).expect("valid");
        let scaled: Vec<f64> = v.iter().map(|x| x * 1000.0).collect();
        let g2 = gini(&scaled).expect("valid");
        assert!((g1 - g2).abs() < 1e-12);
    }

    #[test]
    fn replication_invariance() {
        let v = [1.0, 2.0, 7.0];
        let mut rep = Vec::new();
        for _ in 0..4 {
            rep.extend_from_slice(&v);
        }
        let g1 = gini(&v).expect("valid");
        let g2 = gini(&rep).expect("valid");
        assert!((g1 - g2).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert_eq!(gini(&[]), Err(EconError::Empty));
        assert!(gini(&[1.0, -2.0]).is_err());
        assert!(gini(&[f64::NAN]).is_err());
        assert!(gini(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn u64_wrapper_matches() {
        let g1 = gini_u64(&[1, 2, 3, 4]).expect("valid");
        let g2 = gini(&[1.0, 2.0, 3.0, 4.0]).expect("valid");
        assert_eq!(g1, g2);
        assert_eq!(gini_u64(&[]), Err(EconError::Empty));
    }

    #[test]
    fn pmf_gini_degenerate_distribution() {
        // All peers hold exactly 3 credits: perfect equality.
        let pmf = [0.0, 0.0, 0.0, 1.0];
        assert_eq!(gini_from_pmf(&pmf).expect("valid"), 0.0);
        // All peers hold 0: zero mean, defined as 0.
        assert_eq!(gini_from_pmf(&[1.0]).expect("valid"), 0.0);
    }

    #[test]
    fn pmf_gini_matches_sample_gini_on_two_point_distribution() {
        // Half the population at 0, half at 10.
        let pmf = {
            let mut v = vec![0.0; 11];
            v[0] = 0.5;
            v[10] = 0.5;
            v
        };
        let from_pmf = gini_from_pmf(&pmf).expect("valid");
        // Large sample equivalent.
        let mut sample = vec![0.0; 5000];
        sample.extend(vec![10.0; 5000]);
        let from_sample = gini(&sample).expect("valid");
        assert!(
            (from_pmf - from_sample).abs() < 1e-3,
            "pmf {from_pmf} vs sample {from_sample}"
        );
    }

    #[test]
    fn pmf_gini_geometric_closed_form() {
        // Geometric with success prob s on {0,1,...}: Gini = 1/(1+q) with
        // q = 1−s... derived: G = (1−s)/(2−s)·... use the exact result
        // G = q/( (1+q) (1−q) · μ ) — simpler to cross-check numerically
        // against the sample formula via enumeration.
        let s: f64 = 0.2;
        let q = 1.0 - s;
        let len = 400;
        let mut pmf: Vec<f64> = (0..len).map(|b| s * q.powi(b)).collect();
        let tail: f64 = 1.0 - pmf.iter().sum::<f64>();
        pmf[len as usize - 1] += tail; // fold the tiny tail in
        let g = gini_from_pmf(&pmf).expect("valid");
        // E|X−Y| = 2q/(s(1+q)), μ = q/s ⇒ G = 1/(1+q).
        let expected = 1.0 / (1.0 + q);
        assert!((g - expected).abs() < 1e-3, "gini {g} vs {expected}");
    }

    #[test]
    fn pmf_gini_validation() {
        assert_eq!(gini_from_pmf(&[]), Err(EconError::Empty));
        assert!(gini_from_pmf(&[0.5, -0.5, 1.0]).is_err());
        assert!(gini_from_pmf(&[0.5, 0.2]).is_err(), "mass 0.7 rejected");
    }

    #[test]
    fn condensed_pmf_has_high_gini() {
        // 99% of peers broke, 1% holding 100 each.
        let mut pmf = vec![0.0; 101];
        pmf[0] = 0.99;
        pmf[100] = 0.01;
        let g = gini_from_pmf(&pmf).expect("valid");
        assert!(g > 0.98, "gini {g}");
    }
}

//! Lorenz curves (paper Fig. 2).
//!
//! The Lorenz curve plots, for each bottom fraction `p` of the population
//! (sorted poorest-first), the fraction `L(p)` of total wealth that
//! fraction holds. Perfect equality is the 45° line `L(p) = p`; the Gini
//! index is twice the area between the equality line and the curve.

use crate::error::EconError;

/// A Lorenz curve: piecewise-linear, convex, from `(0,0)` to `(1,1)`.
#[derive(Clone, Debug, PartialEq)]
pub struct LorenzCurve {
    /// Curve vertices `(population share, wealth share)`, starting at
    /// `(0,0)` and ending at `(1,1)`, with both coordinates
    /// non-decreasing.
    points: Vec<(f64, f64)>,
}

impl LorenzCurve {
    /// Builds the curve from a wealth sample (one value per peer).
    ///
    /// # Errors
    /// Returns [`EconError`] for empty samples or negative/non-finite
    /// values. An all-zero sample yields the equality line.
    pub fn from_samples(values: &[f64]) -> Result<Self, EconError> {
        if values.is_empty() {
            return Err(EconError::Empty);
        }
        let mut total = 0.0;
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(EconError::InvalidValue(format!("value[{i}] = {v}")));
            }
            total += v;
        }
        let n = values.len();
        if total <= 0.0 {
            return Ok(LorenzCurve {
                points: vec![(0.0, 0.0), (1.0, 1.0)],
            });
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
        let mut points = Vec::with_capacity(n + 1);
        points.push((0.0, 0.0));
        let mut cum = 0.0;
        for (i, &v) in sorted.iter().enumerate() {
            cum += v;
            points.push(((i + 1) as f64 / n as f64, cum / total));
        }
        Ok(LorenzCurve { points })
    }

    /// Builds the curve from integer credit balances.
    ///
    /// # Errors
    /// Returns [`EconError::Empty`] for an empty sample.
    pub fn from_samples_u64(values: &[u64]) -> Result<Self, EconError> {
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        LorenzCurve::from_samples(&as_f64)
    }

    /// Builds the curve of a *distribution*: `pmf[b]` is the probability
    /// of holding `b` credits (paper Fig. 2 plots exactly this for the
    /// PMF of Eq. 8).
    ///
    /// # Errors
    /// Returns [`EconError`] if the PMF is empty, has invalid entries, or
    /// its mass deviates from 1 by more than `1e-6`.
    pub fn from_pmf(pmf: &[f64]) -> Result<Self, EconError> {
        if pmf.is_empty() {
            return Err(EconError::Empty);
        }
        let mut mass = 0.0;
        let mut mean = 0.0;
        for (b, &p) in pmf.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(EconError::InvalidValue(format!("pmf[{b}] = {p}")));
            }
            mass += p;
            mean += b as f64 * p;
        }
        if (mass - 1.0).abs() > 1e-6 {
            return Err(EconError::InvalidParameter(format!(
                "pmf mass {mass} deviates from 1"
            )));
        }
        if mean <= 0.0 {
            return Ok(LorenzCurve {
                points: vec![(0.0, 0.0), (1.0, 1.0)],
            });
        }
        let mut points = Vec::with_capacity(pmf.len() + 1);
        points.push((0.0, 0.0));
        let mut cum_pop = 0.0;
        let mut cum_wealth = 0.0;
        for (b, &p) in pmf.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            cum_pop += p;
            cum_wealth += b as f64 * p / mean;
            points.push((cum_pop.min(1.0), cum_wealth.min(1.0)));
        }
        // Snap the endpoint exactly.
        if let Some(last) = points.last_mut() {
            *last = (1.0, 1.0);
        }
        Ok(LorenzCurve { points })
    }

    /// The curve vertices, from `(0,0)` to `(1,1)`.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Linear interpolation of `L(p)`: the wealth share of the poorest
    /// fraction `p` of peers.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    pub fn share_of_bottom(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        let pts = &self.points;
        if p <= 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return 1.0;
        }
        let idx = pts.partition_point(|&(x, _)| x < p);
        let (x1, y1) = pts[idx.saturating_sub(1)];
        let (x2, y2) = pts[idx.min(pts.len() - 1)];
        if x2 <= x1 {
            return y2;
        }
        y1 + (y2 - y1) * (p - x1) / (x2 - x1)
    }

    /// Wealth share of the richest fraction `p` (e.g. `top_share(0.01)` =
    /// top-1% share).
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    pub fn top_share(&self, p: f64) -> f64 {
        1.0 - self.share_of_bottom(1.0 - p)
    }

    /// The Gini index: twice the area between the equality line and the
    /// curve (trapezoid rule over the vertices, exact for the
    /// piecewise-linear curve).
    pub fn gini(&self) -> f64 {
        let mut area2 = 0.0;
        for w in self.points.windows(2) {
            let (x1, y1) = w[0];
            let (x2, y2) = w[1];
            area2 += (x2 - x1) * (y1 + y2);
        }
        (1.0 - area2).clamp(0.0, 1.0)
    }

    /// Samples the curve at `k+1` evenly spaced population shares
    /// `0, 1/k, …, 1` — convenient for plotting/CSV output.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn sample(&self, k: usize) -> Vec<(f64, f64)> {
        assert!(k > 0, "need at least one segment");
        (0..=k)
            .map(|i| {
                let p = i as f64 / k as f64;
                (p, self.share_of_bottom(p))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gini;

    #[test]
    fn equality_line_for_uniform_sample() {
        let c = LorenzCurve::from_samples(&[3.0; 5]).expect("valid");
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            assert!((c.share_of_bottom(p) - p).abs() < 1e-12);
        }
        assert_eq!(c.gini(), 0.0);
    }

    #[test]
    fn all_zero_sample_is_equality() {
        let c = LorenzCurve::from_samples(&[0.0; 4]).expect("valid");
        assert_eq!(c.gini(), 0.0);
        assert!((c.share_of_bottom(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_owner_curve() {
        let c = LorenzCurve::from_samples(&[0.0, 0.0, 0.0, 8.0]).expect("valid");
        assert_eq!(c.share_of_bottom(0.75), 0.0);
        assert!((c.share_of_bottom(0.875) - 0.5).abs() < 1e-12);
        assert_eq!(c.share_of_bottom(1.0), 1.0);
        assert!((c.top_share(0.25) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gini_matches_sample_gini() {
        let v = [1.0, 4.0, 2.0, 8.0, 0.0, 3.0];
        let from_curve = LorenzCurve::from_samples(&v).expect("valid").gini();
        let direct = gini(&v).expect("valid");
        assert!(
            (from_curve - direct).abs() < 1e-12,
            "curve {from_curve} vs direct {direct}"
        );
    }

    #[test]
    fn curve_is_monotone_and_convex() {
        let v = [5.0, 1.0, 9.0, 2.0, 2.0, 7.0, 0.5];
        let c = LorenzCurve::from_samples(&v).expect("valid");
        let pts = c.points();
        let mut prev_slope = -1.0;
        for w in pts.windows(2) {
            let (x1, y1) = w[0];
            let (x2, y2) = w[1];
            assert!(x2 >= x1 && y2 >= y1, "monotonicity violated");
            let slope = (y2 - y1) / (x2 - x1).max(1e-15);
            assert!(slope >= prev_slope - 1e-9, "convexity violated");
            prev_slope = slope;
        }
        assert_eq!(pts.first(), Some(&(0.0, 0.0)));
        assert_eq!(pts.last(), Some(&(1.0, 1.0)));
    }

    #[test]
    fn curve_below_equality_line() {
        let v = [1.0, 2.0, 3.0, 10.0];
        let c = LorenzCurve::from_samples(&v).expect("valid");
        for i in 1..10 {
            let p = i as f64 / 10.0;
            assert!(c.share_of_bottom(p) <= p + 1e-12);
        }
    }

    #[test]
    fn from_pmf_matches_from_samples() {
        // Distribution: P(0) = 0.5, P(4) = 0.5.
        let mut pmf = vec![0.0; 5];
        pmf[0] = 0.5;
        pmf[4] = 0.5;
        let c_pmf = LorenzCurve::from_pmf(&pmf).expect("valid");
        let mut sample = vec![0.0; 500];
        sample.extend(vec![4.0; 500]);
        let c_s = LorenzCurve::from_samples(&sample).expect("valid");
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            assert!(
                (c_pmf.share_of_bottom(p) - c_s.share_of_bottom(p)).abs() < 1e-9,
                "mismatch at p = {p}"
            );
        }
    }

    #[test]
    fn from_pmf_zero_mean_is_equality() {
        let c = LorenzCurve::from_pmf(&[1.0]).expect("valid");
        assert_eq!(c.gini(), 0.0);
    }

    #[test]
    fn validation() {
        assert_eq!(LorenzCurve::from_samples(&[]), Err(EconError::Empty));
        assert!(LorenzCurve::from_samples(&[-1.0]).is_err());
        assert!(LorenzCurve::from_pmf(&[0.9]).is_err());
        assert!(LorenzCurve::from_pmf(&[1.5, -0.5]).is_err());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn share_of_bottom_out_of_range_panics() {
        let c = LorenzCurve::from_samples(&[1.0, 2.0]).expect("valid");
        c.share_of_bottom(1.5);
    }

    #[test]
    fn sample_grid() {
        let c = LorenzCurve::from_samples(&[1.0, 1.0, 2.0]).expect("valid");
        let grid = c.sample(4);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0], (0.0, 0.0));
        assert_eq!(grid[4], (1.0, 1.0));
    }

    #[test]
    fn u64_constructor() {
        let c = LorenzCurve::from_samples_u64(&[0, 0, 8]).expect("valid");
        assert!((c.gini() - 2.0 / 3.0).abs() < 1e-12);
    }
}

//! Incremental Gini: O(log C) per wealth update, O(1) per sample.
//!
//! The market simulators used to recompute the Gini index from a freshly
//! allocated, freshly sorted balance vector at every sample — O(n log n)
//! with n the population. [`IncrementalGini`] instead maintains the Gini
//! index *online* under single-wallet updates:
//!
//! * a Fenwick (binary indexed) tree over the **wealth histogram**
//!   (value → count, value → mass) answers "how many wallets hold ≤ v,
//!   and how much do they hold" in O(log C), C = largest tracked wealth;
//! * the total pairwise absolute difference `D = Σᵢⱼ |xᵢ − xⱼ|` is kept
//!   exactly in a `u128` and adjusted per update from those prefix
//!   queries;
//! * a sample is then pure arithmetic: `G = D / (2 n Σx)`.
//!
//! All bookkeeping is exact integer arithmetic (u64 histogram sums,
//! u128 difference total), so [`IncrementalGini::gini`] reproduces the
//! reference [`crate::gini_u64`] *bit for bit* whenever the rank-weighted
//! sum `Σ rank·x` stays below 2⁵³ (the f64 integer range) — which holds
//! for every market in this repo by orders of magnitude; beyond that the
//! two differ only in final-ulp rounding. The proptest suite pins the
//! equivalence under random mint/burn/transfer sequences.
//!
//! The ledger drives the accumulator through [`IncrementalGini::insert`],
//! [`IncrementalGini::remove`], and [`IncrementalGini::update`]; the
//! histogram grows geometrically when a wallet first exceeds the current
//! capacity (amortized O(1), and never during steady-state trading, whose
//! balances are bounded by the credit supply reserved up front).

/// A Fenwick tree over the wealth histogram: per value `v`, the number
/// of wallets holding exactly `v` and their combined wealth.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct WealthFenwick {
    /// Interleaved `(count, mass)` Fenwick nodes — one cache line per
    /// tree level. Index `i` corresponds to value `i − 1`.
    nodes: Vec<(u64, u64)>,
}

impl WealthFenwick {
    /// Capacity in representable values (0 ..= cap-1).
    fn cap(&self) -> u64 {
        self.nodes.len() as u64
    }

    fn grow_to(&mut self, cap: u64) {
        let old = WealthFenwick {
            nodes: std::mem::take(&mut self.nodes),
        };
        self.nodes = vec![(0, 0); cap as usize];
        // Re-insert per stored value: recover point counts from the old
        // tree by prefix differencing.
        let (mut prev_c, mut prev_m) = (0u64, 0u64);
        for v in 0..old.cap() {
            let (c, m) = old.prefix(v);
            if c > prev_c {
                self.add(v, (c - prev_c) as i64, (m - prev_m) as i64);
            }
            (prev_c, prev_m) = (c, m);
        }
    }

    /// Point update at `value`: `dc` wallets, `dm` wealth mass.
    fn add(&mut self, value: u64, dc: i64, dm: i64) {
        let mut i = value as usize + 1;
        while i <= self.nodes.len() {
            let node = &mut self.nodes[i - 1];
            node.0 = (node.0 as i64 + dc) as u64;
            node.1 = (node.1 as i64 + dm) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// `(wallets with value ≤ v, their combined wealth)`.
    fn prefix(&self, value: u64) -> (u64, u64) {
        let mut i = (value as usize + 1).min(self.nodes.len());
        let (mut c, mut m) = (0u64, 0u64);
        while i > 0 {
            let node = self.nodes[i - 1];
            c += node.0;
            m += node.1;
            i -= i & i.wrapping_neg();
        }
        (c, m)
    }
}

/// Online Gini index over a multiset of u64 wealth values.
///
/// ```
/// use scrip_econ::{gini_u64, IncrementalGini};
///
/// let mut acc = IncrementalGini::new();
/// for v in [1u64, 2, 3, 4] {
///     acc.insert(v);
/// }
/// assert_eq!(acc.gini(), Some(gini_u64(&[1, 2, 3, 4]).unwrap()));
/// acc.update(1, 4); // the poorest wallet earns 3 credits
/// assert_eq!(acc.gini(), Some(gini_u64(&[4, 2, 3, 4]).unwrap()));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IncrementalGini {
    hist: WealthFenwick,
    /// Number of tracked wallets.
    n: u64,
    /// Total tracked wealth `Σ x`.
    total: u64,
    /// Exact `Σᵢⱼ |xᵢ − xⱼ|` over ordered pairs.
    diff_sum: u128,
}

impl IncrementalGini {
    /// An empty accumulator.
    pub fn new() -> Self {
        IncrementalGini::default()
    }

    /// Pre-sizes the histogram for values up to `max_value` so later
    /// updates below that bound never reallocate. In a closed market the
    /// natural bound is the total credit supply.
    pub fn reserve_values(&mut self, max_value: u64) {
        let needed = max_value + 1;
        if needed > self.hist.cap() {
            self.hist.grow_to(needed.next_power_of_two());
        }
    }

    /// Number of tracked wallets.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Whether no wallets are tracked.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Total tracked wealth.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Heap bytes reserved by the wealth-histogram Fenwick tree. The
    /// tree is sized by the *maximum wealth value ever seen*, not by
    /// the number of wallets, so the arena layout audit reports it as a
    /// fixed cost rather than a per-peer one.
    pub fn heap_bytes(&self) -> usize {
        self.hist.nodes.capacity() * std::mem::size_of::<(u64, u64)>()
    }

    /// `Σ_x |v − x|` over the currently tracked multiset.
    fn abs_distance_sum(&self, v: u64) -> u128 {
        let (c_le, m_le) = self.hist.prefix(v);
        let c_gt = self.n - c_le;
        let m_gt = self.total - m_le;
        // Wallets at or below v contribute v−x each; above contribute x−v.
        (v as u128 * c_le as u128 - m_le as u128) + (m_gt as u128 - v as u128 * c_gt as u128)
    }

    /// Starts tracking a wallet holding `value`.
    pub fn insert(&mut self, value: u64) {
        self.reserve_values(value);
        self.diff_sum += 2 * self.abs_distance_sum(value);
        self.hist.add(value, 1, value as i64);
        self.n += 1;
        self.total += value;
    }

    /// Debug-build check that at least one wallet holding exactly
    /// `value` is tracked (callers own the wallet ↔ accumulator
    /// correspondence; a mismatched remove would silently corrupt the
    /// histogram in release builds).
    fn debug_assert_tracked(&self, _value: u64) {
        #[cfg(debug_assertions)]
        {
            let value = _value;
            let below = if value == 0 {
                0
            } else {
                self.hist.prefix(value - 1).0
            };
            debug_assert!(
                self.hist.prefix(value).0 > below,
                "no tracked wallet holds {value}"
            );
        }
    }

    /// Stops tracking a wallet holding `value`.
    ///
    /// # Panics
    /// Panics (in debug builds) if no wallet with `value` is tracked;
    /// callers own the wallet ↔ accumulator correspondence.
    pub fn remove(&mut self, value: u64) {
        debug_assert!(self.n > 0, "remove from empty accumulator");
        self.debug_assert_tracked(value);
        self.hist.add(value, -1, -(value as i64));
        self.n -= 1;
        self.total -= value;
        self.diff_sum -= 2 * self.abs_distance_sum(value);
    }

    /// Adjusts one wallet from `old` to `new` (a transfer touches two
    /// wallets → two `update` calls).
    pub fn update(&mut self, old: u64, new: u64) {
        if old == new {
            return;
        }
        self.reserve_values(new);
        self.debug_assert_tracked(old);
        // Take the wallet out so the distance sums exclude it.
        self.hist.add(old, -1, -(old as i64));
        self.n -= 1;
        self.total -= old;
        let gained = self.abs_distance_sum(new);
        let lost = self.abs_distance_sum(old);
        self.diff_sum = self.diff_sum + 2 * gained - 2 * lost;
        self.hist.add(new, 1, new as i64);
        self.n += 1;
        self.total += new;
    }

    /// The Gini index of the tracked wealth values, or [`None`] when no
    /// wallet is tracked. An all-zero population counts as perfect
    /// equality, mirroring [`crate::gini_u64`].
    pub fn gini(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        if self.total == 0 {
            return Some(0.0);
        }
        // D = 4·Σ rank·x − 2(n+1)·Σx  ⇒  Σ rank·x = (D + 2(n+1)Σx) / 4,
        // exactly divisible because the left side is an integer. Feeding
        // that through the reference formula keeps bit-compatibility with
        // `gini_u64` (which accumulates the same integer in f64).
        let weighted = (self.diff_sum + 2 * (self.n as u128 + 1) * self.total as u128) / 4;
        let n = self.n as f64;
        let total = self.total as f64;
        Some((2.0 * weighted as f64 / (n * total) - (n + 1.0) / n).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gini_u64;

    fn reference(values: &[u64]) -> f64 {
        gini_u64(values).expect("non-empty")
    }

    #[test]
    fn matches_reference_on_small_sets() {
        let mut acc = IncrementalGini::new();
        let mut values = Vec::new();
        for v in [5u64, 0, 3, 3, 12, 7, 0, 1] {
            acc.insert(v);
            values.push(v);
            assert_eq!(acc.gini(), Some(reference(&values)), "after insert {v}");
        }
        assert_eq!(acc.len(), 8);
        assert_eq!(acc.total(), 31);
    }

    #[test]
    fn empty_and_degenerate() {
        let mut acc = IncrementalGini::new();
        assert_eq!(acc.gini(), None);
        assert!(acc.is_empty());
        acc.insert(0);
        acc.insert(0);
        assert_eq!(acc.gini(), Some(0.0), "all broke = perfect equality");
        acc.insert(9);
        assert_eq!(acc.gini(), Some(reference(&[0, 0, 9])));
        acc.remove(9);
        acc.remove(0);
        acc.remove(0);
        assert_eq!(acc.gini(), None);
        assert_eq!(acc.total(), 0);
    }

    #[test]
    fn update_tracks_transfers() {
        let mut acc = IncrementalGini::new();
        let mut values = vec![10u64, 10, 10, 10];
        for &v in &values {
            acc.insert(v);
        }
        // Transfer 4 credits from wallet 0 to wallet 1.
        acc.update(10, 6);
        acc.update(10, 14);
        values[0] = 6;
        values[1] = 14;
        assert_eq!(acc.gini(), Some(reference(&values)));
        // No-op update changes nothing.
        let before = acc.clone();
        acc.update(6, 6);
        assert_eq!(acc, before);
    }

    #[test]
    fn histogram_growth_preserves_state() {
        let mut acc = IncrementalGini::new();
        for v in [1u64, 2, 3] {
            acc.insert(v);
        }
        // Force several geometric growths.
        acc.insert(1_000);
        acc.update(1_000, 100_000);
        let values = [1u64, 2, 3, 100_000];
        assert_eq!(acc.gini(), Some(reference(&values)));
        // reserve_values is idempotent and never shrinks.
        let cap_before = acc.hist.cap();
        acc.reserve_values(10);
        assert_eq!(acc.hist.cap(), cap_before);
    }

    #[test]
    fn remove_then_reinsert_roundtrips() {
        let mut acc = IncrementalGini::new();
        for v in [4u64, 9, 2, 2, 30] {
            acc.insert(v);
        }
        let snapshot = acc.clone();
        acc.remove(9);
        acc.insert(9);
        assert_eq!(acc, snapshot);
    }
}

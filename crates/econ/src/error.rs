//! Error type for the econ metrics.

use std::error::Error;
use std::fmt;

/// Errors from inequality-metric computation.
#[derive(Clone, Debug, PartialEq)]
pub enum EconError {
    /// The input sample was empty.
    Empty,
    /// A wealth value was negative or non-finite.
    InvalidValue(String),
    /// A parameter (probability, aversion coefficient, share) was out of
    /// range.
    InvalidParameter(String),
}

impl fmt::Display for EconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EconError::Empty => write!(f, "empty sample"),
            EconError::InvalidValue(msg) => write!(f, "invalid wealth value: {msg}"),
            EconError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for EconError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(EconError::Empty.to_string(), "empty sample");
        assert!(EconError::InvalidValue("x".into())
            .to_string()
            .contains("x"));
        assert!(EconError::InvalidParameter("p".into())
            .to_string()
            .contains("p"));
    }
}

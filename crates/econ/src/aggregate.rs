//! Cross-replication aggregation of experiment measurements.
//!
//! Batch experiments repeat a configuration over several RNG seeds and
//! report replication-aggregated summaries instead of a single noisy
//! trajectory. This module provides the summary statistic
//! ([`SummaryStats`]: mean / min / max / standard deviation over the
//! replications) and a column-wise aggregator for aligned series (one row
//! per replication, e.g. Gini-over-time trajectories sampled on the same
//! grid).

use crate::error::EconError;

/// Replication summary of one scalar quantity: sample count, mean,
/// extremes, and (population) standard deviation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SummaryStats {
    /// Number of replications aggregated.
    pub n: usize,
    /// Arithmetic mean across replications.
    pub mean: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Population standard deviation (0 for a single replication).
    pub std_dev: f64,
}

impl SummaryStats {
    /// Aggregates a non-empty sample of finite values.
    ///
    /// # Errors
    /// Returns [`EconError::Empty`] for an empty sample and
    /// [`EconError::InvalidValue`] for non-finite entries.
    pub fn from_samples(samples: &[f64]) -> Result<Self, EconError> {
        if samples.is_empty() {
            return Err(EconError::Empty);
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &x in samples {
            if !x.is_finite() {
                return Err(EconError::InvalidValue(format!("non-finite sample {x}")));
            }
            min = min.min(x);
            max = max.max(x);
            sum += x;
        }
        let n = samples.len();
        let mean = sum / n as f64;
        let var = samples.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        Ok(SummaryStats {
            n,
            mean,
            min,
            max,
            std_dev: var.sqrt(),
        })
    }

    /// The half-spread `(max − min) / 2`, a crude dispersion measure
    /// useful for quick convergence checks across replications.
    pub fn half_spread(&self) -> f64 {
        (self.max - self.min) / 2.0
    }
}

/// Aggregates aligned rows column by column: `rows[r][i]` is the value of
/// measurement `i` in replication `r`; the result holds one
/// [`SummaryStats`] per measurement index.
///
/// All rows must have the same length — trim them to a common prefix
/// first when replications can legitimately differ (e.g. churned
/// populations of different final sizes).
///
/// # Errors
/// Returns [`EconError::Empty`] when no rows are given and
/// [`EconError::InvalidParameter`] when row lengths disagree; non-finite
/// values propagate [`EconError::InvalidValue`].
pub fn aggregate_rows(rows: &[&[f64]]) -> Result<Vec<SummaryStats>, EconError> {
    let Some(first) = rows.first() else {
        return Err(EconError::Empty);
    };
    let width = first.len();
    for (r, row) in rows.iter().enumerate() {
        if row.len() != width {
            return Err(EconError::InvalidParameter(format!(
                "row {r} has length {} but row 0 has {width}",
                row.len()
            )));
        }
    }
    let mut column = vec![0.0f64; rows.len()];
    (0..width)
        .map(|i| {
            for (r, row) in rows.iter().enumerate() {
                column[r] = row[i];
            }
            SummaryStats::from_samples(&column)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_single_value() {
        let s = SummaryStats::from_samples(&[3.5]).expect("non-empty");
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.half_spread(), 0.0);
    }

    #[test]
    fn summary_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 10.0];
        let s = SummaryStats::from_samples(&xs).expect("non-empty");
        assert_eq!(s.n, 4);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        let var = xs.iter().map(|x| (x - 4.0f64).powi(2)).sum::<f64>() / 4.0;
        assert!((s.std_dev - var.sqrt()).abs() < 1e-12);
        assert_eq!(s.half_spread(), 4.5);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert_eq!(SummaryStats::from_samples(&[]), Err(EconError::Empty));
        assert!(SummaryStats::from_samples(&[1.0, f64::NAN]).is_err());
        assert!(SummaryStats::from_samples(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn aggregate_rows_column_wise() {
        let a = [0.1, 0.2, 0.3];
        let b = [0.3, 0.4, 0.5];
        let cols = aggregate_rows(&[&a, &b]).expect("aligned");
        assert_eq!(cols.len(), 3);
        assert!((cols[0].mean - 0.2).abs() < 1e-12);
        assert_eq!(cols[2].min, 0.3);
        assert_eq!(cols[2].max, 0.5);
        assert_eq!(cols[1].n, 2);
    }

    #[test]
    fn aggregate_rows_rejects_misaligned_and_empty() {
        assert_eq!(aggregate_rows(&[]), Err(EconError::Empty));
        let a = [1.0, 2.0];
        let b = [1.0];
        assert!(matches!(
            aggregate_rows(&[&a, &b]),
            Err(EconError::InvalidParameter(_))
        ));
    }

    #[test]
    fn aggregate_rows_single_replication_is_identity() {
        let a = [0.5, 0.6];
        let cols = aggregate_rows(&[&a]).expect("one row");
        for (s, &x) in cols.iter().zip(&a) {
            assert_eq!(s.mean, x);
            assert_eq!(s.min, x);
            assert_eq!(s.max, x);
        }
    }
}

//! Inequality indices beyond the Gini: Theil, Hoover, Atkinson, and
//! top-share measures.
//!
//! The paper reports only the Gini index; these additional indices are
//! robustness checks used in the extended experiments (condensation shows
//! up consistently across all of them, strengthening the paper's
//! conclusion that the effect is real rather than an artifact of the
//! metric).

use crate::error::EconError;

fn validated_total(values: &[f64]) -> Result<f64, EconError> {
    if values.is_empty() {
        return Err(EconError::Empty);
    }
    let mut total = 0.0;
    for (i, &v) in values.iter().enumerate() {
        if !v.is_finite() || v < 0.0 {
            return Err(EconError::InvalidValue(format!("value[{i}] = {v}")));
        }
        total += v;
    }
    Ok(total)
}

/// The Theil T index: `(1/n) Σ (x_i/μ) ln(x_i/μ)`, with the convention
/// `0·ln 0 = 0`. Zero for perfect equality, `ln n` for single-owner
/// concentration.
///
/// # Errors
/// Returns [`EconError`] for empty/invalid samples.
pub fn theil(values: &[f64]) -> Result<f64, EconError> {
    let total = validated_total(values)?;
    if total <= 0.0 {
        return Ok(0.0);
    }
    let n = values.len() as f64;
    let mean = total / n;
    let t = values
        .iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| {
            let r = x / mean;
            r * r.ln()
        })
        .sum::<f64>()
        / n;
    Ok(t.max(0.0))
}

/// The Hoover (Robin Hood) index: the fraction of total wealth that
/// would need to be redistributed to reach perfect equality,
/// `(1/2) Σ |x_i − μ| / Σ x_i`.
///
/// # Errors
/// Returns [`EconError`] for empty/invalid samples.
pub fn hoover(values: &[f64]) -> Result<f64, EconError> {
    let total = validated_total(values)?;
    if total <= 0.0 {
        return Ok(0.0);
    }
    let mean = total / values.len() as f64;
    let abs_dev: f64 = values.iter().map(|&x| (x - mean).abs()).sum();
    Ok(abs_dev / (2.0 * total))
}

/// The Atkinson index with inequality-aversion `epsilon > 0`,
/// `1 − (EDE/μ)` where EDE is the equally-distributed-equivalent wealth.
/// For `epsilon = 1` the EDE is the geometric mean. Any zero wealth with
/// `epsilon ≥ 1` drives the index to 1 (infinite aversion to the broke).
///
/// # Errors
/// Returns [`EconError`] for empty/invalid samples or `epsilon ≤ 0`.
pub fn atkinson(values: &[f64], epsilon: f64) -> Result<f64, EconError> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(EconError::InvalidParameter(format!(
            "epsilon = {epsilon} must be positive"
        )));
    }
    let total = validated_total(values)?;
    if total <= 0.0 {
        return Ok(0.0);
    }
    let n = values.len() as f64;
    let mean = total / n;
    let ede = if (epsilon - 1.0).abs() < 1e-12 {
        if values.contains(&0.0) {
            0.0
        } else {
            (values.iter().map(|&x| x.ln()).sum::<f64>() / n).exp()
        }
    } else {
        let p = 1.0 - epsilon;
        if epsilon > 1.0 && values.contains(&0.0) {
            0.0
        } else {
            (values.iter().map(|&x| x.powf(p)).sum::<f64>() / n).powf(1.0 / p)
        }
    };
    Ok((1.0 - ede / mean).clamp(0.0, 1.0))
}

/// The coefficient of variation `σ/μ` (population σ).
///
/// # Errors
/// Returns [`EconError`] for empty/invalid samples; zero-mean samples
/// return 0.
pub fn coefficient_of_variation(values: &[f64]) -> Result<f64, EconError> {
    let total = validated_total(values)?;
    if total <= 0.0 {
        return Ok(0.0);
    }
    let n = values.len() as f64;
    let mean = total / n;
    let var = values.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / n;
    Ok(var.sqrt() / mean)
}

/// Wealth share of the richest `fraction` of peers (e.g. 0.01 = top 1%).
/// At least one peer is always counted.
///
/// # Errors
/// Returns [`EconError`] for empty/invalid samples or `fraction` outside
/// `(0, 1]`.
pub fn top_share(values: &[f64], fraction: f64) -> Result<f64, EconError> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(EconError::InvalidParameter(format!(
            "fraction = {fraction} outside (0, 1]"
        )));
    }
    let total = validated_total(values)?;
    if total <= 0.0 {
        return Ok(0.0);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("validated finite"));
    let k = ((values.len() as f64 * fraction).ceil() as usize).max(1);
    Ok(sorted.iter().take(k).sum::<f64>() / total)
}

/// Fraction of peers with exactly zero wealth — the paper's "bankrupt"
/// peers who are shut out of the P2P service.
///
/// # Errors
/// Returns [`EconError`] for empty/invalid samples.
pub fn broke_fraction(values: &[f64]) -> Result<f64, EconError> {
    validated_total(values)?;
    Ok(values.iter().filter(|&&x| x == 0.0).count() as f64 / values.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EQUAL: [f64; 4] = [5.0, 5.0, 5.0, 5.0];
    const SINGLE: [f64; 4] = [20.0, 0.0, 0.0, 0.0];

    #[test]
    fn theil_bounds() {
        assert_eq!(theil(&EQUAL).expect("valid"), 0.0);
        let t = theil(&SINGLE).expect("valid");
        assert!((t - 4f64.ln()).abs() < 1e-12, "single-owner Theil {t}");
        assert!(theil(&[]).is_err());
    }

    #[test]
    fn hoover_bounds() {
        assert_eq!(hoover(&EQUAL).expect("valid"), 0.0);
        let h = hoover(&SINGLE).expect("valid");
        assert!((h - 0.75).abs() < 1e-12, "single-owner Hoover {h}");
    }

    #[test]
    fn atkinson_geometric_mean_case() {
        // epsilon = 1 on {1, 4}: EDE = 2, mean = 2.5, A = 1 − 0.8 = 0.2.
        let a = atkinson(&[1.0, 4.0], 1.0).expect("valid");
        assert!((a - 0.2).abs() < 1e-12);
        assert!(atkinson(&EQUAL, 1.0).expect("valid") < 1e-12);
        // Any broke peer with epsilon >= 1 → index 1.
        assert_eq!(atkinson(&SINGLE, 1.0).expect("valid"), 1.0);
        assert!(atkinson(&[1.0], 0.0).is_err());
        assert!(atkinson(&[1.0], -1.0).is_err());
    }

    #[test]
    fn atkinson_half_epsilon() {
        // epsilon = 0.5 on {1, 4}: EDE = ((1 + 2)/2)² = 2.25, A = 0.1.
        let a = atkinson(&[1.0, 4.0], 0.5).expect("valid");
        assert!((a - 0.1).abs() < 1e-12, "A = {a}");
    }

    #[test]
    fn cv_known_value() {
        // {0, 10}: mean 5, σ 5 ⇒ CV = 1.
        let cv = coefficient_of_variation(&[0.0, 10.0]).expect("valid");
        assert!((cv - 1.0).abs() < 1e-12);
        assert_eq!(coefficient_of_variation(&EQUAL).expect("valid"), 0.0);
    }

    #[test]
    fn top_share_values() {
        let v = [1.0, 2.0, 3.0, 4.0];
        // Top 25% = one peer = 4/10.
        assert!((top_share(&v, 0.25).expect("valid") - 0.4).abs() < 1e-12);
        // Top 100% = everything.
        assert!((top_share(&v, 1.0).expect("valid") - 1.0).abs() < 1e-12);
        assert!(top_share(&v, 0.0).is_err());
        assert!(top_share(&v, 1.5).is_err());
    }

    #[test]
    fn broke_fraction_counts_zeros() {
        assert_eq!(broke_fraction(&SINGLE).expect("valid"), 0.75);
        assert_eq!(broke_fraction(&EQUAL).expect("valid"), 0.0);
    }

    #[test]
    fn zero_total_conventions() {
        let zeros = [0.0; 3];
        assert_eq!(theil(&zeros).expect("valid"), 0.0);
        assert_eq!(hoover(&zeros).expect("valid"), 0.0);
        assert_eq!(atkinson(&zeros, 1.0).expect("valid"), 0.0);
        assert_eq!(coefficient_of_variation(&zeros).expect("valid"), 0.0);
        assert_eq!(top_share(&zeros, 0.5).expect("valid"), 0.0);
    }

    #[test]
    fn indices_agree_on_ordering() {
        // A mildly unequal and a strongly condensed distribution: every
        // index must rank the condensed one higher.
        let mild = [8.0, 10.0, 12.0, 10.0];
        let condensed = [0.0, 0.0, 1.0, 39.0];
        assert!(theil(&condensed).expect("v") > theil(&mild).expect("v"));
        assert!(hoover(&condensed).expect("v") > hoover(&mild).expect("v"));
        assert!(atkinson(&condensed, 0.5).expect("v") > atkinson(&mild, 0.5).expect("v"));
        assert!(
            coefficient_of_variation(&condensed).expect("v")
                > coefficient_of_variation(&mild).expect("v")
        );
        assert!(top_share(&condensed, 0.25).expect("v") > top_share(&mild, 0.25).expect("v"));
    }
}

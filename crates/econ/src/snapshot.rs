//! One-line wealth summaries for experiment logs.

use crate::error::EconError;
use crate::gini::gini;
use crate::inequality::{broke_fraction, top_share};

/// A compact statistical summary of a wealth distribution at one instant.
///
/// ```
/// use scrip_econ::WealthSnapshot;
///
/// # fn main() -> Result<(), scrip_econ::EconError> {
/// let snap = WealthSnapshot::from_values(&[0.0, 10.0, 20.0, 10.0])?;
/// assert_eq!(snap.n, 4);
/// assert_eq!(snap.total, 40.0);
/// assert_eq!(snap.mean, 10.0);
/// assert_eq!(snap.broke_fraction, 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WealthSnapshot {
    /// Number of peers.
    pub n: usize,
    /// Total credits in the sample.
    pub total: f64,
    /// Mean wealth (the paper's `c` when measured at start).
    pub mean: f64,
    /// Median wealth.
    pub median: f64,
    /// Minimum wealth.
    pub min: f64,
    /// Maximum wealth.
    pub max: f64,
    /// Gini index of the sample.
    pub gini: f64,
    /// Wealth share of the richest 10% of peers.
    pub top_decile_share: f64,
    /// Fraction of peers with exactly zero credits.
    pub broke_fraction: f64,
}

impl WealthSnapshot {
    /// Computes the snapshot from per-peer wealth values.
    ///
    /// # Errors
    /// Returns [`EconError`] for empty samples or invalid values.
    pub fn from_values(values: &[f64]) -> Result<Self, EconError> {
        let g = gini(values)?;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated by gini"));
        let n = sorted.len();
        let total: f64 = sorted.iter().sum();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Ok(WealthSnapshot {
            n,
            total,
            mean: total / n as f64,
            median,
            min: sorted[0],
            max: sorted[n - 1],
            gini: g,
            top_decile_share: top_share(values, 0.1)?,
            broke_fraction: broke_fraction(values)?,
        })
    }

    /// Computes the snapshot from integer credit balances.
    ///
    /// # Errors
    /// Returns [`EconError::Empty`] for an empty sample.
    pub fn from_u64(values: &[u64]) -> Result<Self, EconError> {
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        WealthSnapshot::from_values(&as_f64)
    }
}

impl std::fmt::Display for WealthSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} total={:.0} mean={:.2} median={:.1} range=[{:.0}, {:.0}] gini={:.3} top10%={:.1}% broke={:.1}%",
            self.n,
            self.total,
            self.mean,
            self.median,
            self.min,
            self.max,
            self.gini,
            self.top_decile_share * 100.0,
            self.broke_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_fields() {
        let s = WealthSnapshot::from_values(&[1.0, 2.0, 3.0, 4.0, 100.0]).expect("valid");
        assert_eq!(s.n, 5);
        assert_eq!(s.total, 110.0);
        assert_eq!(s.mean, 22.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.gini > 0.5);
        assert!((s.top_decile_share - 100.0 / 110.0).abs() < 1e-12);
        assert_eq!(s.broke_fraction, 0.0);
    }

    #[test]
    fn even_length_median() {
        let s = WealthSnapshot::from_values(&[1.0, 3.0, 5.0, 7.0]).expect("valid");
        assert_eq!(s.median, 4.0);
    }

    #[test]
    fn from_u64_matches() {
        let a = WealthSnapshot::from_u64(&[0, 5, 10]).expect("valid");
        let b = WealthSnapshot::from_values(&[0.0, 5.0, 10.0]).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn empty_rejected() {
        assert!(WealthSnapshot::from_values(&[]).is_err());
    }

    #[test]
    fn display_is_informative() {
        let s = WealthSnapshot::from_values(&[0.0, 10.0]).expect("valid");
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("gini=0.500"));
        assert!(text.contains("broke=50.0%"));
    }
}

//! Property-based tests for the queueing-network invariants.

use proptest::prelude::*;
use scrip_queueing::approx::{eq8_symmetric_marginal, exact_symmetric_marginal, pmf_mean};
use scrip_queueing::closed::ClosedJackson;
use scrip_queueing::condensation::{classify, empirical_threshold, Regime, Threshold};
use scrip_queueing::stationary::{direct_solve, is_stationary};
use scrip_queueing::TransferMatrix;

/// Random row-stochastic irreducible-ish matrix: random positive weights
/// plus a ring backbone guaranteeing irreducibility.
fn stochastic_matrix() -> impl Strategy<Value = TransferMatrix> {
    (2usize..12).prop_flat_map(|n| {
        prop::collection::vec(0.01f64..1.0, n * n).prop_map(move |w| {
            let mut rows = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in 0..n {
                    rows[i][j] = w[i * n + j];
                }
                rows[i][(i + 1) % n] += 1.0; // ring backbone
                let total: f64 = rows[i].iter().sum();
                for x in &mut rows[i] {
                    *x /= total;
                }
            }
            TransferMatrix::from_rows(rows).expect("constructed stochastic")
        })
    })
}

fn utilizations() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..1.0, 2..10).prop_map(|mut u| {
        u[0] = 1.0;
        u
    })
}

proptest! {
    /// Lemma 1: every irreducible stochastic matrix has a strictly
    /// positive stationary flow, and the solver finds it.
    #[test]
    fn stationary_flow_exists_and_is_positive(p in stochastic_matrix()) {
        let flows = direct_solve(&p).expect("solvable");
        prop_assert!(is_stationary(&p, &flows, 1e-8));
        for &f in &flows {
            prop_assert!(f > 0.0);
        }
        prop_assert!((flows.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Buzen's convolution and MVA agree on mean queue lengths, and the
    /// means sum to the population.
    #[test]
    fn buzen_equals_mva(u in utilizations(), m in 1usize..60) {
        let network = ClosedJackson::from_utilizations(&u).expect("valid");
        let conv = network.expected_lengths(m);
        let mva = network.mva(m).mean_lengths;
        let total: f64 = conv.iter().sum();
        prop_assert!((total - m as f64).abs() < 1e-6, "total {total} vs {m}");
        for (a, b) in conv.iter().zip(&mva) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    /// Exact marginals are distributions with the right mean structure.
    #[test]
    fn marginal_pmf_is_distribution(u in utilizations(), m in 1usize..50) {
        let network = ClosedJackson::from_utilizations(&u).expect("valid");
        let gc = network.convolution(m);
        let mut mean_sum = 0.0;
        for i in 0..u.len() {
            let pmf = network.marginal_pmf(i, m, &gc);
            let mass: f64 = pmf.iter().sum();
            prop_assert!((mass - 1.0).abs() < 1e-8, "queue {i} mass {mass}");
            for &p in &pmf {
                prop_assert!(p >= 0.0);
            }
            mean_sum += pmf_mean(&pmf);
        }
        prop_assert!((mean_sum - m as f64).abs() < 1e-6);
    }

    /// The empirical threshold is monotone in the classification sense:
    /// wealth below it is sustainable, above it condensing.
    #[test]
    fn threshold_classification_is_monotone(u in utilizations()) {
        let est = empirical_threshold(&u, 1e-9).expect("valid");
        match est.threshold {
            Threshold::Finite(t) => {
                prop_assert_eq!(classify(t * 0.5, &est.threshold), Regime::Sustainable);
                prop_assert_eq!(classify(t + 1.0, &est.threshold), Regime::Condensing);
            }
            Threshold::Divergent => {
                prop_assert_eq!(classify(1e12, &est.threshold), Regime::Sustainable);
            }
        }
    }

    /// The symmetric closed-form marginals are proper distributions with
    /// mean c for any (m, n).
    #[test]
    fn symmetric_marginals_have_mean_c(n in 2usize..30, c in 1usize..30) {
        let m = n * c;
        for pmf in [
            exact_symmetric_marginal(m, n).expect("valid"),
            eq8_symmetric_marginal(m, n).expect("valid"),
        ] {
            let mass: f64 = pmf.iter().sum();
            prop_assert!((mass - 1.0).abs() < 1e-8);
            prop_assert!((pmf_mean(&pmf) - c as f64).abs() < 1e-6);
        }
    }
}

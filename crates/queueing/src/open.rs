//! Open Jackson networks: the churn scenario of paper Sec. VI-E.
//!
//! When peers join (bringing `c` fresh credits) and leave (taking their
//! wallets), credits enter and exit the market, so the closed-network
//! analysis no longer applies. The paper models this as an **open Jackson
//! network**. This module solves the traffic equations
//! `λ = α + λP` and, when every queue is stable (`ρ_i < 1`), gives the
//! classic product-form M/M/1 marginals.

use crate::error::QueueingError;
use crate::stationary::solve_dense;

/// Tolerance for sub-stochastic row validation.
const ROW_SUM_TOL: f64 = 1e-9;

/// A sub-stochastic routing matrix: rows sum to at most 1, with the
/// deficit being the probability of leaving the network.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenRouting {
    n: usize,
    data: Vec<f64>,
}

impl OpenRouting {
    /// Builds and validates a routing matrix from dense rows.
    ///
    /// # Errors
    /// Returns [`QueueingError::Dimension`] for empty/ragged input and
    /// [`QueueingError::NotStochastic`] if entries are negative or a row
    /// sums to more than 1.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, QueueingError> {
        let n = rows.len();
        if n == 0 {
            return Err(QueueingError::Dimension("empty routing matrix".into()));
        }
        let mut data = Vec::with_capacity(n * n);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(QueueingError::Dimension(format!(
                    "row {i} has {} entries, expected {n}",
                    row.len()
                )));
            }
            let mut sum = 0.0;
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() || v < 0.0 {
                    return Err(QueueingError::NotStochastic(format!(
                        "entry ({i}, {j}) = {v}"
                    )));
                }
                sum += v;
            }
            if sum > 1.0 + ROW_SUM_TOL {
                return Err(QueueingError::NotStochastic(format!(
                    "row {i} sums to {sum} > 1"
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(OpenRouting { n, data })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The entry `p_ij`.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index ({i}, {j}) out of range");
        self.data[i * self.n + j]
    }

    /// The probability that a job leaving queue `i` exits the network.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn exit_probability(&self, i: usize) -> f64 {
        assert!(i < self.n, "row {i} out of range");
        let sum: f64 = self.data[i * self.n..(i + 1) * self.n].iter().sum();
        (1.0 - sum).max(0.0)
    }
}

/// A solved open Jackson network.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenJackson {
    arrival: Vec<f64>,
    service: Vec<f64>,
    rho: Vec<f64>,
}

impl OpenJackson {
    /// Solves the traffic equations `λ = α + λP` and validates stability
    /// (`ρ_i = λ_i/μ_i < 1` for every queue).
    ///
    /// # Errors
    /// * [`QueueingError::Dimension`] on mismatched vector lengths.
    /// * [`QueueingError::InvalidParameter`] for negative external
    ///   arrivals or non-positive service rates.
    /// * [`QueueingError::Singular`] if `(I − Pᵀ)` is singular (jobs
    ///   cannot all eventually exit).
    /// * [`QueueingError::Unstable`] if some `ρ_i ≥ 1`.
    pub fn solve(
        routing: &OpenRouting,
        external_arrivals: &[f64],
        service_rates: &[f64],
    ) -> Result<Self, QueueingError> {
        let n = routing.n();
        if external_arrivals.len() != n || service_rates.len() != n {
            return Err(QueueingError::Dimension(format!(
                "routing n = {n}, α has {}, μ has {}",
                external_arrivals.len(),
                service_rates.len()
            )));
        }
        for (i, &a) in external_arrivals.iter().enumerate() {
            if !a.is_finite() || a < 0.0 {
                return Err(QueueingError::InvalidParameter(format!("α_{i} = {a}")));
            }
        }
        for (i, &s) in service_rates.iter().enumerate() {
            if !s.is_finite() || s <= 0.0 {
                return Err(QueueingError::InvalidParameter(format!("μ_{i} = {s}")));
            }
        }
        // (I − Pᵀ) λ = α.
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                a[j * n + i] = -routing.get(i, j);
            }
        }
        for i in 0..n {
            a[i * n + i] += 1.0;
        }
        let mut lambda = external_arrivals.to_vec();
        solve_dense(&mut a, &mut lambda, n)?;
        for (i, &l) in lambda.iter().enumerate() {
            if l < -1e-9 {
                return Err(QueueingError::Singular(format!(
                    "negative solved arrival rate λ_{i} = {l}"
                )));
            }
        }
        let rho: Vec<f64> = lambda
            .iter()
            .zip(service_rates)
            .map(|(&l, &m)| l.max(0.0) / m)
            .collect();
        if let Some((i, &r)) = rho.iter().enumerate().find(|&(_, &r)| r >= 1.0) {
            return Err(QueueingError::Unstable(format!("ρ_{i} = {r} ≥ 1")));
        }
        Ok(OpenJackson {
            arrival: lambda,
            service: service_rates.to_vec(),
            rho,
        })
    }

    /// Number of queues.
    pub fn n(&self) -> usize {
        self.arrival.len()
    }

    /// Solved total arrival rates `λ_i`.
    pub fn arrival_rates(&self) -> &[f64] {
        &self.arrival
    }

    /// Utilizations `ρ_i = λ_i/μ_i`, all strictly below 1.
    pub fn utilizations(&self) -> &[f64] {
        &self.rho
    }

    /// Mean queue lengths `L_i = ρ_i/(1 − ρ_i)` (M/M/1 marginals).
    pub fn mean_lengths(&self) -> Vec<f64> {
        self.rho.iter().map(|&r| r / (1.0 - r)).collect()
    }

    /// Mean sojourn times `W_i = 1/(μ_i − λ_i)` (Little's law).
    pub fn mean_sojourn_times(&self) -> Vec<f64> {
        self.arrival
            .iter()
            .zip(&self.service)
            .map(|(&l, &m)| 1.0 / (m - l))
            .collect()
    }

    /// Marginal queue-length PMF of queue `i`, truncated at `max_b`:
    /// geometric `P{B_i = b} = (1 − ρ)ρ^b`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn marginal_pmf(&self, i: usize, max_b: usize) -> Vec<f64> {
        assert!(i < self.n(), "queue index {i} out of range");
        let r = self.rho[i];
        let mut pmf = Vec::with_capacity(max_b + 1);
        let mut p = 1.0 - r;
        for _ in 0..=max_b {
            pmf.push(p);
            p *= r;
        }
        pmf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_validation() {
        assert!(OpenRouting::from_rows(vec![]).is_err());
        assert!(OpenRouting::from_rows(vec![vec![0.5], vec![0.5, 0.5]]).is_err());
        assert!(OpenRouting::from_rows(vec![vec![0.6, 0.6], vec![0.0, 0.0]]).is_err());
        assert!(OpenRouting::from_rows(vec![vec![-0.1, 0.5], vec![0.0, 0.0]]).is_err());
        let r = OpenRouting::from_rows(vec![vec![0.0, 0.5], vec![0.25, 0.25]]).expect("valid");
        assert!((r.exit_probability(0) - 0.5).abs() < 1e-12);
        assert!((r.exit_probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_mm1_queue() {
        // One queue, no internal routing: a plain M/M/1.
        let routing = OpenRouting::from_rows(vec![vec![0.0]]).expect("valid");
        let net = OpenJackson::solve(&routing, &[0.5], &[1.0]).expect("stable");
        assert!((net.utilizations()[0] - 0.5).abs() < 1e-12);
        assert!((net.mean_lengths()[0] - 1.0).abs() < 1e-12);
        assert!((net.mean_sojourn_times()[0] - 2.0).abs() < 1e-12);
        let pmf = net.marginal_pmf(0, 3);
        assert!((pmf[0] - 0.5).abs() < 1e-12);
        assert!((pmf[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tandem_queues() {
        // α -> q0 -> q1 -> exit; both see the same arrival rate.
        let routing = OpenRouting::from_rows(vec![vec![0.0, 1.0], vec![0.0, 0.0]]).expect("valid");
        let net = OpenJackson::solve(&routing, &[0.3, 0.0], &[1.0, 0.5]).expect("stable");
        assert!((net.arrival_rates()[0] - 0.3).abs() < 1e-12);
        assert!((net.arrival_rates()[1] - 0.3).abs() < 1e-12);
        assert!((net.utilizations()[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn feedback_queue() {
        // Single queue with feedback probability q: λ = α/(1−q).
        let q = 0.75;
        let routing = OpenRouting::from_rows(vec![vec![q]]).expect("valid");
        let net = OpenJackson::solve(&routing, &[0.2], &[1.0]).expect("stable");
        assert!((net.arrival_rates()[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn instability_detected() {
        let routing = OpenRouting::from_rows(vec![vec![0.0]]).expect("valid");
        assert!(matches!(
            OpenJackson::solve(&routing, &[2.0], &[1.0]),
            Err(QueueingError::Unstable(_))
        ));
    }

    #[test]
    fn no_exit_is_singular() {
        // All mass recirculates: (I − Pᵀ) is singular.
        let routing = OpenRouting::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).expect("valid");
        assert!(matches!(
            OpenJackson::solve(&routing, &[0.1, 0.1], &[1.0, 1.0]),
            Err(QueueingError::Singular(_))
        ));
    }

    #[test]
    fn input_validation() {
        let routing = OpenRouting::from_rows(vec![vec![0.0]]).expect("valid");
        assert!(OpenJackson::solve(&routing, &[0.1, 0.2], &[1.0]).is_err());
        assert!(OpenJackson::solve(&routing, &[-0.1], &[1.0]).is_err());
        assert!(OpenJackson::solve(&routing, &[0.1], &[0.0]).is_err());
    }

    #[test]
    fn marginal_pmf_mass_tail() {
        let routing = OpenRouting::from_rows(vec![vec![0.0]]).expect("valid");
        let net = OpenJackson::solve(&routing, &[0.9], &[1.0]).expect("stable");
        let pmf = net.marginal_pmf(0, 200);
        let total: f64 = pmf.iter().sum();
        assert!(total > 0.999, "truncated mass {total}");
    }
}

//! Closed Jackson networks: the paper's model of a credit-based P2P
//! market with a fixed population and a fixed total of `M` credits.
//!
//! The equilibrium distribution is product-form (paper Eq. 3):
//!
//! ```text
//! Q{B_1 = b_1, …, B_N = b_N} = (1/Z_M) Π u_i^{b_i},   Σ b_i = M
//! ```
//!
//! with normalized utilizations `u_i = (λ_i/μ_i) / max_j (λ_j/μ_j)`
//! (Eq. 2). This module evaluates that distribution *exactly*:
//!
//! * [`ClosedJackson::convolution`] — Buzen's convolution algorithm for
//!   the normalization constants `G(0..=M)` (`Z_M` in the paper), with
//!   dynamic rescaling so huge populations (`M ~ 10^5`) stay in `f64`
//!   range.
//! * [`ClosedJackson::marginal_pmf`] — the exact per-peer wealth
//!   distribution `Q{B_i = b}` (what the paper approximates in Eq. 6).
//! * [`ClosedJackson::expected_lengths`] — exact mean wealth per peer.
//! * [`ClosedJackson::mva`] — Mean Value Analysis, an independent exact
//!   recursion used to cross-check the convolution results.

use crate::error::QueueingError;

/// Computes the paper's Eq. (2): normalized utilizations
/// `u_i = (λ_i/μ_i) / max_j (λ_j/μ_j)`.
///
/// # Errors
/// Returns [`QueueingError`] if the slices are empty/mismatched, any rate
/// is non-positive, or all ratios vanish.
pub fn normalized_utilizations(
    arrival_rates: &[f64],
    service_rates: &[f64],
) -> Result<Vec<f64>, QueueingError> {
    if arrival_rates.is_empty() || arrival_rates.len() != service_rates.len() {
        return Err(QueueingError::Dimension(format!(
            "{} arrival rates vs {} service rates",
            arrival_rates.len(),
            service_rates.len()
        )));
    }
    let mut ratios = Vec::with_capacity(arrival_rates.len());
    for (i, (&l, &m)) in arrival_rates.iter().zip(service_rates).enumerate() {
        if !l.is_finite() || l < 0.0 {
            return Err(QueueingError::InvalidParameter(format!(
                "arrival rate λ_{i} = {l}"
            )));
        }
        if !m.is_finite() || m <= 0.0 {
            return Err(QueueingError::InvalidParameter(format!(
                "service rate μ_{i} = {m}"
            )));
        }
        ratios.push(l / m);
    }
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    if max <= 0.0 {
        return Err(QueueingError::InvalidParameter(
            "all utilization ratios are zero".into(),
        ));
    }
    Ok(ratios.into_iter().map(|r| r / max).collect())
}

/// The normalization constants `G(0..=M)` of a closed Jackson network,
/// with the shared rescaling exponent tracked separately.
///
/// True values satisfy `ln G(m) = ln g(m) + ln_scale`; every ratio
/// `G(a)/G(b)` is therefore `g(a)/g(b)` exactly, which is all the
/// equilibrium formulas need.
#[derive(Clone, Debug, PartialEq)]
pub struct NormalizingConstants {
    g: Vec<f64>,
    ln_scale: f64,
}

impl NormalizingConstants {
    /// The rescaled constant `g(m)`.
    ///
    /// # Panics
    /// Panics if `m` exceeds the computed population.
    pub fn g(&self, m: usize) -> f64 {
        self.g[m]
    }

    /// Natural log of the true constant `G(m)`.
    pub fn ln_g(&self, m: usize) -> f64 {
        self.g[m].ln() + self.ln_scale
    }

    /// Largest population the constants were computed for.
    pub fn max_population(&self) -> usize {
        self.g.len() - 1
    }
}

/// A closed Jackson network of single-server FCFS queues.
///
/// Construct from stationary visit ratios and service rates
/// ([`ClosedJackson::new`]) or directly from normalized utilizations
/// ([`ClosedJackson::from_utilizations`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ClosedJackson {
    /// Normalized utilizations (max = 1), paper Eq. (2).
    utilization: Vec<f64>,
    /// Relative visit ratios `v_i` (any positive scale).
    visit_ratios: Vec<f64>,
    /// Service rates `μ_i`.
    service_rates: Vec<f64>,
    /// `max_i v_i/μ_i`, used to convert normalized quantities back.
    demand_max: f64,
}

/// Result of Mean Value Analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct MvaResult {
    /// Mean queue length (mean wealth) per queue at population `M`.
    pub mean_lengths: Vec<f64>,
    /// System throughput relative to the visit-ratio scale used at
    /// construction.
    pub throughput: f64,
}

impl ClosedJackson {
    /// Builds a network from relative visit ratios (e.g. the stationary
    /// flows of `λP = λ`) and service rates.
    ///
    /// # Errors
    /// Returns [`QueueingError`] on dimension mismatch or non-positive
    /// rates (visit ratios may be zero for isolated peers, but not all).
    pub fn new(visit_ratios: &[f64], service_rates: &[f64]) -> Result<Self, QueueingError> {
        let utilization = normalized_utilizations(visit_ratios, service_rates)?;
        let demand_max = visit_ratios
            .iter()
            .zip(service_rates)
            .map(|(&v, &m)| v / m)
            .fold(0.0, f64::max);
        Ok(ClosedJackson {
            utilization,
            visit_ratios: visit_ratios.to_vec(),
            service_rates: service_rates.to_vec(),
            demand_max,
        })
    }

    /// Builds a network directly from normalized utilizations in `(0, 1]`
    /// (at least one must equal 1). Visit ratios are taken equal to `u`
    /// and service rates to 1, which reproduces the same equilibrium
    /// distribution.
    ///
    /// # Errors
    /// Returns [`QueueingError::InvalidParameter`] if any `u_i` is outside
    /// `(0, 1]` or none equals 1 (within `1e-12`).
    pub fn from_utilizations(u: &[f64]) -> Result<Self, QueueingError> {
        if u.is_empty() {
            return Err(QueueingError::Dimension("empty utilization vector".into()));
        }
        for (i, &ui) in u.iter().enumerate() {
            if !ui.is_finite() || ui <= 0.0 || ui > 1.0 + 1e-12 {
                return Err(QueueingError::InvalidParameter(format!(
                    "u_{i} = {ui} outside (0, 1]"
                )));
            }
        }
        let max = u.iter().cloned().fold(0.0, f64::max);
        if (max - 1.0).abs() > 1e-9 {
            return Err(QueueingError::InvalidParameter(format!(
                "normalized utilizations must attain 1, max = {max}"
            )));
        }
        Ok(ClosedJackson {
            utilization: u.to_vec(),
            visit_ratios: u.to_vec(),
            service_rates: vec![1.0; u.len()],
            demand_max: 1.0,
        })
    }

    /// Number of queues (peers).
    pub fn n(&self) -> usize {
        self.utilization.len()
    }

    /// The normalized utilization vector (paper Eq. 2).
    pub fn utilizations(&self) -> &[f64] {
        &self.utilization
    }

    /// The service rates `μ_i`.
    pub fn service_rates(&self) -> &[f64] {
        &self.service_rates
    }

    /// Whether all peers have (numerically) equal utilization — the
    /// paper's "symmetric utilization" case where its corollary proves
    /// condensation cannot occur.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.utilization.iter().all(|&u| (u - 1.0).abs() <= tol)
    }

    /// Buzen's convolution algorithm: computes `G(0..=m)` in `O(N·m)`
    /// time with dynamic rescaling (see [`NormalizingConstants`]).
    pub fn convolution(&self, m: usize) -> NormalizingConstants {
        let mut g = vec![0.0f64; m + 1];
        g[0] = 1.0;
        let mut ln_scale = 0.0f64;
        const LIMIT: f64 = 1e250;
        const FACTOR: f64 = 1e-250;
        for &u in &self.utilization {
            for b in 1..=m {
                g[b] += u * g[b - 1];
            }
            // Uniform rescaling preserves every ratio; the recursion is
            // homogeneous, so rescaling between sweeps is exact.
            let max = g.iter().cloned().fold(0.0, f64::max);
            if max > LIMIT {
                for v in &mut g {
                    *v *= FACTOR;
                }
                ln_scale += -FACTOR.ln();
            }
        }
        NormalizingConstants { g, ln_scale }
    }

    /// `P{B_i ≥ b}` at population `m`: `u_i^b · G(m−b)/G(m)`.
    ///
    /// # Panics
    /// Panics if `i ≥ n`.
    pub fn prob_at_least(&self, i: usize, b: usize, m: usize, gc: &NormalizingConstants) -> f64 {
        assert!(i < self.n(), "queue index {i} out of range");
        if b > m {
            return 0.0;
        }
        self.utilization[i].powi(b as i32) * gc.g(m - b) / gc.g(m)
    }

    /// The exact marginal wealth distribution of peer `i` at population
    /// `m`: a vector of `P{B_i = b}` for `b = 0..=m`.
    ///
    /// # Panics
    /// Panics if `i ≥ n`.
    pub fn marginal_pmf(&self, i: usize, m: usize, gc: &NormalizingConstants) -> Vec<f64> {
        assert!(i < self.n(), "queue index {i} out of range");
        let u = self.utilization[i];
        let gm = gc.g(m);
        let mut pmf = Vec::with_capacity(m + 1);
        let mut u_pow = 1.0;
        for b in 0..m {
            // P{B=b} = u^b (G(m−b) − u·G(m−b−1)) / G(m)
            let p = u_pow * (gc.g(m - b) - u * gc.g(m - b - 1)) / gm;
            pmf.push(p.max(0.0));
            u_pow *= u;
        }
        pmf.push(u_pow * gc.g(0) / gm);
        pmf
    }

    /// Exact mean wealth per peer at population `m` (length-`n` vector).
    ///
    /// Uses `E[B_i] = Σ_{b≥1} P{B_i ≥ b}` and the single full-network
    /// convolution, so the total cost is `O(N·m)`.
    pub fn expected_lengths(&self, m: usize) -> Vec<f64> {
        let gc = self.convolution(m);
        self.expected_lengths_with(m, &gc)
    }

    /// As [`ClosedJackson::expected_lengths`] but reusing a precomputed
    /// convolution.
    pub fn expected_lengths_with(&self, m: usize, gc: &NormalizingConstants) -> Vec<f64> {
        let gm = gc.g(m);
        self.utilization
            .iter()
            .map(|&u| {
                let mut sum = 0.0;
                let mut u_pow = 1.0;
                for b in 1..=m {
                    u_pow *= u;
                    if u_pow == 0.0 {
                        break;
                    }
                    sum += u_pow * gc.g(m - b) / gm;
                }
                sum
            })
            .collect()
    }

    /// `P{B_i = 0}` for every peer — the probability a peer is *broke*,
    /// which gates content download (paper Sec. V-B3).
    pub fn idle_probabilities(&self, m: usize, gc: &NormalizingConstants) -> Vec<f64> {
        let ratio = gc.g(m - 1) / gc.g(m);
        self.utilization
            .iter()
            .map(|&u| (1.0 - u * ratio).max(0.0))
            .collect()
    }

    /// Effective credit departure rate per peer,
    /// `μ_i (1 − P{B_i = 0})` — the left side of paper Eq. (9).
    pub fn effective_departure_rates(&self, m: usize, gc: &NormalizingConstants) -> Vec<f64> {
        self.idle_probabilities(m, gc)
            .iter()
            .zip(&self.service_rates)
            .map(|(&p0, &mu)| mu * (1.0 - p0))
            .collect()
    }

    /// Per-queue throughput at population `m`, in the units implied by
    /// the construction-time visit ratios.
    pub fn throughputs(&self, m: usize, gc: &NormalizingConstants) -> Vec<f64> {
        if m == 0 {
            return vec![0.0; self.n()];
        }
        let x = gc.g(m - 1) / (gc.g(m) * self.demand_max);
        self.visit_ratios.iter().map(|&v| v * x).collect()
    }

    /// Exact Mean Value Analysis: an `O(N·m)` recursion over populations
    /// `1..=m` that never forms normalization constants. Serves as an
    /// independent cross-check of the convolution results.
    pub fn mva(&self, m: usize) -> MvaResult {
        let n = self.n();
        let mut lengths = vec![0.0f64; n];
        let mut throughput = 0.0;
        for k in 1..=m {
            let mut denom = 0.0;
            let mut waits = Vec::with_capacity(n);
            for (i, &len) in lengths.iter().enumerate() {
                let w = (1.0 + len) / self.service_rates[i];
                denom += self.visit_ratios[i] * w;
                waits.push(w);
            }
            throughput = k as f64 / denom;
            for i in 0..n {
                lengths[i] = throughput * self.visit_ratios[i] * waits[i];
            }
        }
        MvaResult {
            mean_lengths: lengths,
            throughput,
        }
    }

    /// Brute-force joint enumeration for very small networks: returns the
    /// exact marginal PMF of queue `i` by summing the product form over
    /// every composition of `m` into `n` parts. Exponential cost — only
    /// for validating the convolution in tests.
    ///
    /// # Panics
    /// Panics if `i ≥ n`.
    pub fn marginal_pmf_bruteforce(&self, i: usize, m: usize) -> Vec<f64> {
        assert!(i < self.n(), "queue index {i} out of range");
        let n = self.n();
        let mut pmf = vec![0.0f64; m + 1];
        let mut total = 0.0f64;
        let mut composition = vec![0usize; n];
        enumerate_compositions(m, n, 0, &mut composition, &mut |comp| {
            let weight: f64 = comp
                .iter()
                .enumerate()
                .map(|(q, &b)| self.utilization[q].powi(b as i32))
                .product();
            pmf[comp[i]] += weight;
            total += weight;
        });
        for p in &mut pmf {
            *p /= total;
        }
        pmf
    }
}

/// Recursively enumerates all ways to place `remaining` jobs into queues
/// `idx..n`, invoking `visit` on each complete composition.
fn enumerate_compositions(
    remaining: usize,
    n: usize,
    idx: usize,
    composition: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if idx == n - 1 {
        composition[idx] = remaining;
        visit(composition);
        return;
    }
    for b in 0..=remaining {
        composition[idx] = b;
        enumerate_compositions(remaining - b, n, idx + 1, composition, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_normalization() {
        let u = normalized_utilizations(&[1.0, 2.0, 4.0], &[2.0, 2.0, 2.0]).expect("valid");
        assert_eq!(u, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn eq2_rejects_bad_input() {
        assert!(normalized_utilizations(&[], &[]).is_err());
        assert!(normalized_utilizations(&[1.0], &[1.0, 2.0]).is_err());
        assert!(normalized_utilizations(&[1.0], &[0.0]).is_err());
        assert!(normalized_utilizations(&[-1.0], &[1.0]).is_err());
        assert!(normalized_utilizations(&[0.0, 0.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn from_utilizations_validates() {
        assert!(ClosedJackson::from_utilizations(&[]).is_err());
        assert!(
            ClosedJackson::from_utilizations(&[0.5, 0.5]).is_err(),
            "no u = 1"
        );
        assert!(ClosedJackson::from_utilizations(&[1.2, 1.0]).is_err());
        assert!(ClosedJackson::from_utilizations(&[0.0, 1.0]).is_err());
        assert!(ClosedJackson::from_utilizations(&[0.5, 1.0]).is_ok());
    }

    #[test]
    fn symmetric_network_uniform_g() {
        // All u = 1: G(m) = number of compositions = C(m+n-1, n-1).
        let net = ClosedJackson::from_utilizations(&[1.0, 1.0, 1.0]).expect("valid");
        let gc = net.convolution(4);
        // C(4+2,2) = 15, C(3+2,2) = 10, C(2+2,2) = 6, C(1+2,2) = 3, C(0+2,2) = 1
        assert!((gc.g(0) - 1.0).abs() < 1e-12);
        assert!((gc.g(1) - 3.0).abs() < 1e-12);
        assert!((gc.g(2) - 6.0).abs() < 1e-12);
        assert!((gc.g(3) - 10.0).abs() < 1e-12);
        assert!((gc.g(4) - 15.0).abs() < 1e-12);
        assert!(net.is_symmetric(1e-12));
    }

    #[test]
    fn symmetric_mean_wealth_is_average() {
        let net = ClosedJackson::from_utilizations(&[1.0; 5]).expect("valid");
        let lengths = net.expected_lengths(20);
        for &l in &lengths {
            assert!((l - 4.0).abs() < 1e-9, "length {l}");
        }
    }

    #[test]
    fn marginal_matches_bruteforce_asymmetric() {
        let net = ClosedJackson::from_utilizations(&[1.0, 0.7, 0.4, 0.2]).expect("valid");
        let m = 6;
        let gc = net.convolution(m);
        for i in 0..4 {
            let fast = net.marginal_pmf(i, m, &gc);
            let brute = net.marginal_pmf_bruteforce(i, m);
            for (b, (f, s)) in fast.iter().zip(&brute).enumerate() {
                assert!(
                    (f - s).abs() < 1e-10,
                    "queue {i} b={b}: convolution {f} vs brute force {s}"
                );
            }
        }
    }

    #[test]
    fn marginal_pmf_sums_to_one() {
        let net = ClosedJackson::from_utilizations(&[1.0, 0.9, 0.5]).expect("valid");
        let m = 50;
        let gc = net.convolution(m);
        for i in 0..3 {
            let pmf = net.marginal_pmf(i, m, &gc);
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "queue {i} total {total}");
        }
    }

    #[test]
    fn expected_lengths_sum_to_population() {
        let net = ClosedJackson::from_utilizations(&[1.0, 0.8, 0.6, 0.3]).expect("valid");
        for m in [1usize, 5, 25, 100] {
            let lengths = net.expected_lengths(m);
            let total: f64 = lengths.iter().sum();
            assert!(
                (total - m as f64).abs() < 1e-6,
                "m={m}: lengths sum to {total}"
            );
        }
    }

    #[test]
    fn high_utilization_queue_dominates_at_large_m() {
        // Condensation in miniature: with u = (1, 0.5, 0.5) and many
        // credits, queue 0 should hold nearly all wealth.
        let net = ClosedJackson::from_utilizations(&[1.0, 0.5, 0.5]).expect("valid");
        let lengths = net.expected_lengths(200);
        assert!(lengths[0] > 195.0, "condensate holds {}", lengths[0]);
        assert!(lengths[1] < 2.0);
    }

    #[test]
    fn mva_agrees_with_convolution() {
        let visit = [0.3, 0.5, 0.2];
        let rates = [1.0, 2.0, 0.7];
        let net = ClosedJackson::new(&visit, &rates).expect("valid");
        for m in [1usize, 3, 10, 40] {
            let conv = net.expected_lengths(m);
            let mva = net.mva(m).mean_lengths;
            for (i, (a, b)) in conv.iter().zip(&mva).enumerate() {
                assert!(
                    (a - b).abs() < 1e-7,
                    "m={m} queue {i}: convolution {a} vs MVA {b}"
                );
            }
        }
    }

    #[test]
    fn throughput_matches_mva() {
        let visit = [0.4, 0.6];
        let rates = [1.5, 1.0];
        let net = ClosedJackson::new(&visit, &rates).expect("valid");
        let m = 12;
        let gc = net.convolution(m);
        let tps = net.throughputs(m, &gc);
        let mva = net.mva(m);
        for (i, &tp) in tps.iter().enumerate() {
            let expected = mva.throughput * visit[i];
            assert!(
                (tp - expected).abs() < 1e-8,
                "queue {i}: {tp} vs {expected}"
            );
        }
    }

    #[test]
    fn idle_probability_consistent_with_marginal() {
        let net = ClosedJackson::from_utilizations(&[1.0, 0.6]).expect("valid");
        let m = 9;
        let gc = net.convolution(m);
        let idle = net.idle_probabilities(m, &gc);
        for (i, &p_idle) in idle.iter().enumerate() {
            let pmf = net.marginal_pmf(i, m, &gc);
            assert!((p_idle - pmf[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn effective_departure_rates_saturate() {
        // With plentiful credits everyone spends at nearly full rate μ.
        let net = ClosedJackson::from_utilizations(&[1.0; 4]).expect("valid");
        let m = 400;
        let gc = net.convolution(m);
        let rates = net.effective_departure_rates(m, &gc);
        for &r in &rates {
            assert!(r > 0.95, "rate {r}");
        }
    }

    #[test]
    fn rescaling_keeps_huge_populations_finite() {
        // N = 50 symmetric, M = 50_000: raw G(M) = C(50049, 49) ≈ 10^147;
        // push further with N = 200 where raw overflow would occur.
        let net = ClosedJackson::from_utilizations(&vec![1.0; 200]).expect("valid");
        let m = 20_000;
        let gc = net.convolution(m);
        assert!(gc.g(m).is_finite() && gc.g(m) > 0.0);
        // Symmetric: mean wealth must still equal M/N.
        let lengths = net.expected_lengths_with(m, &gc);
        assert!((lengths[0] - 100.0).abs() < 1e-6, "mean {}", lengths[0]);
        // ln G is meaningful and increasing.
        assert!(gc.ln_g(m) > gc.ln_g(m - 1));
    }

    #[test]
    fn prob_at_least_edge_cases() {
        let net = ClosedJackson::from_utilizations(&[1.0, 0.5]).expect("valid");
        let m = 5;
        let gc = net.convolution(m);
        assert_eq!(net.prob_at_least(0, 6, m, &gc), 0.0);
        assert!((net.prob_at_least(0, 0, m, &gc) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_zero_population() {
        let net = ClosedJackson::from_utilizations(&[1.0, 0.5]).expect("valid");
        let gc = net.convolution(0);
        assert_eq!(net.throughputs(0, &gc), vec![0.0, 0.0]);
    }

    #[test]
    fn new_with_zero_visit_ratio_allowed() {
        // A peer that nobody buys from still participates (u_i = 0 is
        // rejected by from_utilizations but fine via new(), where the
        // convolution simply never allocates it credits).
        let net = ClosedJackson::new(&[0.0, 1.0, 1.0], &[1.0, 1.0, 1.0]);
        // u_0 = 0 -> from normalized_utilizations this is 0, which breaks
        // the (0,1] invariant; ensure we reject it for clarity.
        assert!(net.is_ok());
        let net = net.expect("constructed");
        let lengths = net.expected_lengths(10);
        assert!(lengths[0] < 1e-12);
        assert!((lengths[1] - 5.0).abs() < 1e-9);
    }
}

//! Row-stochastic credit-transfer matrices.
//!
//! In the paper's model (Table I), `p_ij` is the fraction of peer *i*'s
//! credit spending that goes to neighbor *j*; each row of the matrix
//! **P** sums to 1 (a peer's spending is distributed over its neighbors,
//! with `p_ii > 0` modeling credits it reserves). The paper's Lemma 1
//! requires **P** to admit a positive stationary flow, which holds on the
//! irreducible (strongly connected) case this module can verify.

use crate::error::QueueingError;

/// Tolerance for row-sum validation.
const ROW_SUM_TOL: f64 = 1e-9;

/// A validated row-stochastic matrix of credit-transfer probabilities.
///
/// ```
/// use scrip_queueing::TransferMatrix;
///
/// # fn main() -> Result<(), scrip_queueing::QueueingError> {
/// let p = TransferMatrix::from_rows(vec![
///     vec![0.5, 0.5],
///     vec![0.25, 0.75],
/// ])?;
/// assert_eq!(p.n(), 2);
/// assert!(p.is_irreducible());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TransferMatrix {
    n: usize,
    /// Row-major entries.
    data: Vec<f64>,
}

impl TransferMatrix {
    /// Builds and validates a matrix from dense rows.
    ///
    /// # Errors
    /// Returns [`QueueingError::Dimension`] for empty or ragged input and
    /// [`QueueingError::NotStochastic`] if any entry is negative/non-finite
    /// or any row does not sum to 1 (within `1e-9`).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, QueueingError> {
        let n = rows.len();
        if n == 0 {
            return Err(QueueingError::Dimension("empty matrix".into()));
        }
        let mut data = Vec::with_capacity(n * n);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(QueueingError::Dimension(format!(
                    "row {i} has {} entries, expected {n}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Self::from_flat(n, data)
    }

    /// Builds and validates a matrix from a row-major flat buffer.
    ///
    /// # Errors
    /// Same conditions as [`TransferMatrix::from_rows`].
    pub fn from_flat(n: usize, data: Vec<f64>) -> Result<Self, QueueingError> {
        if n == 0 || data.len() != n * n {
            return Err(QueueingError::Dimension(format!(
                "flat buffer has {} entries, expected {}",
                data.len(),
                n * n
            )));
        }
        for (idx, &v) in data.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(QueueingError::NotStochastic(format!(
                    "entry ({}, {}) = {v}",
                    idx / n,
                    idx % n
                )));
            }
        }
        for i in 0..n {
            let sum: f64 = data[i * n..(i + 1) * n].iter().sum();
            if (sum - 1.0).abs() > ROW_SUM_TOL {
                return Err(QueueingError::NotStochastic(format!(
                    "row {i} sums to {sum}"
                )));
            }
        }
        Ok(TransferMatrix { n, data })
    }

    /// Builds a matrix by normalizing non-negative weights per row.
    ///
    /// `weights[i]` lists `(column, weight)` pairs; weights need not sum
    /// to one. Rows with zero total weight get a self-loop (`p_ii = 1`),
    /// modeling a peer that currently buys from nobody.
    ///
    /// # Errors
    /// Returns [`QueueingError::Dimension`] if a column index is out of
    /// range, or [`QueueingError::InvalidParameter`] for negative or
    /// non-finite weights.
    pub fn from_weighted_rows(
        n: usize,
        weights: &[Vec<(usize, f64)>],
    ) -> Result<Self, QueueingError> {
        if weights.len() != n || n == 0 {
            return Err(QueueingError::Dimension(format!(
                "{} weight rows for n = {n}",
                weights.len()
            )));
        }
        let mut data = vec![0.0; n * n];
        for (i, row) in weights.iter().enumerate() {
            let mut total = 0.0;
            for &(j, w) in row {
                if j >= n {
                    return Err(QueueingError::Dimension(format!(
                        "column {j} out of range in row {i}"
                    )));
                }
                if !w.is_finite() || w < 0.0 {
                    return Err(QueueingError::InvalidParameter(format!(
                        "weight ({i}, {j}) = {w}"
                    )));
                }
                total += w;
            }
            if total <= 0.0 {
                data[i * n + i] = 1.0;
            } else {
                for &(j, w) in row {
                    data[i * n + j] += w / total;
                }
            }
        }
        TransferMatrix::from_flat(n, data)
    }

    /// The uniform matrix where every peer spends equally over all `n`
    /// peers including itself (the "fully mixed" market).
    ///
    /// # Errors
    /// Returns [`QueueingError::Dimension`] if `n == 0`.
    pub fn uniform(n: usize) -> Result<Self, QueueingError> {
        if n == 0 {
            return Err(QueueingError::Dimension(
                "uniform matrix needs n > 0".into(),
            ));
        }
        TransferMatrix::from_flat(n, vec![1.0 / n as f64; n * n])
    }

    /// Matrix dimension (number of peers).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The entry `p_ij`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index ({i}, {j}) out of range");
        self.data[i * self.n + j]
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "row {i} out of range");
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Left-multiplies: `out = x P` (the flow-update step of Eq. 1).
    ///
    /// # Panics
    /// Panics if `x.len() != n`.
    pub fn left_multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        let mut out = vec![0.0; self.n];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.n..(i + 1) * self.n];
            for (j, &p) in row.iter().enumerate() {
                out[j] += xi * p;
            }
        }
        out
    }

    /// Whether the support digraph is strongly connected (every peer's
    /// credits can eventually reach every other peer). This is the
    /// practical hypothesis under which the stationary flow of Lemma 1 is
    /// unique and strictly positive.
    pub fn is_irreducible(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        self.reaches_all_forward() && self.reaches_all_backward()
    }

    fn reaches_all_forward(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            for (j, &p) in row.iter().enumerate() {
                if !seen[j] && p > 0.0 {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == self.n
    }

    fn reaches_all_backward(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(j) = stack.pop() {
            // Column j: elements at indices j, j + n, j + 2n, …
            for (i, &p) in self.data[j..].iter().step_by(self.n).enumerate() {
                if !seen[i] && p > 0.0 {
                    seen[i] = true;
                    count += 1;
                    stack.push(i);
                }
            }
        }
        count == self.n
    }

    /// Whether the chain is aperiodic in the cheap sufficient sense of
    /// having at least one self-loop. Power iteration converges without
    /// averaging when this holds.
    pub fn has_self_loop(&self) -> bool {
        (0..self.n).any(|i| self.data[i * self.n + i] > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validates_shape() {
        assert!(matches!(
            TransferMatrix::from_rows(vec![]),
            Err(QueueingError::Dimension(_))
        ));
        assert!(matches!(
            TransferMatrix::from_rows(vec![vec![1.0], vec![0.5, 0.5]]),
            Err(QueueingError::Dimension(_))
        ));
    }

    #[test]
    fn from_rows_validates_stochasticity() {
        assert!(matches!(
            TransferMatrix::from_rows(vec![vec![0.5, 0.6], vec![0.5, 0.5]]),
            Err(QueueingError::NotStochastic(_))
        ));
        assert!(matches!(
            TransferMatrix::from_rows(vec![vec![1.5, -0.5], vec![0.5, 0.5]]),
            Err(QueueingError::NotStochastic(_))
        ));
        assert!(matches!(
            TransferMatrix::from_rows(vec![vec![f64::NAN, 1.0], vec![0.5, 0.5]]),
            Err(QueueingError::NotStochastic(_))
        ));
    }

    #[test]
    fn accessors() {
        let p = TransferMatrix::from_rows(vec![vec![0.25, 0.75], vec![1.0, 0.0]]).expect("valid");
        assert_eq!(p.n(), 2);
        assert_eq!(p.get(0, 1), 0.75);
        assert_eq!(p.row(1), &[1.0, 0.0]);
    }

    #[test]
    fn from_weighted_rows_normalizes() {
        let p = TransferMatrix::from_weighted_rows(
            3,
            &[
                vec![(1, 2.0), (2, 2.0)],
                vec![(0, 5.0)],
                vec![], // isolated: gets a self-loop
            ],
        )
        .expect("valid");
        assert_eq!(p.get(0, 1), 0.5);
        assert_eq!(p.get(0, 2), 0.5);
        assert_eq!(p.get(1, 0), 1.0);
        assert_eq!(p.get(2, 2), 1.0);
    }

    #[test]
    fn from_weighted_rows_accumulates_duplicate_columns() {
        let p = TransferMatrix::from_weighted_rows(2, &[vec![(1, 1.0), (1, 1.0)], vec![(0, 3.0)]])
            .expect("valid");
        assert_eq!(p.get(0, 1), 1.0);
    }

    #[test]
    fn from_weighted_rows_rejects_bad_input() {
        assert!(TransferMatrix::from_weighted_rows(2, &[vec![(5, 1.0)], vec![]]).is_err());
        assert!(TransferMatrix::from_weighted_rows(2, &[vec![(0, -1.0)], vec![]]).is_err());
        assert!(TransferMatrix::from_weighted_rows(1, &[vec![], vec![]]).is_err());
    }

    #[test]
    fn uniform_matrix() {
        let p = TransferMatrix::uniform(4).expect("valid");
        for i in 0..4 {
            for j in 0..4 {
                assert!((p.get(i, j) - 0.25).abs() < 1e-15);
            }
        }
        assert!(TransferMatrix::uniform(0).is_err());
    }

    #[test]
    fn left_multiply_preserves_mass() {
        let p = TransferMatrix::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.5, 0.0, 0.5],
            vec![0.2, 0.3, 0.5],
        ])
        .expect("valid");
        let x = [0.2, 0.3, 0.5];
        let y = p.left_multiply(&x);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Hand-computed first coordinate: 0.3*0.5 + 0.5*0.2 = 0.25.
        assert!((y[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn irreducibility_detects_ring_and_split() {
        let ring = TransferMatrix::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ])
        .expect("valid");
        assert!(ring.is_irreducible());
        // Two disconnected self-loops.
        let split = TransferMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).expect("valid");
        assert!(!split.is_irreducible());
        // Absorbing state: 0 -> 1 but 1 -> 1 only.
        let absorbing =
            TransferMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.0, 1.0]]).expect("valid");
        assert!(!absorbing.is_irreducible());
    }

    #[test]
    fn self_loop_detection() {
        let with = TransferMatrix::from_rows(vec![vec![0.5, 0.5], vec![1.0, 0.0]]).expect("ok");
        assert!(with.has_self_loop());
        let without = TransferMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).expect("ok");
        assert!(!without.has_self_loop());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let p = TransferMatrix::uniform(2).expect("valid");
        p.get(2, 0);
    }
}

//! The wealth-condensation threshold of paper Eq. (4) and Theorems 2–3.
//!
//! In a growing network (`N → ∞`, average wealth `c = M/N` fixed) the
//! paper proves that wealth condenses onto at least one peer **iff**
//! `c > T`, where
//!
//! ```text
//! T = lim_{z→1⁻} ∫₀¹ w/(1 − zw) · f(w) dw
//! ```
//!
//! and `f` is the (continuous) density of normalized utilizations.
//! Intuitively `T` is the largest average wealth the *bulk* of peers
//! (those with `u < 1`) can absorb: each queue with utilization `w`
//! holds `w/(1−w)` credits in expectation, exactly the mean of its
//! geometric marginal. If `c` exceeds that capacity, the excess piles
//! onto the maximal-utilization peers — the condensate.
//!
//! The paper's corollary follows: under **symmetric utilization**
//! (`u ≡ 1`) the integral diverges, `T = ∞`, and no condensation can
//! occur — matching this module's [`Threshold::Divergent`].

use crate::error::QueueingError;

/// The condensation threshold `T` of Eq. (4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Threshold {
    /// `T` is finite: condensation occurs for average wealth `c > T`.
    Finite(f64),
    /// The integral diverges (`T = ∞`): condensation never occurs
    /// (the symmetric-utilization corollary).
    Divergent,
}

impl Threshold {
    /// The finite value, if any.
    pub fn value(&self) -> Option<f64> {
        match self {
            Threshold::Finite(t) => Some(*t),
            Threshold::Divergent => None,
        }
    }

    /// Whether the threshold is finite.
    pub fn is_finite(&self) -> bool {
        matches!(self, Threshold::Finite(_))
    }
}

impl std::fmt::Display for Threshold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Threshold::Finite(t) => write!(f, "T = {t:.4}"),
            Threshold::Divergent => write!(f, "T = ∞"),
        }
    }
}

/// Verdict of Theorems 2–3 for a given average wealth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// `c ≤ T`: expected wealth stays bounded at every peer (Theorem 2).
    Sustainable,
    /// `c > T`: at least one peer's expected wealth grows without bound
    /// (Theorem 3).
    Condensing,
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Regime::Sustainable => write!(f, "sustainable"),
            Regime::Condensing => write!(f, "condensing"),
        }
    }
}

/// Classifies an average wealth level against a threshold (Theorems 2–3).
pub fn classify(average_wealth: f64, threshold: &Threshold) -> Regime {
    match threshold {
        Threshold::Divergent => Regime::Sustainable,
        Threshold::Finite(t) => {
            if average_wealth > *t {
                Regime::Condensing
            } else {
                Regime::Sustainable
            }
        }
    }
}

/// An empirical (plug-in) estimate of `T` from a finite utilization
/// vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdEstimate {
    /// The estimated threshold.
    pub threshold: Threshold,
    /// Fraction of peers at (numerically) maximal utilization — the
    /// condensate candidates excluded from the bulk sum.
    pub condensate_fraction: f64,
}

/// Estimates `T` from an empirical utilization vector by the plug-in rule
///
/// ```text
/// T̂ = (1/N) Σ_{i : u_i < 1 − ε} u_i / (1 − u_i)
/// ```
///
/// Peers within `atom_epsilon` of the maximum are the condensate
/// candidates; they are excluded from the bulk (in the continuum limit
/// they carry zero measure). If **every** peer is maximal — the paper's
/// symmetric-utilization case — the estimate is [`Threshold::Divergent`],
/// reproducing the corollary.
///
/// # Errors
/// Returns [`QueueingError::InvalidParameter`] if `u` is empty, any entry
/// is outside `[0, 1]` (after normalization they must be), or
/// `atom_epsilon` is not in `(0, 1)`.
pub fn empirical_threshold(
    u: &[f64],
    atom_epsilon: f64,
) -> Result<ThresholdEstimate, QueueingError> {
    if u.is_empty() {
        return Err(QueueingError::InvalidParameter(
            "empty utilization vector".into(),
        ));
    }
    if !(atom_epsilon > 0.0 && atom_epsilon < 1.0) {
        return Err(QueueingError::InvalidParameter(format!(
            "atom_epsilon = {atom_epsilon} outside (0, 1)"
        )));
    }
    for (i, &ui) in u.iter().enumerate() {
        if !ui.is_finite() || !(0.0..=1.0 + 1e-12).contains(&ui) {
            return Err(QueueingError::InvalidParameter(format!(
                "u_{i} = {ui} outside [0, 1]"
            )));
        }
    }
    let n = u.len();
    let cutoff = 1.0 - atom_epsilon;
    let mut bulk_sum = 0.0;
    let mut atoms = 0usize;
    for &ui in u {
        if ui >= cutoff {
            atoms += 1;
        } else {
            bulk_sum += ui / (1.0 - ui);
        }
    }
    let condensate_fraction = atoms as f64 / n as f64;
    let threshold = if atoms == n {
        Threshold::Divergent
    } else {
        Threshold::Finite(bulk_sum / n as f64)
    };
    Ok(ThresholdEstimate {
        threshold,
        condensate_fraction,
    })
}

/// Evaluates Eq. (4) for a continuous utilization density `f` on `[0, 1]`
/// by adaptive refinement toward the singular endpoint.
///
/// The integrand `w·f(w)/(1−w)` is integrated over `[0, 1 − δ_k]` for a
/// shrinking sequence `δ_k = 2^{-k}`; if the partial integrals converge
/// (increments shrink below `rel_tol`), the limit is returned as
/// [`Threshold::Finite`]; if they keep growing past `divergence_bound`,
/// the integral is declared [`Threshold::Divergent`].
///
/// # Errors
/// Returns [`QueueingError::InvalidParameter`] if `f` returns a negative
/// or non-finite value at a probe point.
pub fn threshold_from_density(
    f: impl Fn(f64) -> f64,
    rel_tol: f64,
    divergence_bound: f64,
) -> Result<Threshold, QueueingError> {
    // Validate the density on a coarse probe grid.
    for k in 0..=50 {
        let w = k as f64 / 50.0;
        let v = f(w);
        if !v.is_finite() || v < 0.0 {
            return Err(QueueingError::InvalidParameter(format!(
                "density f({w}) = {v}"
            )));
        }
    }
    let integrand = |w: f64| w * f(w) / (1.0 - w);
    let mut prev = simpson(&integrand, 0.0, 1.0 - 0.0625, 512);
    for k in 5..=44 {
        let delta = 2f64.powi(-k);
        let hi = 1.0 - delta;
        let total = simpson(&integrand, 0.0, 1.0 - 0.0625, 512)
            + simpson(&integrand, 1.0 - 0.0625, hi, 4096);
        if total > divergence_bound {
            return Ok(Threshold::Divergent);
        }
        let increment = (total - prev).abs();
        if increment <= rel_tol * total.abs().max(1e-12) {
            return Ok(Threshold::Finite(total));
        }
        prev = total;
    }
    // Increments never settled: treat as divergent (logarithmic growth).
    Ok(Threshold::Divergent)
}

/// Composite Simpson's rule on `[a, b]` with `panels` (rounded up to
/// even) subdivisions.
fn simpson(f: &impl Fn(f64) -> f64, a: f64, b: f64, panels: usize) -> f64 {
    if b <= a {
        return 0.0;
    }
    let n = (panels.max(2) + 1) & !1usize; // even
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        sum += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    sum * h / 3.0
}

/// Indices of the condensate-candidate peers: those with utilization
/// within `atom_epsilon` of 1.
pub fn condensate_candidates(u: &[f64], atom_epsilon: f64) -> Vec<usize> {
    u.iter()
        .enumerate()
        .filter(|(_, &ui)| ui >= 1.0 - atom_epsilon)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_utilization_gives_divergent_threshold() {
        // The corollary: u ≡ 1 ⇒ T = ∞ ⇒ always sustainable.
        let est = empirical_threshold(&[1.0; 100], 1e-9).expect("valid");
        assert_eq!(est.threshold, Threshold::Divergent);
        assert_eq!(est.condensate_fraction, 1.0);
        assert_eq!(classify(1e12, &est.threshold), Regime::Sustainable);
    }

    #[test]
    fn empirical_threshold_hand_computed() {
        // u = [1, 0.5, 0.5, 0.75]: bulk = {0.5, 0.5, 0.75},
        // T̂ = (1 + 1 + 3)/4 = 1.25.
        let est = empirical_threshold(&[1.0, 0.5, 0.5, 0.75], 1e-6).expect("valid");
        assert_eq!(est.threshold, Threshold::Finite(1.25));
        assert!((est.condensate_fraction - 0.25).abs() < 1e-12);
        assert_eq!(classify(1.0, &est.threshold), Regime::Sustainable);
        assert_eq!(classify(1.25, &est.threshold), Regime::Sustainable);
        assert_eq!(classify(1.3, &est.threshold), Regime::Condensing);
    }

    #[test]
    fn empirical_threshold_validation() {
        assert!(empirical_threshold(&[], 1e-6).is_err());
        assert!(empirical_threshold(&[0.5], 0.0).is_err());
        assert!(empirical_threshold(&[0.5], 1.0).is_err());
        assert!(empirical_threshold(&[1.5], 1e-6).is_err());
        assert!(empirical_threshold(&[-0.1], 1e-6).is_err());
    }

    #[test]
    fn density_linear_taper_has_threshold_one() {
        // f(w) = 2(1−w): ∫ w/(1−w)·2(1−w) dw = ∫ 2w dw = 1.
        let t = threshold_from_density(|w| 2.0 * (1.0 - w), 1e-8, 1e9).expect("valid");
        match t {
            Threshold::Finite(v) => assert!((v - 1.0).abs() < 1e-4, "T = {v}"),
            Threshold::Divergent => panic!("should converge"),
        }
    }

    #[test]
    fn density_quadratic_taper() {
        // f(w) = 3(1−w)²: ∫ 3w(1−w) dw = 3(1/2 − 1/3) = 1/2.
        let t = threshold_from_density(|w| 3.0 * (1.0 - w) * (1.0 - w), 1e-8, 1e9).expect("valid");
        match t {
            Threshold::Finite(v) => assert!((v - 0.5).abs() < 1e-4, "T = {v}"),
            Threshold::Divergent => panic!("should converge"),
        }
    }

    #[test]
    fn uniform_density_diverges() {
        // f ≡ 1 has positive mass at w = 1, so the integral diverges:
        // the bulk can absorb unbounded wealth and condensation never
        // happens — consistent with a spread including many near-maximal
        // utilizations.
        let t = threshold_from_density(|_| 1.0, 1e-10, 1e6).expect("valid");
        assert_eq!(t, Threshold::Divergent);
    }

    #[test]
    fn density_validation() {
        assert!(threshold_from_density(|_| -1.0, 1e-8, 1e9).is_err());
        assert!(threshold_from_density(|_| f64::NAN, 1e-8, 1e9).is_err());
    }

    #[test]
    fn candidates_found() {
        let u = [1.0, 0.3, 0.999999999999, 0.7];
        let c = condensate_candidates(&u, 1e-9);
        assert_eq!(c, vec![0, 2]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Threshold::Divergent.to_string(), "T = ∞");
        assert!(Threshold::Finite(1.25).to_string().contains("1.25"));
        assert_eq!(Regime::Sustainable.to_string(), "sustainable");
        assert_eq!(Regime::Condensing.to_string(), "condensing");
    }

    #[test]
    fn threshold_value_accessors() {
        assert_eq!(Threshold::Finite(2.0).value(), Some(2.0));
        assert_eq!(Threshold::Divergent.value(), None);
        assert!(Threshold::Finite(2.0).is_finite());
        assert!(!Threshold::Divergent.is_finite());
    }

    #[test]
    fn empirical_matches_density_for_sampled_bulk() {
        // Sample u_i from the CDF of f(w) = 2(1−w) (i.e. u = 1−sqrt(1−q))
        // plus one maximal atom; the plug-in estimate should be near the
        // analytic T = 1.
        let n = 20_000;
        let mut u: Vec<f64> = (0..n)
            .map(|i| {
                let q = (i as f64 + 0.5) / n as f64;
                1.0 - (1.0 - q).sqrt()
            })
            .collect();
        u.push(1.0);
        let est = empirical_threshold(&u, 1e-6).expect("valid");
        match est.threshold {
            Threshold::Finite(t) => {
                assert!((t - 1.0).abs() < 0.05, "plug-in T = {t}");
            }
            Threshold::Divergent => panic!("bulk should be finite"),
        }
    }
}

//! The paper's closed-form approximations (Eqs. 5–9) and the exact
//! symmetric marginal they approximate.
//!
//! Sec. V-B of the paper simplifies the product-form joint distribution
//! by inserting multinomial weights (Eq. 5), which turns the marginal
//! wealth distribution of a peer into a **binomial**:
//!
//! * Eq. (6): `Q{B_i = b} = Binomial(M, u_i / Σ_j u_j)` — general case.
//! * Eqs. (7)–(8): `Q{B_i = b} = Binomial(M, 1/N)` — symmetric case.
//! * Eq. (9): effective spending rate `μ_i (1 − Q{B_i = 0}) ≈ μ_i (1 − e^{−c})`.
//!
//! The *exact* marginal under the true (unweighted) product form with
//! symmetric utilization is different — a discrete uniform over
//! compositions whose marginal is [`exact_symmetric_marginal`] — so this
//! module also provides that, letting experiments quantify the paper's
//! approximation error (see the `approx_vs_exact` ablation bench).

use crate::error::QueueingError;

/// Natural logs of factorials `0! ..= n!`, built incrementally.
///
/// ```
/// use scrip_queueing::approx::LnFactorial;
/// let table = LnFactorial::up_to(10);
/// assert!((table.get(5) - 120f64.ln()).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LnFactorial {
    table: Vec<f64>,
}

impl LnFactorial {
    /// Builds the table for arguments `0..=n`.
    pub fn up_to(n: usize) -> Self {
        let mut table = Vec::with_capacity(n + 1);
        table.push(0.0);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).ln();
            table.push(acc);
        }
        LnFactorial { table }
    }

    /// `ln(k!)`.
    ///
    /// # Panics
    /// Panics if `k` exceeds the table size.
    pub fn get(&self, k: usize) -> f64 {
        self.table[k]
    }

    /// `ln C(n, k)`; zero-probability cases return `-inf`.
    ///
    /// # Panics
    /// Panics if `n` exceeds the table size.
    pub fn ln_choose(&self, n: usize, k: usize) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.get(n) - self.get(k) - self.get(n - k)
    }
}

/// The binomial PMF `Binomial(m, p)` as a dense vector over `b = 0..=m`,
/// evaluated in log space so huge `m` (the paper uses `M` up to 50 000)
/// cannot overflow.
///
/// # Errors
/// Returns [`QueueingError::InvalidParameter`] unless `0 ≤ p ≤ 1`.
pub fn binomial_pmf(m: usize, p: f64) -> Result<Vec<f64>, QueueingError> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(QueueingError::InvalidParameter(format!(
            "binomial p = {p} outside [0, 1]"
        )));
    }
    if p == 0.0 {
        let mut v = vec![0.0; m + 1];
        v[0] = 1.0;
        return Ok(v);
    }
    if p == 1.0 {
        let mut v = vec![0.0; m + 1];
        v[m] = 1.0;
        return Ok(v);
    }
    let lf = LnFactorial::up_to(m);
    let ln_p = p.ln();
    let ln_q = (1.0 - p).ln();
    let pmf = (0..=m)
        .map(|b| (lf.ln_choose(m, b) + b as f64 * ln_p + (m - b) as f64 * ln_q).exp())
        .collect();
    Ok(pmf)
}

/// Paper Eq. (6): the multinomial-approximation marginal of peer `i`,
/// `Binomial(M, u_i / Σ_j u_j)`.
///
/// # Errors
/// Returns [`QueueingError`] if `u` is empty, contains negatives, sums to
/// zero, or `i` is out of range.
pub fn eq6_marginal(m: usize, u: &[f64], i: usize) -> Result<Vec<f64>, QueueingError> {
    if u.is_empty() || i >= u.len() {
        return Err(QueueingError::Dimension(format!(
            "index {i} for {} utilizations",
            u.len()
        )));
    }
    let mut total = 0.0;
    for (k, &uk) in u.iter().enumerate() {
        if !uk.is_finite() || uk < 0.0 {
            return Err(QueueingError::InvalidParameter(format!("u_{k} = {uk}")));
        }
        total += uk;
    }
    if total <= 0.0 {
        return Err(QueueingError::InvalidParameter(
            "utilizations sum to zero".into(),
        ));
    }
    binomial_pmf(m, u[i] / total)
}

/// Paper Eqs. (7)–(8): the symmetric-case marginal `Binomial(M, 1/N)`.
///
/// # Errors
/// Returns [`QueueingError::InvalidParameter`] if `n == 0`.
pub fn eq8_symmetric_marginal(m: usize, n: usize) -> Result<Vec<f64>, QueueingError> {
    if n == 0 {
        return Err(QueueingError::InvalidParameter("n must be positive".into()));
    }
    binomial_pmf(m, 1.0 / n as f64)
}

/// The **exact** symmetric-case marginal under the true product form
/// (Eq. 3 with all `u_i = 1`): every composition of `M` into `N` parts is
/// equally likely, so
///
/// ```text
/// Q{B_i = b} = C(M − b + N − 2, N − 2) / C(M + N − 1, N − 1)
/// ```
///
/// For large `N` this approaches a geometric distribution with mean
/// `c = M/N` — visibly *heavier-tailed* than the paper's binomial
/// approximation, which is the gap the `approx_vs_exact` ablation
/// measures.
///
/// # Errors
/// Returns [`QueueingError::InvalidParameter`] if `n < 2`.
pub fn exact_symmetric_marginal(m: usize, n: usize) -> Result<Vec<f64>, QueueingError> {
    if n < 2 {
        return Err(QueueingError::InvalidParameter(format!(
            "exact symmetric marginal needs n >= 2, got {n}"
        )));
    }
    let lf = LnFactorial::up_to(m + n);
    let ln_denom = lf.ln_choose(m + n - 1, n - 1);
    let pmf = (0..=m)
        .map(|b| (lf.ln_choose(m - b + n - 2, n - 2) - ln_denom).exp())
        .collect();
    Ok(pmf)
}

/// Paper Eq. (9), exact prefix: the probability a peer is broke in the
/// symmetric approximation, `Q{B_i = 0} = ((N−1)/N)^M`.
///
/// # Errors
/// Returns [`QueueingError::InvalidParameter`] if `n == 0`.
pub fn idle_probability_symmetric(n: usize, m: usize) -> Result<f64, QueueingError> {
    if n == 0 {
        return Err(QueueingError::InvalidParameter("n must be positive".into()));
    }
    Ok(((n as f64 - 1.0) / n as f64).powi(m as i32))
}

/// Paper Eq. (9), large-`N` limit: content-exchange efficiency
/// `1 − e^{−c}` as a function of average wealth `c`.
pub fn efficiency_vs_wealth(c: f64) -> f64 {
    1.0 - (-c).exp()
}

/// Mean of a dense PMF over `0..len`.
pub fn pmf_mean(pmf: &[f64]) -> f64 {
    pmf.iter()
        .enumerate()
        .map(|(b, &p)| b as f64 * p)
        .sum::<f64>()
}

/// Variance of a dense PMF over `0..len`.
pub fn pmf_variance(pmf: &[f64]) -> f64 {
    let mean = pmf_mean(pmf);
    pmf.iter()
        .enumerate()
        .map(|(b, &p)| (b as f64 - mean).powi(2) * p)
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_values() {
        let lf = LnFactorial::up_to(20);
        assert_eq!(lf.get(0), 0.0);
        assert_eq!(lf.get(1), 0.0);
        assert!((lf.get(10) - 3_628_800f64.ln()).abs() < 1e-10);
        assert!((lf.ln_choose(10, 3) - 120f64.ln()).abs() < 1e-10);
        assert_eq!(lf.ln_choose(5, 9), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_small_case() {
        // Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
        let pmf = binomial_pmf(4, 0.5).expect("valid");
        let expected = [1.0 / 16.0, 4.0 / 16.0, 6.0 / 16.0, 4.0 / 16.0, 1.0 / 16.0];
        for (a, e) in pmf.iter().zip(&expected) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn binomial_pmf_degenerate() {
        let p0 = binomial_pmf(5, 0.0).expect("valid");
        assert_eq!(p0[0], 1.0);
        assert_eq!(p0.iter().sum::<f64>(), 1.0);
        let p1 = binomial_pmf(5, 1.0).expect("valid");
        assert_eq!(p1[5], 1.0);
        assert!(binomial_pmf(5, -0.1).is_err());
        assert!(binomial_pmf(5, 1.1).is_err());
    }

    #[test]
    fn binomial_huge_m_is_stable() {
        // The paper's Fig. 2 largest case: M = 50 000, N = 50.
        let pmf = binomial_pmf(50_000, 1.0 / 50.0).expect("valid");
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        let mean = pmf_mean(&pmf);
        assert!((mean - 1000.0).abs() < 1e-6, "mean {mean}");
        let var = pmf_variance(&pmf);
        assert!((var - 980.0).abs() < 1e-3, "variance {var}");
    }

    #[test]
    fn eq6_reduces_to_eq8_when_symmetric() {
        let m = 100;
        let u = vec![1.0; 10];
        let via6 = eq6_marginal(m, &u, 3).expect("valid");
        let via8 = eq8_symmetric_marginal(m, 10).expect("valid");
        for (a, b) in via6.iter().zip(&via8) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn eq6_validation() {
        assert!(eq6_marginal(10, &[], 0).is_err());
        assert!(eq6_marginal(10, &[1.0], 5).is_err());
        assert!(eq6_marginal(10, &[-1.0, 1.0], 0).is_err());
        assert!(eq6_marginal(10, &[0.0, 0.0], 0).is_err());
    }

    #[test]
    fn exact_symmetric_marginal_sums_to_one_and_has_mean_c() {
        for (m, n) in [(20usize, 4usize), (100, 10), (60, 3)] {
            let pmf = exact_symmetric_marginal(m, n).expect("valid");
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "mass {total}");
            let mean = pmf_mean(&pmf);
            assert!(
                (mean - m as f64 / n as f64).abs() < 1e-6,
                "m={m} n={n} mean {mean}"
            );
        }
        assert!(exact_symmetric_marginal(10, 1).is_err());
    }

    #[test]
    fn exact_marginal_two_queues_is_uniform() {
        // N = 2: compositions (b, M−b) equally likely -> uniform marginal.
        let pmf = exact_symmetric_marginal(7, 2).expect("valid");
        for &p in &pmf {
            assert!((p - 1.0 / 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_is_heavier_tailed_than_binomial() {
        // Same mean; the true product-form marginal has a fatter tail than
        // the paper's binomial approximation.
        let (m, n) = (200usize, 20usize);
        let exact = exact_symmetric_marginal(m, n).expect("valid");
        let approx = eq8_symmetric_marginal(m, n).expect("valid");
        let tail = |pmf: &[f64]| pmf.iter().skip(31).sum::<f64>(); // P(B > 3c)
        assert!(
            tail(&exact) > 10.0 * tail(&approx),
            "exact tail {} vs binomial tail {}",
            tail(&exact),
            tail(&approx)
        );
    }

    #[test]
    fn idle_probability_matches_efficiency_limit() {
        // ((N−1)/N)^M → e^{−c} for large N with c = M/N fixed.
        let n = 10_000;
        let c = 3.0;
        let m = (n as f64 * c) as usize;
        let idle = idle_probability_symmetric(n, m).expect("valid");
        assert!((idle - (-c).exp()).abs() < 1e-3, "idle {idle}");
        let eff = efficiency_vs_wealth(c);
        assert!((eff - (1.0 - idle)).abs() < 1e-3);
        assert!(idle_probability_symmetric(0, 5).is_err());
    }

    #[test]
    fn efficiency_curve_shape() {
        // Fig. 4's shape: rises steeply then saturates at 1.
        assert_eq!(efficiency_vs_wealth(0.0), 0.0);
        assert!(efficiency_vs_wealth(1.0) > 0.6);
        assert!(efficiency_vs_wealth(5.0) > 0.99);
        assert!(efficiency_vs_wealth(10.0) > 0.9999);
    }

    #[test]
    fn pmf_moments() {
        let pmf = [0.25, 0.5, 0.25];
        assert!((pmf_mean(&pmf) - 1.0).abs() < 1e-12);
        assert!((pmf_variance(&pmf) - 0.5).abs() < 1e-12);
    }
}

//! Error type shared by the queueing-network algorithms.

use std::error::Error;
use std::fmt;

/// Errors from queueing-network construction and analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum QueueingError {
    /// A matrix or vector had inconsistent or empty dimensions.
    Dimension(String),
    /// A matrix failed row-stochastic validation (negative entries or a
    /// row not summing to one).
    NotStochastic(String),
    /// A parameter (rate, utilization, probability) was out of range.
    InvalidParameter(String),
    /// The routing structure is reducible where irreducibility is
    /// required, or a linear system was singular.
    Singular(String),
    /// An iterative method failed to converge within its budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// The open network is unstable (some utilization ≥ 1).
    Unstable(String),
}

impl fmt::Display for QueueingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueingError::Dimension(msg) => write!(f, "dimension mismatch: {msg}"),
            QueueingError::NotStochastic(msg) => write!(f, "matrix not row-stochastic: {msg}"),
            QueueingError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            QueueingError::Singular(msg) => write!(f, "singular or reducible system: {msg}"),
            QueueingError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            QueueingError::Unstable(msg) => write!(f, "unstable network: {msg}"),
        }
    }
}

impl Error for QueueingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(QueueingError::Dimension("bad".into())
            .to_string()
            .contains("dimension"));
        assert!(QueueingError::NotStochastic("row 3".into())
            .to_string()
            .contains("row 3"));
        assert!(QueueingError::NoConvergence {
            iterations: 10,
            residual: 0.5
        }
        .to_string()
        .contains("10 iterations"));
        assert!(QueueingError::Unstable("rho".into())
            .to_string()
            .contains("unstable"));
    }
}

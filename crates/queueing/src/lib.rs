//! # scrip-queueing — Jackson queueing-network analytics
//!
//! The analytical engine of the `scrip` reproduction of Qiu et al.,
//! *"Exploring the Sustainability of Credit-incentivized Peer-to-Peer
//! Content Distribution"* (ICDCSW 2012).
//!
//! The paper's central idea is to model a credit-based P2P market as a
//! **closed Jackson network**: each peer is a queue, each unit credit a
//! job, credit spending is job service, and the fraction of peer *i*'s
//! purchases that go to neighbor *j* is the routing probability `p_ij`.
//! This crate implements everything that analysis needs:
//!
//! * [`TransferMatrix`] — validated row-stochastic routing matrices with
//!   irreducibility checks (the hypothesis of the paper's Lemma 1).
//! * [`stationary`] — solvers for the equilibrium flow equation
//!   `λP = λ` (paper Eq. 1), by direct elimination or power iteration.
//! * [`closed`] — closed Jackson networks: normalized utilizations (Eq. 2),
//!   the product-form equilibrium (Eq. 3) evaluated with **Buzen's
//!   convolution algorithm**, exact marginal credit distributions, mean
//!   wealth per peer, and Mean Value Analysis as a cross-check.
//! * [`open`] — open Jackson networks for churn scenarios (Sec. VI-E).
//! * [`condensation`] — the condensation threshold `T` of Eq. (4) and the
//!   classification of Theorems 2–3 (condensation occurs iff the average
//!   wealth `c` exceeds `T`).
//! * [`approx`] — the paper's multinomial approximations (Eqs. 5–8) and
//!   the content-exchange efficiency formula (Eq. 9).
//!
//! ## Example: from routing matrix to wealth distribution
//!
//! ```
//! use scrip_queueing::{closed::ClosedJackson, stationary, TransferMatrix};
//!
//! # fn main() -> Result<(), scrip_queueing::QueueingError> {
//! // Three peers in a ring; each spends entirely to its clockwise neighbor.
//! let p = TransferMatrix::from_rows(vec![
//!     vec![0.0, 1.0, 0.0],
//!     vec![0.0, 0.0, 1.0],
//!     vec![1.0, 0.0, 0.0],
//! ])?;
//! let flows = stationary::stationary_flows(&p, stationary::SolveMethod::Auto)?;
//! let service_rates = [1.0, 2.0, 4.0];
//! let network = ClosedJackson::new(&flows, &service_rates)?;
//! // With 30 credits in the system, who holds the wealth?
//! let mean_wealth = network.expected_lengths(30);
//! // The slowest spender (peer 0) accumulates the most credits.
//! assert!(mean_wealth[0] > mean_wealth[1] && mean_wealth[1] > mean_wealth[2]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod closed;
pub mod condensation;
mod error;
pub mod matrix;
pub mod open;
pub mod stationary;

pub use error::QueueingError;
pub use matrix::TransferMatrix;

//! Solvers for the equilibrium flow equation `λP = λ` (paper Eq. 1).
//!
//! The paper's Lemma 1 shows (via Perron–Frobenius) that a non-trivial,
//! non-negative solution always exists for a row-stochastic **P**. On the
//! irreducible case — which every connected overlay produces — the
//! solution is unique up to scale and strictly positive. Two solvers are
//! provided:
//!
//! * [`direct_solve`]: dense Gaussian elimination on `(Pᵀ − I)λ = 0` with
//!   the normalization `Σλ = 1` replacing one equation. Exact up to
//!   floating-point error; O(n³).
//! * [`power_iteration`]: repeated application of `λ ← λP` with lazy
//!   (Cesàro-style) averaging so periodic chains (e.g. bipartite rings)
//!   still converge. O(n²) per step.
//!
//! [`stationary_flows`] picks automatically: direct for `n ≤ 512`, power
//! iteration beyond.

use crate::error::QueueingError;
use crate::matrix::TransferMatrix;

/// Which algorithm [`stationary_flows`] should use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolveMethod {
    /// Direct for small systems, power iteration for large ones.
    #[default]
    Auto,
    /// Dense Gaussian elimination.
    Direct,
    /// Lazy power iteration.
    Power,
}

/// Dimension at or below which [`SolveMethod::Auto`] uses the direct
/// solver.
pub const AUTO_DIRECT_LIMIT: usize = 512;

/// Options for [`power_iteration`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerOptions {
    /// Maximum iterations before giving up.
    pub max_iterations: usize,
    /// Convergence threshold on `‖λP − λ‖∞`.
    pub tolerance: f64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            max_iterations: 100_000,
            tolerance: 1e-12,
        }
    }
}

/// Computes the stationary flow vector of `p`, normalized to sum to 1.
///
/// # Errors
/// Returns [`QueueingError::Singular`] if `p` is reducible (no unique
/// positive flow) and [`QueueingError::NoConvergence`] if power iteration
/// exhausts its budget.
pub fn stationary_flows(
    p: &TransferMatrix,
    method: SolveMethod,
) -> Result<Vec<f64>, QueueingError> {
    if !p.is_irreducible() {
        return Err(QueueingError::Singular(
            "transfer matrix is reducible; stationary flow not unique".into(),
        ));
    }
    match method {
        SolveMethod::Direct => direct_solve(p),
        SolveMethod::Power => power_iteration(p, PowerOptions::default()),
        SolveMethod::Auto => {
            if p.n() <= AUTO_DIRECT_LIMIT {
                direct_solve(p)
            } else {
                power_iteration(p, PowerOptions::default())
            }
        }
    }
}

/// Solves `λP = λ`, `Σλ = 1` by Gaussian elimination with partial
/// pivoting.
///
/// # Errors
/// Returns [`QueueingError::Singular`] if the system is singular, which
/// for a validated transfer matrix means **P** is reducible.
pub fn direct_solve(p: &TransferMatrix) -> Result<Vec<f64>, QueueingError> {
    let n = p.n();
    // Build A = Pᵀ − I with the last row replaced by the normalization
    // Σλ = 1; right-hand side e_n.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[j * n + i] = p.get(i, j); // transpose
        }
    }
    for i in 0..n {
        a[i * n + i] -= 1.0;
    }
    for j in 0..n {
        a[(n - 1) * n + j] = 1.0;
    }
    let mut b = vec![0.0f64; n];
    b[n - 1] = 1.0;

    solve_dense(&mut a, &mut b, n)?;

    // Numerical noise can leave tiny negatives; clamp and renormalize.
    let mut total = 0.0;
    for v in &mut b {
        if *v < 0.0 {
            if *v < -1e-8 {
                return Err(QueueingError::Singular(format!(
                    "stationary solve produced negative flow {v}"
                )));
            }
            *v = 0.0;
        }
        total += *v;
    }
    if total <= 0.0 {
        return Err(QueueingError::Singular("zero stationary flow".into()));
    }
    for v in &mut b {
        *v /= total;
    }
    Ok(b)
}

/// In-place dense linear solve `A x = b` (row-major `a`, overwriting `b`
/// with the solution) via Gaussian elimination with partial pivoting.
pub(crate) fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Result<(), QueueingError> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-13 {
            return Err(QueueingError::Singular(format!(
                "pivot {pivot_val:.3e} at column {col}"
            )));
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            a[row * n + col] = 0.0;
            for k in (col + 1)..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in (col + 1)..n {
            sum -= a[col * n + k] * b[k];
        }
        b[col] = sum / a[col * n + col];
    }
    Ok(())
}

/// Lazy power iteration: `λ ← ½(λ + λP)`, normalized each step.
///
/// The ½ mixing makes the chain aperiodic regardless of the structure of
/// **P**, so convergence holds for any irreducible matrix.
///
/// # Errors
/// Returns [`QueueingError::NoConvergence`] if `opts.max_iterations` is
/// reached with residual above `opts.tolerance`.
pub fn power_iteration(p: &TransferMatrix, opts: PowerOptions) -> Result<Vec<f64>, QueueingError> {
    let n = p.n();
    let mut x = vec![1.0 / n as f64; n];
    let mut residual = f64::INFINITY;
    for _ in 0..opts.max_iterations {
        let px = p.left_multiply(&x);
        residual = px
            .iter()
            .zip(&x)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let mut next: Vec<f64> = px.iter().zip(&x).map(|(a, b)| 0.5 * (a + b)).collect();
        let total: f64 = next.iter().sum();
        for v in &mut next {
            *v /= total;
        }
        x = next;
        if residual < opts.tolerance {
            return Ok(x);
        }
    }
    // One last check: the lazy iterate may already satisfy the fixed point.
    if residual < opts.tolerance * 10.0 {
        return Ok(x);
    }
    Err(QueueingError::NoConvergence {
        iterations: opts.max_iterations,
        residual,
    })
}

/// Verifies that `flows` satisfies `λP = λ` within `tol` (useful in tests
/// and as a cheap post-condition).
pub fn is_stationary(p: &TransferMatrix, flows: &[f64], tol: f64) -> bool {
    if flows.len() != p.n() {
        return false;
    }
    let px = p.left_multiply(flows);
    px.iter().zip(flows).all(|(a, b)| (a - b).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring3() -> TransferMatrix {
        TransferMatrix::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ])
        .expect("valid")
    }

    fn weighted4() -> TransferMatrix {
        TransferMatrix::from_rows(vec![
            vec![0.1, 0.4, 0.3, 0.2],
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.0, 0.5, 0.0, 0.5],
            vec![0.3, 0.3, 0.4, 0.0],
        ])
        .expect("valid")
    }

    #[test]
    fn direct_solves_uniform() {
        let p = TransferMatrix::uniform(5).expect("valid");
        let flows = direct_solve(&p).expect("solved");
        for &f in &flows {
            assert!((f - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn direct_solves_periodic_ring() {
        let flows = direct_solve(&ring3()).expect("solved");
        for &f in &flows {
            assert!((f - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn power_handles_periodic_ring_via_laziness() {
        let flows = power_iteration(&ring3(), PowerOptions::default()).expect("converged");
        for &f in &flows {
            assert!((f - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn direct_and_power_agree() {
        let p = weighted4();
        let d = direct_solve(&p).expect("direct");
        let w = power_iteration(&p, PowerOptions::default()).expect("power");
        for (a, b) in d.iter().zip(&w) {
            assert!((a - b).abs() < 1e-8, "direct {a} vs power {b}");
        }
        assert!(is_stationary(&p, &d, 1e-10));
        assert!(is_stationary(&p, &w, 1e-9));
    }

    #[test]
    fn two_state_chain_closed_form() {
        // p01 = 0.3, p10 = 0.6 -> stationary ∝ (p10, p01) = (2/3, 1/3).
        let p = TransferMatrix::from_rows(vec![vec![0.7, 0.3], vec![0.6, 0.4]]).expect("valid");
        let flows = stationary_flows(&p, SolveMethod::Auto).expect("solved");
        assert!((flows[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((flows[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reducible_matrix_rejected() {
        let p = TransferMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).expect("valid");
        assert!(matches!(
            stationary_flows(&p, SolveMethod::Auto),
            Err(QueueingError::Singular(_))
        ));
    }

    #[test]
    fn flows_are_positive_lemma1() {
        // Lemma 1: irreducible P ⇒ strictly positive stationary flow.
        let p = weighted4();
        let flows = stationary_flows(&p, SolveMethod::Direct).expect("solved");
        for &f in &flows {
            assert!(f > 0.0);
        }
        assert!((flows.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_respects_iteration_budget() {
        let p = weighted4();
        let opts = PowerOptions {
            max_iterations: 1,
            tolerance: 1e-15,
        };
        assert!(matches!(
            power_iteration(&p, opts),
            Err(QueueingError::NoConvergence { .. })
        ));
    }

    #[test]
    fn is_stationary_rejects_wrong_length() {
        let p = ring3();
        assert!(!is_stationary(&p, &[0.5, 0.5], 1e-9));
    }

    #[test]
    fn auto_uses_power_for_large_n() {
        // A large sparse-ish ring with self-loops; Auto should pick power
        // iteration and still produce the uniform flow.
        let n = AUTO_DIRECT_LIMIT + 8;
        let mut rows = vec![vec![0.0; n]; n];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = 0.5;
            row[(i + 1) % n] = 0.5;
        }
        let p = TransferMatrix::from_rows(rows).expect("valid");
        let flows = stationary_flows(&p, SolveMethod::Auto).expect("solved");
        for &f in &flows {
            assert!((f - 1.0 / n as f64).abs() < 1e-9);
        }
    }
}

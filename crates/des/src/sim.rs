//! The simulation kernel: drives a [`Model`] by dispatching events in time
//! order.

use crate::event::Scheduler;
use crate::time::SimTime;

/// A discrete-event model.
///
/// The kernel owns the event loop; the model owns all domain state. Each
/// event is delivered exactly once, in non-decreasing time order, with FIFO
/// tie-breaking for simultaneous events.
///
/// See the [crate-level example](crate) for a complete model.
pub trait Model {
    /// The event payload type dispatched to this model.
    type Event;

    /// Handles one event at simulated instant `now`.
    ///
    /// Follow-up events are planned through `scheduler`; scheduling in the
    /// past is clamped to `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, scheduler: &mut Scheduler<Self::Event>);
}

/// Counters describing a finished (or paused) simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total number of events dispatched so far.
    pub events_processed: u64,
    /// Events still pending in the queue.
    pub events_pending: usize,
    /// The clock at the end of the run.
    pub end_time: SimTime,
}

/// A discrete-event simulation: a [`Model`] plus a [`Scheduler`].
///
/// ```
/// use scrip_des::{Model, Scheduler, SimTime, Simulation};
///
/// struct Sink(Vec<u32>);
/// impl Model for Sink {
///     type Event = u32;
///     fn handle(&mut self, _t: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
///         self.0.push(ev);
///     }
/// }
///
/// let mut sim = Simulation::new(Sink(Vec::new()));
/// sim.schedule(SimTime::from_secs(2), 20);
/// sim.schedule(SimTime::from_secs(1), 10);
/// let stats = sim.run();
/// assert_eq!(stats.events_processed, 2);
/// assert_eq!(sim.model().0, vec![10, 20]);
/// ```
#[derive(Clone, Debug)]
pub struct Simulation<M: Model> {
    model: M,
    scheduler: Scheduler<M::Event>,
    events_processed: u64,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation at time zero with an empty event queue.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            scheduler: Scheduler::new(),
            events_processed: 0,
        }
    }

    /// As [`Simulation::new`], with the event queue pre-sized for
    /// `capacity` pending events — for models whose steady-state event
    /// population is known up front (e.g. one self-rescheduling loop per
    /// entity).
    pub fn with_capacity(model: M, capacity: usize) -> Self {
        Simulation {
            model,
            scheduler: Scheduler::with_capacity(capacity),
            events_processed: 0,
        }
    }

    /// As [`Simulation::new`], with the event-queue backend selected by
    /// `profile` (see [`crate::QueueProfile`]): models that know their
    /// steady-state event population and typical lookahead pick the
    /// timing-wheel backend and get O(1) amortized schedule/pop.
    pub fn with_profile(model: M, profile: crate::QueueProfile) -> Self {
        Simulation {
            model,
            scheduler: Scheduler::with_profile(profile),
            events_processed: 0,
        }
    }

    /// Reassembles a simulation from checkpointed parts: a model whose
    /// state was restored, a scheduler rebuilt via
    /// [`Scheduler::restore_clock`] and [`Scheduler::enqueue_scheduled`],
    /// and the dispatch counter captured at checkpoint time. When every
    /// part round-trips exactly, the continuation is byte-identical to
    /// the uninterrupted run.
    pub fn from_parts(model: M, scheduler: Scheduler<M::Event>, events_processed: u64) -> Self {
        Simulation {
            model,
            scheduler,
            events_processed,
        }
    }

    /// The current simulation clock.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to read out collectors mid-run).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Read access to the scheduler (clock, queue population, heap
    /// capacity — e.g. to check that a steady-state model stopped
    /// allocating).
    pub fn scheduler(&self) -> &Scheduler<M::Event> {
        &self.scheduler
    }

    /// Consumes the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules an initial event at absolute `time`.
    pub fn schedule(&mut self, time: SimTime, event: M::Event) {
        self.scheduler.schedule_at(time, event);
    }

    /// Dispatches a single event. Returns the instant it fired, or [`None`]
    /// if the queue was empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let scheduled = self.scheduler.advance()?;
        self.events_processed += 1;
        self.model
            .handle(scheduled.time, scheduled.event, &mut self.scheduler);
        Some(scheduled.time)
    }

    /// Runs until the event queue drains.
    ///
    /// Self-perpetuating models (that always schedule follow-ups) never
    /// drain; use [`Simulation::run_until`] or
    /// [`Simulation::run_for_events`] for those.
    pub fn run(&mut self) -> RunStats {
        while self.step().is_some() {}
        self.stats()
    }

    /// Runs until the clock would pass `horizon` (inclusive) or the queue
    /// drains. Events scheduled exactly at `horizon` are dispatched; the
    /// clock is then advanced to `horizon` even if no event fired there.
    pub fn run_until(&mut self, horizon: SimTime) -> RunStats {
        loop {
            match self.scheduler.next_event_time() {
                Some(t) if t <= horizon => {
                    self.step();
                }
                _ => break,
            }
        }
        self.scheduler.advance_clock_to(horizon);
        self.stats()
    }

    /// As [`Simulation::run_until`], offering every event to `tap`
    /// *before* it is applied — the record/replay hook. `tap` sees the
    /// event's `(time, seq)` identity and payload; returning `false`
    /// vetoes the dispatch: the event is pushed back unapplied (same
    /// identity) and the run halts at the pre-event state. The second
    /// return value reports whether the run was halted by a veto.
    ///
    /// Recording taps always return `true`; replay-verification taps
    /// return `false` on the first divergent event, which freezes the
    /// simulation exactly at the divergence for inspection.
    pub fn run_until_traced(
        &mut self,
        horizon: SimTime,
        tap: &mut dyn FnMut(SimTime, u64, &M::Event) -> bool,
    ) -> (RunStats, bool) {
        loop {
            match self.scheduler.next_event_time() {
                Some(t) if t <= horizon => {
                    let scheduled = self.scheduler.advance().expect("peeked event");
                    if !tap(scheduled.time, scheduled.seq, &scheduled.event) {
                        self.scheduler.enqueue_scheduled(scheduled);
                        return (self.stats(), true);
                    }
                    self.events_processed += 1;
                    self.model
                        .handle(scheduled.time, scheduled.event, &mut self.scheduler);
                }
                _ => break,
            }
        }
        self.scheduler.advance_clock_to(horizon);
        (self.stats(), false)
    }

    /// Dispatches at most `max_events` events (a safety valve for possibly
    /// non-terminating models).
    pub fn run_for_events(&mut self, max_events: u64) -> RunStats {
        for _ in 0..max_events {
            if self.step().is_none() {
                break;
            }
        }
        self.stats()
    }

    /// Counters for the run so far.
    pub fn stats(&self) -> RunStats {
        RunStats {
            events_processed: self.events_processed,
            events_pending: self.scheduler.pending(),
            end_time: self.scheduler.now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Scheduled;
    use crate::time::SimDuration;

    /// M/M/1-ish self-scheduling model used to exercise the kernel.
    struct SelfScheduler {
        fired: Vec<(SimTime, u8)>,
        chain_remaining: u32,
    }

    #[derive(Clone, Debug)]
    enum Ev {
        Chain,
        Mark(u8),
    }

    impl Model for SelfScheduler {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, scheduler: &mut Scheduler<Ev>) {
            match event {
                Ev::Chain => {
                    self.fired.push((now, 0));
                    if self.chain_remaining > 0 {
                        self.chain_remaining -= 1;
                        scheduler.schedule_after(SimDuration::from_secs(1), Ev::Chain);
                    }
                }
                Ev::Mark(m) => self.fired.push((now, m)),
            }
        }
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new(SelfScheduler {
            fired: Vec::new(),
            chain_remaining: 1_000,
        });
        sim.schedule(SimTime::ZERO, Ev::Chain);
        let stats = sim.run_until(SimTime::from_secs(10));
        // Events at t = 0..=10 inclusive.
        assert_eq!(stats.events_processed, 11);
        assert_eq!(stats.end_time, SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
        // Chain continues afterwards.
        let stats = sim.run_until(SimTime::from_secs(12));
        assert_eq!(stats.events_processed, 13);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulation::new(SelfScheduler {
            fired: Vec::new(),
            chain_remaining: 0,
        });
        let stats = sim.run_until(SimTime::from_secs(99));
        assert_eq!(stats.events_processed, 0);
        assert_eq!(sim.now(), SimTime::from_secs(99));
    }

    #[test]
    fn run_for_events_caps_dispatch_count() {
        let mut sim = Simulation::new(SelfScheduler {
            fired: Vec::new(),
            chain_remaining: u32::MAX,
        });
        sim.schedule(SimTime::ZERO, Ev::Chain);
        let stats = sim.run_for_events(37);
        assert_eq!(stats.events_processed, 37);
        assert_eq!(stats.events_pending, 1);
    }

    #[test]
    fn simultaneous_events_dispatch_in_scheduling_order() {
        let mut sim = Simulation::new(SelfScheduler {
            fired: Vec::new(),
            chain_remaining: 0,
        });
        let t = SimTime::from_secs(5);
        for m in 1..=5u8 {
            sim.schedule(t, Ev::Mark(m));
        }
        sim.run();
        let marks: Vec<u8> = sim.model().fired.iter().map(|&(_, m)| m).collect();
        assert_eq!(marks, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn from_parts_resumes_identically() {
        let make = || {
            let mut sim = Simulation::new(SelfScheduler {
                fired: Vec::new(),
                chain_remaining: 50,
            });
            sim.schedule(SimTime::ZERO, Ev::Chain);
            sim
        };
        // Straight run to t=20.
        let mut straight = make();
        straight.run_until(SimTime::from_secs(20));

        // Interrupted run: pause at t=7, snapshot, rebuild, continue.
        let mut first = make();
        first.run_until(SimTime::from_secs(7));
        let events = first.scheduler().snapshot_events();
        let clock = first.now();
        let processed = first.stats().events_processed;
        let fired = first.model().fired.clone();
        let chain_remaining = first.model().chain_remaining;
        drop(first);

        let mut scheduler = Scheduler::new();
        scheduler.restore_clock(clock);
        for ev in events {
            scheduler.enqueue_scheduled(Scheduled {
                time: ev.time,
                seq: ev.seq,
                event: match ev.event {
                    Ev::Chain => Ev::Chain,
                    Ev::Mark(m) => Ev::Mark(m),
                },
            });
        }
        let mut resumed = Simulation::from_parts(
            SelfScheduler {
                fired,
                chain_remaining,
            },
            scheduler,
            processed,
        );
        resumed.run_until(SimTime::from_secs(20));

        assert_eq!(resumed.stats(), straight.stats());
        assert_eq!(resumed.model().fired, straight.model().fired);
    }

    #[test]
    fn traced_run_matches_untraced_and_veto_freezes_pre_event() {
        let make = || {
            let mut sim = Simulation::new(SelfScheduler {
                fired: Vec::new(),
                chain_remaining: 50,
            });
            sim.schedule(SimTime::ZERO, Ev::Chain);
            sim
        };
        let mut plain = make();
        plain.run_until(SimTime::from_secs(20));

        // A pass-through tap leaves the run byte-identical.
        let mut traced = make();
        let mut taps: Vec<(SimTime, u64)> = Vec::new();
        let (stats, halted) = traced.run_until_traced(SimTime::from_secs(20), &mut |t, seq, _| {
            taps.push((t, seq));
            true
        });
        assert!(!halted);
        assert_eq!(stats, plain.stats());
        assert_eq!(traced.model().fired, plain.model().fired);
        assert_eq!(taps.len() as u64, stats.events_processed);
        assert!(
            taps.windows(2).all(|w| w[0] < w[1]),
            "taps in (time, seq) order"
        );

        // A veto halts *before* the event applies and pushes it back.
        let mut vetoed = make();
        let stop_at = taps[10];
        let (stats, halted) =
            vetoed.run_until_traced(SimTime::from_secs(20), &mut |t, seq, _| (t, seq) != stop_at);
        assert!(halted);
        assert_eq!(stats.events_processed, 10);
        // Resuming without the veto completes identically.
        let (stats, halted) = vetoed.run_until_traced(SimTime::from_secs(20), &mut |_, _, _| true);
        assert!(!halted);
        assert_eq!(stats, plain.stats());
        assert_eq!(vetoed.model().fired, plain.model().fired);
    }

    #[test]
    fn stats_reflect_progress() {
        let mut sim = Simulation::new(SelfScheduler {
            fired: Vec::new(),
            chain_remaining: 3,
        });
        sim.schedule(SimTime::ZERO, Ev::Chain);
        assert_eq!(sim.stats().events_pending, 1);
        sim.run();
        let stats = sim.stats();
        assert_eq!(stats.events_processed, 4);
        assert_eq!(stats.events_pending, 0);
        assert_eq!(stats.end_time, SimTime::from_secs(3));
    }
}

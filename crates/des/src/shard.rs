//! Deterministic sharded execution: one simulation partitioned over
//! per-shard event queues, bit-identical to the serial kernel.
//!
//! ## The determinism argument
//!
//! The serial kernel ([`crate::Simulation`]) applies events in strict
//! `(time, seq)` order, where `seq` is the global scheduling counter.
//! [`ShardedSimulation`] keeps **one** sequencing scheduler (so every
//! event still receives its global `seq` at schedule time) but *stores*
//! pending events in per-shard queues, routed by
//! [`ShardModel::route`]. Because routing preserves each event's
//! `(time, seq)` identity ([`crate::Scheduler::enqueue_scheduled`]),
//! merging the shard queues back by `(time, seq)` reproduces exactly
//! the order a single queue would have popped — for *any* shard count
//! and any worker count. Every RNG draw and state mutation therefore
//! lands in the serial order, and output is byte-identical to the
//! serial run.
//!
//! ## The window loop
//!
//! Time advances in fixed tick windows. Per window `(prev, end]`:
//!
//! 1. **Stage** (parallel): each shard worker drains its own queue's
//!    events due in the window into a sorted per-shard buffer. This is
//!    the fan-out phase — heap pops are the per-event queue cost, and
//!    each worker touches only its own queue.
//! 2. **Apply** (sequenced): the staged streams plus a `live` heap of
//!    intra-window follow-ups are k-way-merged by `(time, seq)`; each
//!    event is handed to [`ShardModel::handle`] in that order.
//!    Follow-ups scheduled inside the window go to the `live` heap,
//!    later ones are routed to their shard queue.
//! 3. **Barrier**: all shard clocks advance to the window end and
//!    [`ShardModel::on_window_barrier`] runs — the hook where
//!    cross-shard effects recorded in a [`CrossShardLog`] are settled
//!    in `(tick, source shard, seq)` order.
//!
//! The horizon of every [`ShardedSimulation::run_until`] call is itself
//! a barrier, so callers that pause at sampling boundaries always
//! observe a consistent, fully-settled global state.

use std::collections::BinaryHeap;

use crate::event::{Scheduled, Scheduler};
use crate::sim::RunStats;
use crate::time::{SimDuration, SimTime};

/// Per-event trace tap: `(time, seq, &event) -> keep`; `false` vetoes
/// the dispatch (see [`ShardedSimulation::run_until_traced`]).
type EventTap<'a, E> = &'a mut dyn FnMut(SimTime, u64, &E) -> bool;

/// Per-event context handed to [`ShardModel::handle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardCtx {
    /// The shard the event was routed to (at apply time).
    pub shard: usize,
    /// The event's global sequence number — the deterministic identity
    /// to record in a [`CrossShardLog`] for cross-shard effects.
    pub seq: u64,
}

/// A discrete-event model that can run sharded.
///
/// The contract mirrors [`crate::Model`], with two additions: the model
/// names a home shard for every pending event ([`ShardModel::route`])
/// and gets a barrier hook at the end of each tick window
/// ([`ShardModel::on_window_barrier`]) to settle cross-shard effects.
pub trait ShardModel {
    /// The event payload type dispatched to this model.
    type Event;

    /// Number of shards this model is partitioned into (≥ 1; queried
    /// once at kernel construction).
    fn shard_count(&self) -> usize;

    /// The home shard of a pending event (`< shard_count()`; values out
    /// of range are clamped). Routing only affects *which queue stores
    /// the event* — never the apply order — so it may depend on mutable
    /// model state (e.g. a churning peer→shard map).
    fn route(&self, event: &Self::Event) -> usize;

    /// Handles one event at instant `now`, exactly as
    /// [`crate::Model::handle`]; `ctx` carries the event's shard and
    /// global sequence number.
    fn handle(
        &mut self,
        now: SimTime,
        event: Self::Event,
        ctx: ShardCtx,
        scheduler: &mut Scheduler<Self::Event>,
    );

    /// Called once at the end of every tick window (including the
    /// horizon of each `run_until`), after all the window's events have
    /// been applied.
    fn on_window_barrier(&mut self, window_end: SimTime) {
        let _ = window_end;
    }
}

/// One cross-shard effect recorded in a [`CrossShardLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoggedEffect<T> {
    /// The tick window (barrier index) the effect was emitted in.
    pub tick: u64,
    /// The shard that emitted the effect.
    pub source_shard: u32,
    /// The emitting event's global sequence number (from
    /// [`ShardCtx::seq`]): the deterministic tie-breaker.
    pub seq: u64,
    /// The model-defined effect payload.
    pub payload: T,
}

/// A tick-bucketed log of cross-shard effects, drained in a fixed
/// `(tick, source shard, seq)` order.
///
/// Effects may be *pushed* in any order (workers complete in
/// nondeterministic order); [`CrossShardLog::settle_through`] sorts by
/// the deterministic key before applying, so the settle order is
/// invariant under any permutation of the push order. The
/// `(tick, source_shard, seq)` triple must be unique per entry.
#[derive(Clone, Debug, Default)]
pub struct CrossShardLog<T> {
    entries: Vec<LoggedEffect<T>>,
}

impl<T> CrossShardLog<T> {
    /// An empty log.
    pub fn new() -> Self {
        CrossShardLog {
            entries: Vec::new(),
        }
    }

    /// Records one effect emitted by `source_shard` during window
    /// `tick`, keyed by the emitting event's global `seq`.
    pub fn push(&mut self, tick: u64, source_shard: u32, seq: u64, payload: T) {
        self.entries.push(LoggedEffect {
            tick,
            source_shard,
            seq,
            payload,
        });
    }

    /// Number of unsettled effects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no effects are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains every effect with `tick <= through` and applies them in
    /// ascending `(tick, source shard, seq)` order; later effects stay
    /// queued for a future barrier.
    pub fn settle_through(&mut self, through: u64, mut apply: impl FnMut(LoggedEffect<T>)) {
        let mut due: Vec<LoggedEffect<T>> = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].tick <= through {
                due.push(self.entries.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|e| (e.tick, e.source_shard, e.seq));
        debug_assert!(
            due.windows(2)
                .all(|w| (w[0].tick, w[0].source_shard, w[0].seq)
                    != (w[1].tick, w[1].source_shard, w[1].seq)),
            "cross-shard log keys must be unique"
        );
        for effect in due {
            apply(effect);
        }
    }
}

/// Minimum total pending events before the staging phase fans out to
/// worker threads; below this, thread spawn costs dominate the drain.
const PARALLEL_STAGE_THRESHOLD: usize = 4_096;

/// A sharded simulation: a [`ShardModel`] plus per-shard [`Scheduler`]s
/// advancing in lockstep over fixed tick windows. Output is
/// byte-identical to [`crate::Simulation`] on the equivalent model —
/// see the [module docs](self) for the argument.
#[derive(Debug)]
pub struct ShardedSimulation<M: ShardModel> {
    model: M,
    /// The sequencing scheduler: owns the global clock and the global
    /// `seq` counter. All follow-ups pass through it before being
    /// routed, so sequence numbers stay globally unique and ordered.
    staging: Scheduler<M::Event>,
    /// Per-shard pending-event queues (the "per-shard Schedulers");
    /// clocks advance in lockstep at window barriers.
    lanes: Vec<Scheduler<M::Event>>,
    /// Intra-window follow-ups awaiting application in the current
    /// window (merged against the staged streams by `(time, seq)`).
    live: BinaryHeap<Scheduled<M::Event>>,
    /// Tick-window width; [`SimDuration::ZERO`] means one window per
    /// `run_until` call.
    window: SimDuration,
    workers: usize,
    events_processed: u64,
    windows_completed: u64,
}

impl<M: ShardModel> ShardedSimulation<M> {
    /// Creates a sharded simulation at time zero with the given tick
    /// window (`SimDuration::ZERO` ⇒ one window per `run_until` call).
    pub fn new(model: M, window: SimDuration) -> Self {
        Self::with_capacity(model, window, 0)
    }

    /// As [`ShardedSimulation::new`], with each shard queue pre-sized
    /// for its share of `capacity` pending events.
    pub fn with_capacity(model: M, window: SimDuration, capacity: usize) -> Self {
        let shards = model.shard_count().max(1);
        let per_lane = capacity / shards + 1;
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(shards);
        ShardedSimulation {
            model,
            staging: Scheduler::new(),
            lanes: (0..shards)
                .map(|_| Scheduler::with_capacity(per_lane))
                .collect(),
            live: BinaryHeap::new(),
            window,
            workers,
            events_processed: 0,
            windows_completed: 0,
        }
    }

    /// As [`ShardedSimulation::new`], with every staging lane backed by
    /// the queue backend `profile` selects (see [`crate::QueueProfile`]).
    /// A wheel profile is scaled down to each lane's share of the
    /// expected event population; the sequencing scheduler keeps the
    /// heap backend (it holds at most one window of follow-ups).
    pub fn with_profile(model: M, window: SimDuration, profile: crate::QueueProfile) -> Self {
        let shards = model.shard_count().max(1);
        let lane_profile = match profile {
            crate::QueueProfile::Heap => crate::QueueProfile::Heap,
            crate::QueueProfile::Wheel {
                expected_events,
                typical_delay,
            } => crate::QueueProfile::Wheel {
                expected_events: expected_events / shards + 1,
                typical_delay,
            },
        };
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(shards);
        ShardedSimulation {
            model,
            staging: Scheduler::new(),
            lanes: (0..shards)
                .map(|_| Scheduler::with_profile(lane_profile))
                .collect(),
            live: BinaryHeap::new(),
            window,
            workers,
            events_processed: 0,
            windows_completed: 0,
        }
    }

    /// Overrides the staging worker count (default: available
    /// parallelism, capped at the shard count). Has **no effect on
    /// output** — only on how the staging drain is fanned out.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The current simulation clock.
    pub fn now(&self) -> SimTime {
        self.staging.now()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.lanes.len()
    }

    /// Number of completed tick windows (barriers crossed).
    pub fn windows_completed(&self) -> u64 {
        self.windows_completed
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Counters for the run so far (mirrors
    /// [`crate::Simulation::stats`]).
    pub fn stats(&self) -> RunStats {
        RunStats {
            events_processed: self.events_processed,
            events_pending: self.lanes.iter().map(Scheduler::pending).sum::<usize>()
                + self.live.len()
                + self.staging.pending(),
            end_time: self.staging.now(),
        }
    }

    fn route_clamped(&self, event: &M::Event) -> usize {
        self.model.route(event).min(self.lanes.len() - 1)
    }

    /// Schedules an initial event at absolute `time` (sequenced
    /// globally, stored on its home shard).
    pub fn schedule(&mut self, time: SimTime, event: M::Event) {
        self.staging.schedule_at(time, event);
        while let Some(ev) = self.staging.pop_due(SimTime::MAX) {
            let lane = self.route_clamped(&ev.event);
            self.lanes[lane].enqueue_scheduled(ev);
        }
    }
}

impl<M: ShardModel> ShardedSimulation<M>
where
    M::Event: Send,
{
    /// Runs until the clock would pass `horizon` (inclusive), window by
    /// window; events scheduled exactly at `horizon` are dispatched and
    /// the clock then rests at `horizon`. The horizon is always a
    /// window barrier, so pausing callers observe settled state. May be
    /// called repeatedly with increasing horizons.
    pub fn run_until(&mut self, horizon: SimTime) -> RunStats {
        while self.staging.now() < horizon {
            let window_end = if self.window.is_zero() {
                horizon
            } else {
                let w = self.window.as_micros();
                let next = (self.staging.now().as_micros() / w + 1).saturating_mul(w);
                SimTime::from_micros(next).min(horizon)
            };
            self.run_window(window_end, None);
        }
        self.stats()
    }

    /// As [`ShardedSimulation::run_until`], offering every event to
    /// `tap` at the serial apply point *before* it is dispatched —
    /// identical semantics to [`crate::Simulation::run_until_traced`],
    /// so traces recorded serially verify sharded and vice versa. A
    /// veto re-parks every undispatched event on its shard queue and
    /// halts without crossing the window barrier; the second return
    /// value reports whether a veto halted the run.
    pub fn run_until_traced(
        &mut self,
        horizon: SimTime,
        tap: &mut dyn FnMut(SimTime, u64, &M::Event) -> bool,
    ) -> (RunStats, bool) {
        while self.staging.now() < horizon {
            let window_end = if self.window.is_zero() {
                horizon
            } else {
                let w = self.window.as_micros();
                let next = (self.staging.now().as_micros() / w + 1).saturating_mul(w);
                SimTime::from_micros(next).min(horizon)
            };
            if self.run_window(window_end, Some(tap)) {
                return (self.stats(), true);
            }
        }
        (self.stats(), false)
    }

    /// One tick window: stage, merged apply, barrier. With a tap, each
    /// event is offered before apply; a veto re-parks everything still
    /// pending and returns `true` without running the barrier.
    fn run_window(&mut self, window_end: SimTime, mut tap: Option<EventTap<'_, M::Event>>) -> bool {
        let staged = self.stage(window_end);
        let mut streams: Vec<_> = staged
            .into_iter()
            .map(|events| events.into_iter().peekable())
            .collect();
        loop {
            // The earliest staged head across all shard streams…
            let mut best_lane = usize::MAX;
            let mut best_key: Option<(SimTime, u64)> = None;
            for (lane, stream) in streams.iter_mut().enumerate() {
                if let Some(head) = stream.peek() {
                    let key = (head.time, head.seq);
                    if best_key.map_or(true, |b| key < b) {
                        best_key = Some(key);
                        best_lane = lane;
                    }
                }
            }
            // …merged against intra-window follow-ups.
            let from_live = match (self.live.peek(), best_key) {
                (Some(live), Some(best)) => (live.time, live.seq) < best,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let next = if from_live {
                self.live.pop().expect("peeked")
            } else {
                streams[best_lane].next().expect("peeked")
            };
            if let Some(tap) = tap.as_mut() {
                if !tap(next.time, next.seq, &next.event) {
                    // Re-park the vetoed event and everything not yet
                    // dispatched; storage location never affects the
                    // merged apply order, so a later resume (or a
                    // post-mortem) sees the exact pre-event state.
                    let lane = self.route_clamped(&next.event);
                    self.lanes[lane].enqueue_scheduled(next);
                    for stream in &mut streams {
                        for ev in stream {
                            let lane = self.route_clamped(&ev.event);
                            self.lanes[lane].enqueue_scheduled(ev);
                        }
                    }
                    while let Some(ev) = self.live.pop() {
                        let lane = self.route_clamped(&ev.event);
                        self.lanes[lane].enqueue_scheduled(ev);
                    }
                    return true;
                }
            }
            self.apply(next, window_end);
        }
        debug_assert!(self.live.is_empty(), "window left live events unapplied");
        for lane in &mut self.lanes {
            lane.advance_clock_to(window_end);
        }
        self.staging.advance_clock_to(window_end);
        self.windows_completed += 1;
        self.model.on_window_barrier(window_end);
        false
    }

    /// Dispatches one event in merged order and routes its follow-ups.
    fn apply(&mut self, scheduled: Scheduled<M::Event>, window_end: SimTime) {
        self.staging.advance_clock_to(scheduled.time);
        self.events_processed += 1;
        let ctx = ShardCtx {
            shard: self.route_clamped(&scheduled.event),
            seq: scheduled.seq,
        };
        self.model
            .handle(scheduled.time, scheduled.event, ctx, &mut self.staging);
        while let Some(follow_up) = self.staging.pop_due(SimTime::MAX) {
            if follow_up.time <= window_end {
                self.live.push(follow_up);
            } else {
                let lane = self.route_clamped(&follow_up.event);
                self.lanes[lane].enqueue_scheduled(follow_up);
            }
        }
    }

    /// Drains every shard queue's events due by `window_end` into
    /// per-shard sorted buffers — in parallel when the pending
    /// population justifies the thread fan-out.
    fn stage(&mut self, window_end: SimTime) -> Vec<Vec<Scheduled<M::Event>>> {
        let pending: usize = self.lanes.iter().map(Scheduler::pending).sum();
        let mut staged: Vec<Vec<Scheduled<M::Event>>> = self
            .lanes
            .iter()
            .map(|lane| Vec::with_capacity(lane.pending().min(64)))
            .collect();
        if self.workers > 1 && self.lanes.len() > 1 && pending >= PARALLEL_STAGE_THRESHOLD {
            let group = self.lanes.len().div_ceil(self.workers);
            std::thread::scope(|scope| {
                for (lanes, buffers) in self.lanes.chunks_mut(group).zip(staged.chunks_mut(group)) {
                    scope.spawn(move || {
                        for (lane, buffer) in lanes.iter_mut().zip(buffers.iter_mut()) {
                            while let Some(ev) = lane.pop_due(window_end) {
                                buffer.push(ev);
                            }
                        }
                    });
                }
            });
        } else {
            for (lane, buffer) in self.lanes.iter_mut().zip(staged.iter_mut()) {
                while let Some(ev) = lane.pop_due(window_end) {
                    buffer.push(ev);
                }
            }
        }
        staged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Model, Simulation};

    /// Records the exact dispatch order; spawns deterministic
    /// follow-ups so intra-window scheduling is exercised.
    #[derive(Clone)]
    struct OrderRecorder {
        shards: usize,
        seen: Vec<(SimTime, u64)>,
        follow_ups: u32,
        barriers: Vec<SimTime>,
    }

    impl OrderRecorder {
        fn new(shards: usize) -> Self {
            OrderRecorder {
                shards,
                seen: Vec::new(),
                follow_ups: 200,
                barriers: Vec::new(),
            }
        }

        fn step(&mut self, now: SimTime, key: u64, scheduler: &mut Scheduler<u64>) {
            self.seen.push((now, key));
            if self.follow_ups > 0 && key % 3 != 2 {
                self.follow_ups -= 1;
                // A short and a long follow-up: one usually lands in the
                // current window, one beyond it.
                scheduler.schedule_after(SimDuration::from_millis(key % 700 + 1), key * 7 + 1);
                scheduler.schedule_after(SimDuration::from_secs(key % 5 + 1), key * 3 + 2);
            }
        }
    }

    impl Model for OrderRecorder {
        type Event = u64;
        fn handle(&mut self, now: SimTime, key: u64, scheduler: &mut Scheduler<u64>) {
            self.step(now, key, scheduler);
        }
    }

    impl ShardModel for OrderRecorder {
        type Event = u64;
        fn shard_count(&self) -> usize {
            self.shards
        }
        fn route(&self, key: &u64) -> usize {
            (*key as usize) % self.shards
        }
        fn handle(&mut self, now: SimTime, key: u64, _ctx: ShardCtx, s: &mut Scheduler<u64>) {
            self.step(now, key, s);
        }
        fn on_window_barrier(&mut self, window_end: SimTime) {
            self.barriers.push(window_end);
        }
    }

    fn seed_events() -> Vec<(SimTime, u64)> {
        (0..60u64)
            .map(|k| (SimTime::from_micros(k * 311_000 % 4_000_000), k))
            .collect()
    }

    #[test]
    fn sharded_order_matches_serial_for_any_shard_and_worker_count() {
        let mut serial = Simulation::new(OrderRecorder::new(1));
        for &(t, k) in &seed_events() {
            serial.schedule(t, k);
        }
        let serial_stats = serial.run_until(SimTime::from_secs(30));
        let reference = serial.model().seen.clone();
        assert!(reference.len() > 100, "follow-ups fired");

        for shards in [1, 2, 3, 8] {
            for workers in [1, 2] {
                let mut sim =
                    ShardedSimulation::new(OrderRecorder::new(shards), SimDuration::from_secs(1))
                        .with_workers(workers);
                for &(t, k) in &seed_events() {
                    sim.schedule(t, k);
                }
                let stats = sim.run_until(SimTime::from_secs(30));
                assert_eq!(
                    sim.model().seen,
                    reference,
                    "order diverged at shards={shards} workers={workers}"
                );
                assert_eq!(stats.events_processed, serial_stats.events_processed);
                assert_eq!(stats.end_time, serial_stats.end_time);
            }
        }
    }

    #[test]
    fn horizon_is_always_a_barrier() {
        let mut sim = ShardedSimulation::new(OrderRecorder::new(2), SimDuration::from_secs(10));
        sim.schedule(SimTime::from_secs(3), 1);
        sim.run_until(SimTime::from_secs(7));
        assert_eq!(sim.model().barriers.last(), Some(&SimTime::from_secs(7)));
        assert_eq!(sim.now(), SimTime::from_secs(7));
        sim.run_until(SimTime::from_secs(25));
        // Window grid barriers at 10 and 20, plus the horizon.
        assert!(sim.model().barriers.contains(&SimTime::from_secs(10)));
        assert!(sim.model().barriers.contains(&SimTime::from_secs(20)));
        assert_eq!(sim.model().barriers.last(), Some(&SimTime::from_secs(25)));
        assert_eq!(sim.windows_completed(), sim.model().barriers.len() as u64);
    }

    #[test]
    fn cross_shard_log_settles_in_key_order_regardless_of_push_order() {
        let mut forward = CrossShardLog::new();
        let mut shuffled = CrossShardLog::new();
        let entries = [
            (0u64, 1u32, 5u64),
            (0, 0, 9),
            (1, 2, 3),
            (0, 1, 2),
            (1, 0, 4),
        ];
        for &(tick, shard, seq) in &entries {
            forward.push(tick, shard, seq, seq);
        }
        for &(tick, shard, seq) in entries.iter().rev() {
            shuffled.push(tick, shard, seq, seq);
        }
        let drain = |log: &mut CrossShardLog<u64>| {
            let mut order = Vec::new();
            log.settle_through(0, |e| order.push((e.tick, e.source_shard, e.seq)));
            order
        };
        let a = drain(&mut forward);
        assert_eq!(a, vec![(0, 0, 9), (0, 1, 2), (0, 1, 5)]);
        assert_eq!(a, drain(&mut shuffled), "push order must not matter");
        // Later ticks stayed queued.
        assert_eq!(forward.len(), 2);
        forward.settle_through(5, |e| assert_eq!(e.payload, e.seq));
        assert!(forward.is_empty());
    }

    #[test]
    fn traced_sharded_taps_match_serial_and_veto_halts_identically() {
        // Serial reference tap stream.
        let mut serial = Simulation::new(OrderRecorder::new(1));
        for &(t, k) in &seed_events() {
            serial.schedule(t, k);
        }
        let mut serial_taps: Vec<(SimTime, u64, u64)> = Vec::new();
        let (serial_stats, halted) =
            serial.run_until_traced(SimTime::from_secs(30), &mut |t, seq, &k| {
                serial_taps.push((t, seq, k));
                true
            });
        assert!(!halted);

        for shards in [2, 8] {
            let mut sim =
                ShardedSimulation::new(OrderRecorder::new(shards), SimDuration::from_secs(1));
            for &(t, k) in &seed_events() {
                sim.schedule(t, k);
            }
            let mut taps = Vec::new();
            let (stats, halted) =
                sim.run_until_traced(SimTime::from_secs(30), &mut |t, seq, &k| {
                    taps.push((t, seq, k));
                    true
                });
            assert!(!halted);
            assert_eq!(taps, serial_taps, "tap order diverged at shards={shards}");
            assert_eq!(stats.events_processed, serial_stats.events_processed);

            // A veto mid-stream halts at the same pre-event point, and
            // resuming without it completes identically.
            let mut sim =
                ShardedSimulation::new(OrderRecorder::new(shards), SimDuration::from_secs(1));
            for &(t, k) in &seed_events() {
                sim.schedule(t, k);
            }
            let stop = (serial_taps[25].0, serial_taps[25].1);
            let (stats, halted) =
                sim.run_until_traced(SimTime::from_secs(30), &mut |t, seq, _| (t, seq) != stop);
            assert!(halted);
            assert_eq!(stats.events_processed, 25);
            assert_eq!(
                sim.model().seen.len(),
                25,
                "vetoed event must not be applied"
            );
            let resumed = sim.run_until(SimTime::from_secs(30));
            assert_eq!(resumed.events_processed, serial_stats.events_processed);
            assert_eq!(
                sim.model().seen,
                serial.model().seen,
                "post-veto resume diverged at shards={shards}"
            );
        }
    }

    #[test]
    fn stats_count_all_pending_locations() {
        let mut sim = ShardedSimulation::new(OrderRecorder::new(3), SimDuration::from_secs(5));
        for &(t, k) in &seed_events() {
            sim.schedule(t, k);
        }
        let before = sim.stats();
        assert_eq!(before.events_pending, 60);
        assert_eq!(before.events_processed, 0);
        sim.run_until(SimTime::from_secs(2));
        let mid = sim.stats();
        assert!(mid.events_processed > 0);
        assert!(mid.events_pending > 0, "later events still queued");
        assert_eq!(mid.end_time, SimTime::from_secs(2));
    }
}

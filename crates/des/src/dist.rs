//! Random variates needed by the paper's simulations, implemented from
//! scratch on top of [`rand::Rng`].
//!
//! The paper's experiments draw from: exponential service/inter-event times
//! (the Jackson-network assumption), Poisson chunk prices (Fig. 1 case 1),
//! power-law node degrees (scale-free overlays, exponent 2.5), exponential
//! peer lifespans and Poisson arrivals (Sec. VI-E churn), and weighted
//! neighbor choices (credit routing). Each sampler validates its parameters
//! at construction and is deterministic given the RNG stream.

use std::error::Error;
use std::f64::consts::PI;
use std::fmt;

use rand::Rng;

/// Error returned when a distribution is constructed with invalid
/// parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamError {
    what: String,
}

impl ParamError {
    fn new(what: impl Into<String>) -> Self {
        ParamError { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl Error for ParamError {}

/// Natural log of the gamma function (Lanczos approximation, |err| < 1e-10
/// for x > 0). Used by the large-mean Poisson sampler.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9), quoted at full published
    // precision even where f64 rounds the last digits.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// ```
/// use scrip_des::dist::Exp;
/// use scrip_des::SimRng;
///
/// # fn main() -> Result<(), scrip_des::dist::ParamError> {
/// let service = Exp::new(2.0)?; // mean 0.5
/// let mut rng = SimRng::seed_from_u64(1);
/// let x = service.sample(&mut rng);
/// assert!(x >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exp {
    rate: f64,
}

impl Exp {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    /// Returns [`ParamError`] unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(ParamError::new(format!("Exp rate must be > 0, got {rate}")));
        }
        Ok(Exp { rate })
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws a variate by inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / self.rate
    }
}

/// Poisson distribution with the given mean.
///
/// Uses Knuth's product method for small means and Atkinson's PA
/// acceptance-rejection algorithm for large means, so sampling is O(1) in
/// expectation for any mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Mean above which the Atkinson PA algorithm is used.
    const KNUTH_LIMIT: f64 = 30.0;

    /// Creates a Poisson distribution.
    ///
    /// # Errors
    /// Returns [`ParamError`] unless `mean` is finite and positive.
    pub fn new(mean: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(ParamError::new(format!(
                "Poisson mean must be > 0, got {mean}"
            )));
        }
        Ok(Poisson { mean })
    }

    /// The mean (= variance) of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws a variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.mean <= Self::KNUTH_LIMIT {
            self.sample_knuth(rng)
        } else {
            self.sample_atkinson(rng)
        }
    }

    fn sample_knuth<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let l = (-self.mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Atkinson (1979) algorithm PA: logistic-envelope rejection.
    fn sample_atkinson<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lam = self.mean;
        let c = 0.767 - 3.36 / lam;
        let beta = PI / (3.0 * lam).sqrt();
        let alpha = beta * lam;
        let k = c.ln() - lam - beta.ln();
        loop {
            let u: f64 = loop {
                let u = rng.gen::<f64>();
                if u > 0.0 && u < 1.0 {
                    break u;
                }
            };
            let x = (alpha - ((1.0 - u) / u).ln()) / beta;
            let n = (x + 0.5).floor();
            if n < 0.0 {
                continue;
            }
            let v: f64 = loop {
                let v = rng.gen::<f64>();
                if v > 0.0 {
                    break v;
                }
            };
            let y = alpha - beta * x;
            let t = 1.0 + y.exp();
            let lhs = y + (v / (t * t)).ln();
            let rhs = k + n * lam.ln() - ln_gamma(n + 1.0);
            if lhs <= rhs {
                return n as u64;
            }
        }
    }
}

/// Geometric distribution on `{0, 1, 2, …}` with success probability `p`:
/// `P(k) = p (1-p)^k`, mean `(1-p)/p`.
///
/// This is the marginal credit distribution of a symmetric closed Jackson
/// network in the large-system limit, so it appears throughout the paper's
/// equilibrium analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution.
    ///
    /// # Errors
    /// Returns [`ParamError`] unless `0 < p <= 1`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(ParamError::new(format!(
                "Geometric p must be in (0, 1], got {p}"
            )));
        }
        Ok(Geometric { p })
    }

    /// Success probability per trial.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The mean `(1-p)/p`.
    pub fn mean(&self) -> f64 {
        (1.0 - self.p) / self.p
    }

    /// Draws a variate by inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        let q = 1.0 - self.p;
        let k = (u.ln() / q.ln()).floor();
        if k >= u64::MAX as f64 {
            u64::MAX
        } else {
            k as u64
        }
    }
}

/// Continuous Pareto distribution with scale `x_min > 0` and shape `a > 0`:
/// `P(X > x) = (x_min / x)^a` for `x >= x_min`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    /// Returns [`ParamError`] unless both parameters are finite and
    /// positive.
    pub fn new(scale: f64, shape: f64) -> Result<Self, ParamError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(ParamError::new(format!(
                "Pareto scale must be > 0, got {scale}"
            )));
        }
        if !shape.is_finite() || shape <= 0.0 {
            return Err(ParamError::new(format!(
                "Pareto shape must be > 0, got {shape}"
            )));
        }
        Ok(Pareto { scale, shape })
    }

    /// Draws a variate by inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        self.scale / u.powf(1.0 / self.shape)
    }
}

/// Bounded discrete power law on `{min, …, max}` with `P(d) ∝ d^(-exponent)`.
///
/// This is the degree distribution of the paper's scale-free overlays
/// (`P(D) ~ D^-k`, k = 2.5). The bounded support lets callers match a target
/// mean degree (the paper uses 20) by choosing `max`.
///
/// Sampling is by inverse transform over a precomputed CDF (O(log n) per
/// draw).
#[derive(Clone, Debug, PartialEq)]
pub struct DiscretePowerLaw {
    min: u64,
    exponent: f64,
    /// cdf[i] = P(D <= min + i)
    cdf: Vec<f64>,
}

impl DiscretePowerLaw {
    /// Creates a bounded power-law distribution on `{min, ..., max}`.
    ///
    /// # Errors
    /// Returns [`ParamError`] if `min == 0`, `min > max`, the support is
    /// unreasonably large (> 2^24 points), or `exponent` is not finite.
    pub fn new(min: u64, max: u64, exponent: f64) -> Result<Self, ParamError> {
        if min == 0 {
            return Err(ParamError::new("power-law min degree must be >= 1"));
        }
        if min > max {
            return Err(ParamError::new(format!(
                "power-law support empty: min {min} > max {max}"
            )));
        }
        if max - min > (1 << 24) {
            return Err(ParamError::new("power-law support too large"));
        }
        if !exponent.is_finite() {
            return Err(ParamError::new("power-law exponent must be finite"));
        }
        let mut cdf = Vec::with_capacity((max - min + 1) as usize);
        let mut acc = 0.0;
        for d in min..=max {
            acc += (d as f64).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(DiscretePowerLaw { min, exponent, cdf })
    }

    /// The exact mean of the bounded distribution.
    pub fn mean(&self) -> f64 {
        let mut mean = 0.0;
        let mut prev = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            mean += (self.min + i as u64) as f64 * (c - prev);
            prev = c;
        }
        mean
    }

    /// The probability mass at `d` (zero outside the support).
    pub fn pmf(&self, d: u64) -> f64 {
        if d < self.min || d > self.min + (self.cdf.len() as u64 - 1) {
            return 0.0;
        }
        let i = (d - self.min) as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// The exponent `k` of `P(d) ∝ d^(-k)`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws a degree.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        self.min + idx.min(self.cdf.len() - 1) as u64
    }

    /// Searches for the largest `max` such that the bounded power law on
    /// `{min, ..., max}` has mean at most `target_mean`, then returns that
    /// distribution. This is how the paper's "average number of neighbors =
    /// 20, k = 2.5" configuration is realised.
    ///
    /// # Errors
    /// Returns [`ParamError`] if no bounded support achieves
    /// `target_mean` (i.e. even `{min, min+1}` exceeds it) or parameters
    /// are invalid.
    pub fn with_mean(min: u64, exponent: f64, target_mean: f64) -> Result<Self, ParamError> {
        if target_mean <= min as f64 {
            return Err(ParamError::new(format!(
                "target mean {target_mean} not achievable with min degree {min}"
            )));
        }
        let mut best: Option<DiscretePowerLaw> = None;
        let mut max = min + 1;
        loop {
            let d = DiscretePowerLaw::new(min, max, exponent)?;
            if d.mean() > target_mean {
                break;
            }
            best = Some(d);
            // Grow geometrically; heavy-tailed means move slowly in `max`.
            max = (max as f64 * 1.3).ceil() as u64;
            if max - min > (1 << 23) {
                break;
            }
        }
        best.ok_or_else(|| {
            ParamError::new(format!(
                "no bounded power-law support with mean <= {target_mean}"
            ))
        })
    }
}

/// Walker's alias method: O(1) sampling from an arbitrary finite discrete
/// distribution after O(n) preprocessing.
///
/// Used for credit-routing choices, where a peer picks a neighbor according
/// to the transfer probabilities `p_ij`.
///
/// ```
/// use scrip_des::dist::AliasTable;
/// use scrip_des::SimRng;
///
/// # fn main() -> Result<(), scrip_des::dist::ParamError> {
/// let table = AliasTable::new(&[1.0, 2.0, 1.0])?; // probabilities 1/4, 1/2, 1/4
/// let mut rng = SimRng::seed_from_u64(3);
/// let mut counts = [0u32; 3];
/// for _ in 0..10_000 {
///     counts[table.sample(&mut rng)] += 1;
/// }
/// assert!(counts[1] > counts[0] && counts[1] > counts[2]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Errors
    /// Returns [`ParamError`] if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("alias table needs at least one weight"));
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(ParamError::new(format!("invalid alias weight {w}")));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(ParamError::new("alias weights sum to zero"));
        }
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining entries are numerically 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Ok(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Zipf distribution over ranks `{1, …, n}` with `P(k) ∝ k^(-s)`.
///
/// Thin convenience wrapper over [`DiscretePowerLaw`] for content-popularity
/// style workloads.
#[derive(Clone, Debug, PartialEq)]
pub struct Zipf {
    inner: DiscretePowerLaw,
}

impl Zipf {
    /// Creates a Zipf distribution over `{1, ..., n}`.
    ///
    /// # Errors
    /// Returns [`ParamError`] if `n == 0` or `s` is not finite.
    pub fn new(n: u64, s: f64) -> Result<Self, ParamError> {
        Ok(Zipf {
            inner: DiscretePowerLaw::new(1, n.max(1), s)?,
        })
    }

    /// Draws a rank in `{1, ..., n}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.inner.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn sample_mean_var(mut f: impl FnMut(&mut SimRng) -> f64, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = f(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        (mean, sum2 / n as f64 - mean * mean)
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi)
        assert!((ln_gamma(1.0)).abs() < 1e-9);
        assert!((ln_gamma(2.0)).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - 0.5 * PI.ln()).abs() < 1e-9);
        // Reference from a high-precision lgamma implementation.
        assert!((ln_gamma(10.3) - 13.482_036_786_138_36).abs() < 1e-8);
    }

    #[test]
    fn exp_rejects_bad_rate() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
    }

    #[test]
    fn exp_moments() {
        let d = Exp::new(0.5).expect("valid");
        let (mean, var) = sample_mean_var(|r| d.sample(r), 100_000, 7);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_rejects_bad_mean() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    #[test]
    fn poisson_small_mean_moments() {
        let d = Poisson::new(1.0).expect("valid");
        let (mean, var) = sample_mean_var(|r| d.sample(r) as f64, 100_000, 9);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn poisson_large_mean_moments() {
        let d = Poisson::new(200.0).expect("valid");
        let (mean, var) = sample_mean_var(|r| d.sample(r) as f64, 50_000, 11);
        assert!((mean - 200.0).abs() < 0.5, "mean {mean}");
        assert!((var - 200.0).abs() < 8.0, "var {var}");
    }

    #[test]
    fn poisson_boundary_mean_uses_both_algorithms_consistently() {
        // Means just below and above the Knuth/Atkinson switch should agree
        // statistically.
        let lo = Poisson::new(29.9).expect("valid");
        let hi = Poisson::new(30.1).expect("valid");
        let (m_lo, _) = sample_mean_var(|r| lo.sample(r) as f64, 60_000, 13);
        let (m_hi, _) = sample_mean_var(|r| hi.sample(r) as f64, 60_000, 14);
        assert!((m_lo - 29.9).abs() < 0.2, "knuth mean {m_lo}");
        assert!((m_hi - 30.1).abs() < 0.2, "atkinson mean {m_hi}");
    }

    #[test]
    fn geometric_mean_matches() {
        let d = Geometric::new(0.25).expect("valid");
        let (mean, _) = sample_mean_var(|r| d.sample(r) as f64, 100_000, 15);
        assert!((mean - 3.0).abs() < 0.06, "mean {mean}");
    }

    #[test]
    fn geometric_p_one_is_degenerate() {
        let d = Geometric::new(1.0).expect("valid");
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn pareto_median() {
        // Median of Pareto(scale, shape) = scale * 2^(1/shape).
        let d = Pareto::new(1.0, 2.5).expect("valid");
        let mut rng = SimRng::seed_from_u64(21);
        let n = 100_000;
        let below = (0..n)
            .filter(|_| d.sample(&mut rng) < 2f64.powf(1.0 / 2.5))
            .count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "median fraction {frac}");
    }

    #[test]
    fn power_law_pmf_sums_to_one() {
        let d = DiscretePowerLaw::new(1, 100, 2.5).expect("valid");
        let total: f64 = (1..=100).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(d.pmf(0), 0.0);
        assert_eq!(d.pmf(101), 0.0);
    }

    #[test]
    fn power_law_sample_matches_pmf() {
        let d = DiscretePowerLaw::new(1, 50, 2.5).expect("valid");
        let mut rng = SimRng::seed_from_u64(31);
        let n = 200_000;
        let mut counts = vec![0u32; 51];
        for _ in 0..n {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        for k in [1u64, 2, 3, 5, 10] {
            let emp = counts[k as usize] as f64 / n as f64;
            let theory = d.pmf(k);
            assert!(
                (emp - theory).abs() < 0.01,
                "k={k} empirical {emp} vs theory {theory}"
            );
        }
    }

    #[test]
    fn power_law_with_mean_hits_target() {
        // k = 2.5 with min degree 7 has unbounded mean ~19.5, so a target
        // of 15 is reachable with a moderate truncation point.
        let d = DiscretePowerLaw::with_mean(7, 2.5, 15.0).expect("achievable");
        let m = d.mean();
        assert!(m <= 15.0, "mean {m} exceeds target");
        assert!(m > 12.0, "mean {m} suspiciously far below target");
    }

    #[test]
    fn power_law_with_mean_rejects_unachievable() {
        assert!(DiscretePowerLaw::with_mean(10, 2.5, 5.0).is_err());
    }

    #[test]
    fn power_law_rejects_bad_support() {
        assert!(DiscretePowerLaw::new(0, 10, 2.5).is_err());
        assert!(DiscretePowerLaw::new(5, 4, 2.5).is_err());
        assert!(DiscretePowerLaw::new(1, 10, f64::NAN).is_err());
    }

    #[test]
    fn alias_table_frequencies() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let t = AliasTable::new(&weights).expect("valid");
        let mut rng = SimRng::seed_from_u64(41);
        let n = 400_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let emp = counts[i] as f64 / n as f64;
            assert!((emp - w).abs() < 0.005, "i={i} empirical {emp} weight {w}");
        }
    }

    #[test]
    fn alias_table_single_category() {
        let t = AliasTable::new(&[3.0]).expect("valid");
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_table_handles_zero_weights() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]).expect("valid");
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..1_000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alias_table_rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[-1.0, 2.0]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(100, 1.2).expect("valid");
        let mut rng = SimRng::seed_from_u64(51);
        let n = 50_000;
        let ones = (0..n).filter(|_| z.sample(&mut rng) == 1).count();
        let tens = (0..n).filter(|_| z.sample(&mut rng) == 10).count();
        assert!(ones > 5 * tens, "rank 1 ({ones}) vs rank 10 ({tens})");
    }

    #[test]
    fn param_error_displays() {
        let e = Exp::new(-1.0).unwrap_err();
        assert!(e.to_string().contains("invalid distribution parameter"));
    }
}

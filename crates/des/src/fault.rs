//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] turns a seed plus a [`FaultSpec`] into a reproducible
//! schedule of typed faults ([`FaultKind`]): peer crashes, dropped or
//! delayed deliveries, and defections (credits taken, goods never
//! delivered). Faults enter a simulation as **first-class events** —
//! the model asks the plan for an outcome or a crash time and schedules
//! the result through its ordinary [`crate::Scheduler`], so fault
//! events flow through the same [`crate::EventQueue`]/
//! [`crate::TimingWheel`] machinery as everything else.
//!
//! ## The determinism argument
//!
//! The plan draws from a **dedicated RNG stream** derived from the root
//! seed via [`SeedSequence::derive`] (stream index
//! [`FaultPlan::STREAM`]), never from the model's global stream. Two
//! consequences:
//!
//! * With faults disabled the plan is never constructed and the global
//!   stream is untouched, so every fault-free golden stays
//!   byte-identical.
//! * Plan draws are consumed in **event-apply order**. The sharded
//!   kernel ([`crate::ShardedSimulation`]) replays the exact serial
//!   `(time, seq)` apply order at every shard count, so the fault
//!   schedule — and everything downstream of it — is byte-identical
//!   across thread and shard counts.

use crate::rng::{SeedSequence, SimRng};
use crate::time::{SimDuration, SimTime};

/// The typed faults a plan can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A peer dies abruptly, taking its wallet (and any in-flight
    /// trades) with it.
    PeerCrash,
    /// A delivery is lost in transit; the buyer's credits stay escrowed
    /// and the trade retries.
    DeliveryDrop,
    /// A delivery arrives late — no credits move, the completion is
    /// rescheduled.
    DeliveryDelay,
    /// The seller takes the escrowed credits and never delivers.
    Defect,
}

/// The outcome the plan assigns to one delivery attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The delivery completes normally.
    Delivered,
    /// The delivery is lost ([`FaultKind::DeliveryDrop`]).
    Dropped,
    /// The seller defects ([`FaultKind::Defect`]).
    Defected,
    /// The delivery is delayed ([`FaultKind::DeliveryDelay`]).
    Delayed,
}

/// Declarative description of a fault workload: per-attempt fault
/// rates, the crash target fraction, and the onset time before which
/// no fault fires. This is the validated `faults.*` scenario surface;
/// the timing constants below it have sensible defaults and are not
/// scenario keys.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Probability a delivery attempt is dropped in transit.
    pub drop_rate: f64,
    /// Probability the seller defects on a delivery attempt.
    pub defect_rate: f64,
    /// Probability a delivery attempt is delayed.
    pub delay_rate: f64,
    /// Fraction of peers scheduled to crash (applied per peer as an
    /// independent Bernoulli draw, so the realized fraction converges
    /// to the target).
    pub crash_fraction: f64,
    /// No fault fires before this instant; crashes scheduled for
    /// earlier are pushed past it.
    pub onset: SimTime,
    /// Maximum retry attempts per trade before the escrow refunds.
    pub max_retries: u32,
    /// Mean in-transit latency of a delivery (exponential).
    pub delivery_mean: SimDuration,
    /// Mean extra latency a [`DeliveryOutcome::Delayed`] attempt waits
    /// before completing (exponential).
    pub delay_mean: SimDuration,
    /// First-retry backoff; attempt `k` waits `base * 2^(k-1)`, capped.
    pub backoff_base: SimDuration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: SimDuration,
    /// Mean delay from onset to a scheduled crash (exponential), so
    /// crashes spread over the run instead of all firing at the onset.
    pub crash_spread: SimDuration,
}

impl Default for FaultSpec {
    /// No faults; timing constants at their documented defaults.
    fn default() -> Self {
        FaultSpec {
            drop_rate: 0.0,
            defect_rate: 0.0,
            delay_rate: 0.0,
            crash_fraction: 0.0,
            onset: SimTime::ZERO,
            max_retries: 3,
            delivery_mean: SimDuration::from_millis(250),
            delay_mean: SimDuration::from_secs(5),
            backoff_base: SimDuration::from_millis(500),
            backoff_cap: SimDuration::from_secs(30),
            crash_spread: SimDuration::from_secs(500),
        }
    }
}

impl FaultSpec {
    /// Checks rates and timing constants.
    ///
    /// # Errors
    /// Returns a message naming the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("drop rate", self.drop_rate),
            ("defect rate", self.defect_rate),
            ("delay rate", self.delay_rate),
            ("crash fraction", self.crash_fraction),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        if self.drop_rate + self.defect_rate + self.delay_rate > 1.0 {
            return Err(format!(
                "drop + defect + delay rates must not exceed 1, got {}",
                self.drop_rate + self.defect_rate + self.delay_rate
            ));
        }
        if self.delivery_mean.is_zero() {
            return Err("delivery mean must be positive".into());
        }
        if self.backoff_base.is_zero() {
            return Err("backoff base must be positive".into());
        }
        if self.backoff_cap < self.backoff_base {
            return Err("backoff cap must be at least the backoff base".into());
        }
        Ok(())
    }

    /// Whether any fault can ever fire under this spec.
    pub fn any_faults(&self) -> bool {
        self.drop_rate > 0.0
            || self.defect_rate > 0.0
            || self.delay_rate > 0.0
            || self.crash_fraction > 0.0
    }
}

/// Counters for injected faults and the recovery machinery they
/// exercised. All zero when fault injection is disabled. Shared by
/// every fault-consuming model (the queue-level credit market and the
/// chunk-level streaming system) so observation layers read one shape.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Trades settled through the escrow delivery path.
    pub delivered: u64,
    /// Delivery attempts dropped in transit (including attempts whose
    /// seller departed mid-flight, which the buyer observes as a drop).
    pub dropped: u64,
    /// Delivery attempts on which the seller took the escrow and never
    /// delivered.
    pub defected: u64,
    /// Delivery attempts that arrived late and were rescheduled.
    pub delayed: u64,
    /// Retry attempts scheduled after failed deliveries.
    pub retries: u64,
    /// Trades abandoned after exhausting the retry budget, their
    /// escrow refunded to the buyer.
    pub refunded: u64,
    /// Peers removed by injected crashes.
    pub crashes: u64,
    /// Histogram of concluded trades by final attempt number:
    /// `retry_depth[k]` counts trades that ended (settled, refunded,
    /// or abandoned after a defection) on attempt `k + 1`. Models whose
    /// retries are implicit (the streaming pull loop re-requests failed
    /// chunks organically) leave it empty.
    pub retry_depth: Vec<u64>,
}

impl FaultStats {
    /// Attempt-level delivery failures: drops plus defections.
    pub fn failed_attempts(&self) -> u64 {
        self.dropped + self.defected
    }

    /// Records that a trade concluded on `attempt`.
    pub fn note_conclusion(&mut self, attempt: u32) {
        let idx = attempt.saturating_sub(1) as usize;
        if self.retry_depth.len() <= idx {
            self.retry_depth.resize(idx + 1, 0);
        }
        self.retry_depth[idx] += 1;
    }
}

/// Capped exponential backoff with deterministic jitter: attempt `k`
/// (1-based) waits `base * 2^(k-1)` capped at `cap`, scaled by a jitter
/// factor in `[0.5, 1.5)` derived from `jitter01 ∈ [0, 1)`. The caller
/// supplies the jitter draw (the market uses its global stream, per the
/// recovery contract), so the schedule is a pure function of its
/// inputs.
pub fn retry_backoff(
    base: SimDuration,
    cap: SimDuration,
    attempt: u32,
    jitter01: f64,
) -> SimDuration {
    let doubled = base
        .as_micros()
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(32));
    let capped = doubled.min(cap.as_micros()).max(1);
    let jittered = (capped as f64 * (0.5 + jitter01.clamp(0.0, 1.0))).round() as u64;
    SimDuration::from_micros(jittered.max(1))
}

/// A seed-derived fault schedule: the deterministic oracle models
/// consult when injecting faults. See the [module docs](self) for the
/// determinism argument.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    rng: SimRng,
    outcomes_drawn: u64,
}

impl FaultPlan {
    /// The [`SeedSequence`] stream index reserved for fault plans. Any
    /// model-side stream derivation must avoid this index.
    pub const STREAM: u64 = 0xFA17;

    /// Builds a plan for `spec`, drawing from the dedicated fault
    /// stream of `root_seed`.
    ///
    /// # Errors
    /// Returns the message from [`FaultSpec::validate`].
    pub fn new(spec: FaultSpec, root_seed: u64) -> Result<Self, String> {
        spec.validate()?;
        Ok(FaultPlan {
            spec,
            rng: SeedSequence::new(root_seed).rng(Self::STREAM),
            outcomes_drawn: 0,
        })
    }

    /// The spec this plan realizes.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Number of delivery outcomes drawn so far (a cheap cross-check
    /// for determinism tests).
    pub fn outcomes_drawn(&self) -> u64 {
        self.outcomes_drawn
    }

    /// The outcome of one delivery attempt applied at instant `now`.
    /// Before the onset every attempt succeeds without consuming a
    /// draw; after it, exactly one uniform draw decides the outcome.
    pub fn delivery_outcome(&mut self, now: SimTime) -> DeliveryOutcome {
        let fault_mass = self.spec.drop_rate + self.spec.defect_rate + self.spec.delay_rate;
        if now < self.spec.onset || fault_mass <= 0.0 {
            return DeliveryOutcome::Delivered;
        }
        self.outcomes_drawn += 1;
        let u = self.rng.uniform_f64();
        if u < self.spec.drop_rate {
            DeliveryOutcome::Dropped
        } else if u < self.spec.drop_rate + self.spec.defect_rate {
            DeliveryOutcome::Defected
        } else if u < self.spec.drop_rate + self.spec.defect_rate + self.spec.delay_rate {
            DeliveryOutcome::Delayed
        } else {
            DeliveryOutcome::Delivered
        }
    }

    /// The in-transit latency of a delivery attempt (exponential with
    /// mean [`FaultSpec::delivery_mean`]).
    pub fn delivery_latency(&mut self) -> SimDuration {
        self.exp(self.spec.delivery_mean)
    }

    /// The extra wait of a [`DeliveryOutcome::Delayed`] attempt
    /// (exponential with mean [`FaultSpec::delay_mean`]).
    pub fn delay_penalty(&mut self) -> SimDuration {
        self.exp(self.spec.delay_mean)
    }

    /// Decides whether a peer (first seen at `now`) crashes, and if so
    /// when: a Bernoulli draw at [`FaultSpec::crash_fraction`], then an
    /// exponential spread past the onset. Call once per peer, in
    /// event-apply order (bootstrap slot order for the initial
    /// population, join order for churned-in peers).
    pub fn crash_delay(&mut self, now: SimTime) -> Option<SimDuration> {
        if self.spec.crash_fraction <= 0.0 {
            return None;
        }
        if !self.rng.chance(self.spec.crash_fraction) {
            return None;
        }
        let to_onset = if now < self.spec.onset {
            self.spec.onset - now
        } else {
            SimDuration::ZERO
        };
        Some(to_onset + self.exp(self.spec.crash_spread))
    }

    /// Capped exponential backoff for retry `attempt`, jittered by a
    /// caller-supplied uniform draw (see [`retry_backoff`]).
    pub fn backoff(&self, attempt: u32, jitter01: f64) -> SimDuration {
        retry_backoff(
            self.spec.backoff_base,
            self.spec.backoff_cap,
            attempt,
            jitter01,
        )
    }

    /// The plan's RNG state, for checkpointing (pair with
    /// [`FaultPlan::outcomes_drawn`] and the spec, which is rebuilt
    /// from configuration).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores the RNG state and outcome counter captured by a
    /// checkpoint.
    pub fn restore(&mut self, state: [u64; 4], outcomes_drawn: u64) {
        self.rng = SimRng::from_state(state);
        self.outcomes_drawn = outcomes_drawn;
    }

    fn exp(&mut self, mean: SimDuration) -> SimDuration {
        let u = self.rng.uniform_open01();
        SimDuration::from_secs_f64(-u.ln() * mean.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty_spec() -> FaultSpec {
        FaultSpec {
            drop_rate: 0.2,
            defect_rate: 0.1,
            delay_rate: 0.1,
            crash_fraction: 0.3,
            onset: SimTime::from_secs(10),
            ..FaultSpec::default()
        }
    }

    #[test]
    fn validate_rejects_bad_specs() {
        assert!(FaultSpec::default().validate().is_ok());
        assert!(faulty_spec().validate().is_ok());
        let bad = FaultSpec {
            drop_rate: 1.5,
            ..FaultSpec::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultSpec {
            drop_rate: 0.6,
            defect_rate: 0.6,
            ..FaultSpec::default()
        };
        assert!(bad.validate().is_err(), "rates summing past 1");
        let bad = FaultSpec {
            crash_fraction: -0.1,
            ..FaultSpec::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultSpec {
            backoff_cap: SimDuration::from_millis(1),
            ..FaultSpec::default()
        };
        assert!(bad.validate().is_err(), "cap below base");
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::new(faulty_spec(), 99).expect("valid");
        let mut b = FaultPlan::new(faulty_spec(), 99).expect("valid");
        let t = SimTime::from_secs(100);
        for _ in 0..500 {
            assert_eq!(a.delivery_outcome(t), b.delivery_outcome(t));
            assert_eq!(a.delivery_latency(), b.delivery_latency());
            assert_eq!(a.crash_delay(SimTime::ZERO), b.crash_delay(SimTime::ZERO));
        }
        assert_eq!(a.outcomes_drawn(), 500);
    }

    #[test]
    fn fault_stream_is_independent_of_the_model_stream() {
        // The plan must not consume or depend on the root-seeded global
        // stream: the derived stream differs from the root stream.
        let mut plan = FaultPlan::new(faulty_spec(), 7).expect("valid");
        let mut root = SimRng::seed_from_u64(7);
        let t = SimTime::from_secs(50);
        let plan_draws: Vec<DeliveryOutcome> = (0..16).map(|_| plan.delivery_outcome(t)).collect();
        let mut replay = FaultPlan::new(faulty_spec(), 7).expect("valid");
        let replay_draws: Vec<DeliveryOutcome> =
            (0..16).map(|_| replay.delivery_outcome(t)).collect();
        assert_eq!(plan_draws, replay_draws);
        // Consuming the root stream does not perturb a fresh plan.
        for _ in 0..64 {
            root.uniform_f64();
        }
        let mut after = FaultPlan::new(faulty_spec(), 7).expect("valid");
        let after_draws: Vec<DeliveryOutcome> =
            (0..16).map(|_| after.delivery_outcome(t)).collect();
        assert_eq!(plan_draws, after_draws);
    }

    #[test]
    fn no_fault_before_onset() {
        let mut plan = FaultPlan::new(faulty_spec(), 3).expect("valid");
        for s in 0..10u64 {
            assert_eq!(
                plan.delivery_outcome(SimTime::from_secs(s)),
                DeliveryOutcome::Delivered
            );
        }
        assert_eq!(plan.outcomes_drawn(), 0, "pre-onset draws are free");
        // Crashes never land before the onset either.
        let mut crashes = 0;
        for _ in 0..200 {
            if let Some(d) = plan.crash_delay(SimTime::ZERO) {
                assert!(SimTime::ZERO + d >= plan.spec().onset);
                crashes += 1;
            }
        }
        assert!(crashes > 20, "crash fraction 0.3 yielded {crashes}/200");
    }

    #[test]
    fn outcome_rates_converge() {
        let mut plan = FaultPlan::new(faulty_spec(), 11).expect("valid");
        let t = SimTime::from_secs(1_000);
        let n = 20_000;
        let mut dropped = 0;
        let mut defected = 0;
        let mut delayed = 0;
        for _ in 0..n {
            match plan.delivery_outcome(t) {
                DeliveryOutcome::Dropped => dropped += 1,
                DeliveryOutcome::Defected => defected += 1,
                DeliveryOutcome::Delayed => delayed += 1,
                DeliveryOutcome::Delivered => {}
            }
        }
        let rate = |c: i32| c as f64 / n as f64;
        assert!((rate(dropped) - 0.2).abs() < 0.01, "{}", rate(dropped));
        assert!((rate(defected) - 0.1).abs() < 0.01, "{}", rate(defected));
        assert!((rate(delayed) - 0.1).abs() < 0.01, "{}", rate(delayed));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = SimDuration::from_millis(500);
        let cap = SimDuration::from_secs(30);
        // Jitter 0.5 is the identity factor.
        assert_eq!(retry_backoff(base, cap, 1, 0.5), base);
        assert_eq!(retry_backoff(base, cap, 2, 0.5), SimDuration::from_secs(1));
        assert_eq!(retry_backoff(base, cap, 3, 0.5), SimDuration::from_secs(2));
        assert_eq!(retry_backoff(base, cap, 30, 0.5), cap);
        // Jitter spans [0.5x, 1.5x).
        let lo = retry_backoff(base, cap, 1, 0.0);
        let hi = retry_backoff(base, cap, 1, 0.999);
        assert_eq!(lo, SimDuration::from_millis(250));
        assert!(hi > base && hi < SimDuration::from_millis(750));
        // Never zero, even for degenerate inputs.
        assert!(retry_backoff(SimDuration::from_micros(1), cap, 1, 0.0) > SimDuration::ZERO);
    }

    #[test]
    fn rng_state_round_trips() {
        let mut plan = FaultPlan::new(faulty_spec(), 21).expect("valid");
        let t = SimTime::from_secs(60);
        for _ in 0..37 {
            plan.delivery_outcome(t);
            plan.delivery_latency();
        }
        let state = plan.rng_state();
        let drawn = plan.outcomes_drawn();
        let tail: Vec<DeliveryOutcome> = (0..64).map(|_| plan.delivery_outcome(t)).collect();
        let mut resumed = FaultPlan::new(faulty_spec(), 21).expect("valid");
        resumed.restore(state, drawn);
        let resumed_tail: Vec<DeliveryOutcome> =
            (0..64).map(|_| resumed.delivery_outcome(t)).collect();
        assert_eq!(tail, resumed_tail);
        assert_eq!(plan.outcomes_drawn(), resumed.outcomes_drawn());
    }

    #[test]
    fn disabled_spec_draws_nothing() {
        let mut plan = FaultPlan::new(FaultSpec::default(), 5).expect("valid");
        assert!(!plan.spec().any_faults());
        assert!(faulty_spec().any_faults());
        for s in 0..100u64 {
            assert_eq!(
                plan.delivery_outcome(SimTime::from_secs(s)),
                DeliveryOutcome::Delivered
            );
            assert_eq!(plan.crash_delay(SimTime::from_secs(s)), None);
        }
        assert_eq!(plan.outcomes_drawn(), 0);
    }
}

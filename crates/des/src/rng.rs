//! Deterministic random-number generation for simulations.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulation PRNG: a seedable, fast, reproducible generator.
///
/// All randomness in the `scrip` workspace flows through `SimRng` so that
/// every experiment is reproducible from its seed. `SimRng` implements
/// [`RngCore`], so it works with any `rand`-based sampler as well as with
/// the samplers in [`crate::dist`].
///
/// Independent sub-streams for model components are derived with
/// [`SimRng::fork`], which avoids correlated streams without sharing
/// mutable state.
///
/// ```
/// use scrip_des::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded from the parent's stream, so distinct calls
    /// yield distinct (and deterministic) sub-streams.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen::<u64>())
    }

    /// The full 256-bit generator state, for checkpointing. Restoring
    /// it with [`SimRng::from_state`] reproduces the exact output
    /// stream from this point on — the primitive behind
    /// `Session::checkpoint`.
    pub fn state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Rebuilds a generator from a state captured by [`SimRng::state`].
    pub fn from_state(state: [u64; 4]) -> Self {
        SimRng {
            inner: SmallRng::from_state(state),
        }
    }

    /// A uniform variate in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform variate in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-transform sampling where `ln(0)` must be avoided.
    pub fn uniform_open01(&mut self) -> f64 {
        loop {
            let u = self.inner.gen::<f64>();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "SimRng::index called with zero bound");
        self.inner.gen_range(0..bound)
    }

    /// A Bernoulli trial with success probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

/// Deterministic derivation of independent seed streams from one root
/// seed.
///
/// Batch experiments run the same model many times — across replications,
/// grid points, and worker threads — and must stay reproducible no matter
/// how the work is sharded. `SeedSequence` maps a root seed plus a stream
/// index to a statistically independent 64-bit seed using the SplitMix64
/// finalizer, so the seed of job `(case, replication)` depends only on
/// those coordinates, never on scheduling order or thread count.
///
/// Two derivation rules:
///
/// * [`SeedSequence::derive`] — a fresh, well-mixed stream per index
///   (also per `(a, b)` pair via [`SeedSequence::derive2`]);
/// * [`SeedSequence::replication_seed`] — like `derive`, except that
///   replication `0` returns the root seed unchanged. Single-replication
///   batch runs are therefore byte-identical to calling the simulator
///   directly with the root seed, and all grid points share the same
///   replication seeds (common random numbers, the standard
///   variance-reduction technique for comparing configurations).
///
/// ```
/// use scrip_des::rng::SeedSequence;
///
/// let seq = SeedSequence::new(4242);
/// assert_eq!(seq.replication_seed(0), 4242);
/// assert_ne!(seq.replication_seed(1), seq.replication_seed(2));
/// // Derivation is pure: the same coordinates always yield the same seed.
/// assert_eq!(seq.derive(7), SeedSequence::new(4242).derive(7));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`.
    pub const fn new(root: u64) -> Self {
        SeedSequence { root }
    }

    /// The root seed.
    pub const fn root(&self) -> u64 {
        self.root
    }

    /// Derives the seed of stream `index`.
    pub fn derive(&self, index: u64) -> u64 {
        splitmix64(self.root ^ splitmix64(index))
    }

    /// Derives the seed of the two-dimensional stream `(a, b)` — e.g.
    /// `(grid point, replication)`.
    pub fn derive2(&self, a: u64, b: u64) -> u64 {
        splitmix64(self.derive(a) ^ splitmix64(b.wrapping_add(0x51_7C_C1_B7_27_22_0A_95)))
    }

    /// The seed of replication `rep`: the root seed itself for
    /// replication 0, an independent derived stream otherwise.
    ///
    /// Replication 0 deliberately reuses the root so that a
    /// single-replication batch run reproduces a direct simulator call
    /// byte-for-byte, and so that every grid point of a sweep sees the
    /// same replication seeds (common random numbers).
    pub fn replication_seed(&self, rep: u64) -> u64 {
        if rep == 0 {
            self.root
        } else {
            self.derive(rep)
        }
    }

    /// A ready-made [`SimRng`] for stream `index`.
    pub fn rng(&self, index: u64) -> SimRng {
        SimRng::seed_from_u64(self.derive(index))
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(123);
        let mut b = SimRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from_u64(9);
        let mut parent2 = SimRng::seed_from_u64(9);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Parent stream continues deterministically after forking.
        assert_eq!(parent1.next_u64(), parent2.next_u64());
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut rng = SimRng::seed_from_u64(31);
        for _ in 0..23 {
            rng.uniform_f64();
        }
        let mut resumed = SimRng::from_state(rng.state());
        for _ in 0..200 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn uniform_open01_never_zero() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let u = rng.uniform_open01();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn index_within_bounds() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..1_000 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn index_zero_bound_panics() {
        SimRng::seed_from_u64(0).index(0);
    }

    #[test]
    fn chance_edge_cases() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_mean_near_p() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input intact");
    }

    #[test]
    fn seed_sequence_replication_zero_is_root() {
        let seq = SeedSequence::new(999);
        assert_eq!(seq.root(), 999);
        assert_eq!(seq.replication_seed(0), 999);
        assert_ne!(seq.replication_seed(1), 999);
    }

    #[test]
    fn seed_sequence_streams_are_distinct_and_pure() {
        let seq = SeedSequence::new(7);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1_000u64 {
            seen.insert(seq.derive(i));
        }
        assert_eq!(seen.len(), 1_000, "derived seeds should not collide");
        // Purity: independent of call order and instance.
        assert_eq!(seq.derive(42), SeedSequence::new(7).derive(42));
        assert_eq!(seq.derive2(3, 9), SeedSequence::new(7).derive2(3, 9));
    }

    #[test]
    fn seed_sequence_2d_does_not_alias_axes() {
        let seq = SeedSequence::new(1);
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..40u64 {
            for b in 0..40u64 {
                seen.insert(seq.derive2(a, b));
            }
        }
        assert_eq!(seen.len(), 1_600, "2-d streams should not collide");
        assert_ne!(seq.derive2(0, 1), seq.derive2(1, 0));
    }

    #[test]
    fn seed_sequence_rng_matches_derive() {
        let seq = SeedSequence::new(11);
        let mut from_seq = seq.rng(5);
        let mut direct = SimRng::seed_from_u64(seq.derive(5));
        assert_eq!(from_seq.next_u64(), direct.next_u64());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SimRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}

//! Deterministic random-number generation for simulations.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulation PRNG: a seedable, fast, reproducible generator.
///
/// All randomness in the `scrip` workspace flows through `SimRng` so that
/// every experiment is reproducible from its seed. `SimRng` implements
/// [`RngCore`], so it works with any `rand`-based sampler as well as with
/// the samplers in [`crate::dist`].
///
/// Independent sub-streams for model components are derived with
/// [`SimRng::fork`], which avoids correlated streams without sharing
/// mutable state.
///
/// ```
/// use scrip_des::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded from the parent's stream, so distinct calls
    /// yield distinct (and deterministic) sub-streams.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen::<u64>())
    }

    /// A uniform variate in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform variate in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-transform sampling where `ln(0)` must be avoided.
    pub fn uniform_open01(&mut self) -> f64 {
        loop {
            let u = self.inner.gen::<f64>();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "SimRng::index called with zero bound");
        self.inner.gen_range(0..bound)
    }

    /// A Bernoulli trial with success probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(123);
        let mut b = SimRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from_u64(9);
        let mut parent2 = SimRng::seed_from_u64(9);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Parent stream continues deterministically after forking.
        assert_eq!(parent1.next_u64(), parent2.next_u64());
    }

    #[test]
    fn uniform_open01_never_zero() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let u = rng.uniform_open01();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn index_within_bounds() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..1_000 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn index_zero_bound_panics() {
        SimRng::seed_from_u64(0).index(0);
    }

    #[test]
    fn chance_edge_cases() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_mean_near_p() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input intact");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SimRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}

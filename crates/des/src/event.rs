//! The pending-event list and the scheduling handle passed to models.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};
use crate::wheel::TimingWheel;

/// An event together with its activation time and a tie-breaking sequence
/// number.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO), which keeps simulations deterministic.
#[derive(Clone, Debug)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic sequence number used to break ties at equal `time`.
    pub seq: u64,
    /// The model-defined event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    // Reversed so the BinaryHeap (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Selects the pending-event store behind an [`EventQueue`].
///
/// The two backends pop the identical `(time, seq)` sequence (pinned by
/// the equivalence proptests in `crates/des/tests/proptests.rs`); the
/// profile only changes the constant factors. Callers that know their
/// steady-state event population and typical scheduling lookahead pass
/// `Wheel` and get O(1) amortized schedule/pop; everyone else keeps the
/// binary heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueProfile {
    /// A binary heap: O(log n) schedule/pop, no sizing hints required.
    /// This is the default for [`EventQueue::new`].
    Heap,
    /// A calendar queue ([`TimingWheel`]): O(1) amortized schedule/pop
    /// for workloads whose pending population and lookahead are roughly
    /// known up front.
    Wheel {
        /// Expected steady-state number of concurrently pending events.
        expected_events: usize,
        /// Typical scheduling lookahead (how far ahead of `now` most
        /// events are pushed). Events far past this take a slow-path
        /// overflow heap, which is correct but O(log n).
        typical_delay: SimDuration,
    },
}

/// The pending-event store: a plain binary heap or a timing wheel.
#[derive(Clone, Debug)]
enum QueueBackend<E> {
    Heap(BinaryHeap<Scheduled<E>>),
    Wheel(TimingWheel<E>),
}

/// A priority queue of future events ordered by activation time.
///
/// The default backend is a [`BinaryHeap`]; [`EventQueue::with_profile`]
/// selects a [`TimingWheel`] (calendar queue) that pops the identical
/// `(time, seq)` sequence with O(1) amortized schedule/pop. Most users
/// interact with it through [`Scheduler`]; it is public so custom
/// kernels can reuse it.
///
/// ```
/// use scrip_des::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().map(|s| s.event), Some("sooner"));
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    backend: QueueBackend<E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            backend: QueueBackend::Heap(BinaryHeap::new()),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with heap capacity for `capacity` pending
    /// events. Self-perpetuating models (n spend loops + n leave timers)
    /// know their steady-state queue population up front; pre-reserving
    /// keeps the hot push/pop cycle free of reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            backend: QueueBackend::Heap(BinaryHeap::with_capacity(capacity)),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with the backend `profile` selects.
    pub fn with_profile(profile: QueueProfile) -> Self {
        let backend = match profile {
            QueueProfile::Heap => QueueBackend::Heap(BinaryHeap::new()),
            QueueProfile::Wheel {
                expected_events,
                typical_delay,
            } => QueueBackend::Wheel(TimingWheel::new(expected_events, typical_delay)),
        };
        EventQueue {
            backend,
            next_seq: 0,
        }
    }

    /// Reserves capacity for at least `additional` further events (heap
    /// capacity for the heap backend; spread across the bucket ring
    /// plus live-region headroom for the wheel).
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.backend {
            QueueBackend::Heap(h) => h.reserve(additional),
            QueueBackend::Wheel(w) => w.reserve(additional),
        }
    }

    /// The number of pending events the queue can hold without
    /// reallocating.
    pub fn capacity(&self) -> usize {
        match &self.backend {
            QueueBackend::Heap(h) => h.capacity(),
            QueueBackend::Wheel(w) => w.capacity(),
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let scheduled = Scheduled { time, seq, event };
        match &mut self.backend {
            QueueBackend::Heap(h) => h.push(scheduled),
            QueueBackend::Wheel(w) => w.push(scheduled),
        }
    }

    /// Re-enqueues an already-sequenced event, preserving its original
    /// `(time, seq)` identity.
    ///
    /// This is the routing primitive for kernels that distribute one
    /// logical event stream over several queues (e.g.
    /// [`crate::shard::ShardedSimulation`]): because the sequence
    /// number is kept, merging any set of queues by `(time, seq)`
    /// reproduces the order a single queue would have popped. The
    /// local counter is bumped past `scheduled.seq` so later
    /// [`EventQueue::push`]es on this queue never collide with it.
    pub fn push_scheduled(&mut self, scheduled: Scheduled<E>) {
        self.next_seq = self.next_seq.max(scheduled.seq + 1);
        match &mut self.backend {
            QueueBackend::Heap(h) => h.push(scheduled),
            QueueBackend::Wheel(w) => w.push(scheduled),
        }
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        match &mut self.backend {
            QueueBackend::Heap(h) => h.pop(),
            QueueBackend::Wheel(w) => w.pop(),
        }
    }

    /// Removes and returns the earliest pending event if it activates
    /// at or before `limit`.
    pub fn pop_due(&mut self, limit: SimTime) -> Option<Scheduled<E>> {
        match &mut self.backend {
            QueueBackend::Heap(h) => match h.peek() {
                Some(s) if s.time <= limit => h.pop(),
                _ => None,
            },
            QueueBackend::Wheel(w) => w.pop_due(limit),
        }
    }

    /// The activation time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            QueueBackend::Heap(h) => h.peek().map(|s| s.time),
            QueueBackend::Wheel(w) => w.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            QueueBackend::Heap(h) => h.len(),
            QueueBackend::Wheel(w) => w.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            QueueBackend::Heap(h) => h.clear(),
            QueueBackend::Wheel(w) => w.clear(),
        }
    }
}

/// The scheduling interface handed to [`crate::Model::handle`].
///
/// A `Scheduler` owns the event queue and the current clock. Models use it
/// to read the clock ([`Scheduler::now`]) and to plan future events
/// ([`Scheduler::schedule_at`] / [`Scheduler::schedule_after`]).
#[derive(Clone, Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with an empty queue at time zero.
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// Creates a scheduler whose queue is pre-sized for `capacity`
    /// pending events (see [`EventQueue::with_capacity`]).
    pub fn with_capacity(capacity: usize) -> Self {
        Scheduler {
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
        }
    }

    /// Creates a scheduler whose queue uses the backend `profile`
    /// selects (see [`EventQueue::with_profile`]).
    pub fn with_profile(profile: QueueProfile) -> Self {
        Scheduler {
            queue: EventQueue::with_profile(profile),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to
    /// `now` so the simulation clock never runs backwards.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        self.queue.push(time, event);
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Reserves queue capacity for at least `additional` further events
    /// (see [`EventQueue::reserve`]). Models with a known steady-state
    /// event population call this once at bootstrap.
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// The number of pending events the queue can hold without
    /// reallocating.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Activation time of the next event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Re-enqueues an already-sequenced event, preserving its
    /// `(time, seq)` identity (see [`EventQueue::push_scheduled`]).
    /// Unlike [`Scheduler::schedule_at`] the activation time is *not*
    /// clamped to the clock — routed events carry times from the
    /// sequencing scheduler, which never runs ahead of this one.
    pub fn enqueue_scheduled(&mut self, scheduled: Scheduled<E>) {
        self.queue.push_scheduled(scheduled);
    }

    /// Removes and returns the earliest pending event activating at or
    /// before `limit`, **without** touching the clock. Sharded kernels
    /// use this to drain a window's events into a staging buffer; the
    /// clock is advanced separately at the window barrier.
    pub fn pop_due(&mut self, limit: SimTime) -> Option<Scheduled<E>> {
        self.queue.pop_due(limit)
    }

    /// Pops the next event and advances the clock to its activation time.
    pub(crate) fn advance(&mut self) -> Option<Scheduled<E>> {
        let scheduled = self.queue.pop()?;
        debug_assert!(scheduled.time >= self.now, "event queue went backwards");
        self.now = scheduled.time;
        Some(scheduled)
    }

    /// Advances the clock to `time` without dispatching events (used by the
    /// kernel when running up to a horizon with no events left before it).
    pub(crate) fn advance_clock_to(&mut self, time: SimTime) {
        if time > self.now {
            self.now = time;
        }
    }

    /// Drops all pending events (used when a simulation is aborted).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Restores the clock to an absolute instant captured by a
    /// checkpoint. The clock never runs backwards: restoring to a time
    /// before `now` is a no-op, exactly like the kernel-internal
    /// horizon advance.
    pub fn restore_clock(&mut self, time: SimTime) {
        if time > self.now {
            self.now = time;
        }
    }
}

impl<E: Clone> Scheduler<E> {
    /// Every pending event in ascending `(time, seq)` order, without
    /// disturbing the queue — the checkpointing primitive. Both queue
    /// backends are `Clone`, so the snapshot clones the queue and
    /// drains the clone; the live queue, its clock, and its sequence
    /// counter are untouched.
    pub fn snapshot_events(&self) -> Vec<Scheduled<E>> {
        let mut clone = self.queue.clone();
        let mut events = Vec::with_capacity(clone.len());
        while let Some(ev) = clone.pop() {
            events.push(ev);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn scheduler_clamps_past_events_to_now() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.advance_clock_to(SimTime::from_secs(10));
        s.schedule_at(SimTime::from_secs(1), ());
        let ev = s.advance().expect("event");
        assert_eq!(ev.time, SimTime::from_secs(10));
        assert_eq!(s.now(), SimTime::from_secs(10));
    }

    #[test]
    fn scheduler_advance_moves_clock() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(4), 7);
        assert_eq!(s.pending(), 1);
        let ev = s.advance().expect("event");
        assert_eq!(ev.event, 7);
        assert_eq!(s.now(), SimTime::from_secs(4));
        assert!(s.is_idle());
    }

    #[test]
    fn with_capacity_pre_reserves() {
        let q: EventQueue<u32> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        assert!(q.is_empty());
        let mut q = EventQueue::with_capacity(8);
        for i in 0..8 {
            q.push(SimTime::from_secs(i), i);
        }
        assert_eq!(q.len(), 8);
        assert!(q.capacity() >= 8);
    }

    #[test]
    fn scheduler_reserve_prevents_growth() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.reserve(100);
        let cap = s.capacity();
        assert!(cap >= 100);
        // A steady-state push/pop cycle within the reserved capacity
        // never grows the heap.
        for i in 0..100 {
            s.schedule_after(SimDuration::from_secs(i), i as u32);
        }
        for _ in 0..1_000 {
            let ev = s.advance().expect("event");
            s.schedule_after(SimDuration::from_secs(1), ev.event);
        }
        assert_eq!(s.capacity(), cap, "steady-state cycling reallocated");
    }

    #[test]
    fn wheel_profile_pops_like_heap() {
        let profile = QueueProfile::Wheel {
            expected_events: 128,
            typical_delay: SimDuration::from_secs(2),
        };
        let mut heap: EventQueue<u32> = EventQueue::new();
        let mut wheel: EventQueue<u32> = EventQueue::with_profile(profile);
        for (secs, ev) in [(3, 0), (1, 1), (1, 2), (900, 3), (2, 4), (0, 5)] {
            heap.push(SimTime::from_secs(secs), ev);
            wheel.push(SimTime::from_secs(secs), ev);
        }
        loop {
            let (a, b) = (heap.pop(), wheel.pop());
            match (&a, &b) {
                (Some(x), Some(y)) => assert_eq!((x.time, x.seq), (y.time, y.seq)),
                (None, None) => break,
                _ => panic!("backends disagree on queue length"),
            }
        }
    }

    #[test]
    fn wheel_scheduler_preserves_routed_sequence_numbers() {
        let profile = QueueProfile::Wheel {
            expected_events: 64,
            typical_delay: SimDuration::from_millis(10),
        };
        let mut s: Scheduler<u32> = Scheduler::with_profile(profile);
        s.enqueue_scheduled(Scheduled {
            time: SimTime::from_secs(1),
            seq: 41,
            event: 7,
        });
        s.schedule_at(SimTime::from_secs(1), 8); // must get seq 42
        let first = s.advance().expect("event");
        let second = s.advance().expect("event");
        assert_eq!((first.seq, first.event), (41, 7));
        assert_eq!((second.seq, second.event), (42, 8));
    }

    #[test]
    fn snapshot_round_trips_through_enqueue_scheduled() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.advance_clock_to(SimTime::from_secs(2));
        for (secs, ev) in [(9, 1), (3, 2), (3, 3), (40, 4)] {
            s.schedule_at(SimTime::from_secs(secs), ev);
        }
        let snap = s.snapshot_events();
        assert_eq!(snap.len(), 4, "snapshot covers every pending event");
        assert!(snap
            .windows(2)
            .all(|w| (w[0].time, w[0].seq) < (w[1].time, w[1].seq)));
        assert_eq!(s.pending(), 4, "snapshot must not drain the live queue");

        // Rebuild a fresh scheduler from the snapshot: same clock, same
        // pop order, and the sequence counter continues past the
        // restored events.
        let mut restored: Scheduler<u32> = Scheduler::new();
        restored.restore_clock(s.now());
        for ev in snap {
            restored.enqueue_scheduled(ev);
        }
        assert_eq!(restored.now(), s.now());
        loop {
            match (s.advance(), restored.advance()) {
                (Some(a), Some(b)) => {
                    assert_eq!((a.time, a.seq), (b.time, b.seq));
                    assert_eq!(a.event, b.event);
                }
                (None, None) => break,
                _ => panic!("restored queue diverged in length"),
            }
        }
    }

    #[test]
    fn restore_clock_never_goes_backwards() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.restore_clock(SimTime::from_secs(5));
        assert_eq!(s.now(), SimTime::from_secs(5));
        s.restore_clock(SimTime::from_secs(1));
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    fn clear_empties_queue() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(1), 1);
        s.schedule_after(SimDuration::from_secs(2), 2);
        s.clear();
        assert!(s.is_idle());
        assert_eq!(s.next_event_time(), None);
    }
}

//! # scrip-des — deterministic discrete-event simulation kernel
//!
//! This crate is the simulation substrate for the `scrip` workspace, which
//! reproduces *"Exploring the Sustainability of Credit-incentivized
//! Peer-to-Peer Content Distribution"* (Qiu et al., ICDCSW 2012). The paper
//! validates its queueing-network theory with a discrete-event simulator of a
//! mesh P2P live-streaming system; this crate provides that simulator's
//! foundation:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond virtual time, so
//!   event ordering is exact and runs are bit-for-bit reproducible.
//! * [`Scheduler`] and [`Simulation`] — a classic event-list kernel with
//!   FIFO tie-breaking for simultaneous events.
//! * [`rng::SimRng`] — a seedable PRNG facade so every experiment is
//!   deterministic given its seed.
//! * [`dist`] — the random variates the paper needs (exponential service
//!   times, Poisson chunk prices, power-law degrees, …) implemented from
//!   scratch on top of [`rand::Rng`].
//! * [`stats`] — online statistics collectors (time series, time-weighted
//!   means, histograms) used to record Gini-over-time and rate measurements.
//! * [`fault`] — deterministic fault-injection plans ([`FaultPlan`]):
//!   seed-derived schedules of peer crashes, delivery drops/delays, and
//!   defections, drawn from a dedicated RNG stream so fault-free runs
//!   are byte-identical with the plan absent.
//! * [`shard`] — a sharded kernel ([`ShardedSimulation`]) that partitions
//!   one run's event stream over per-shard queues advancing in lockstep
//!   tick windows, byte-identical to the serial kernel for any shard count.
//! * [`sampler`] / [`wheel`] — the O(1)-amortized hot-path primitives for
//!   million-peer runs: a draw-compatible Fenwick weighted sampler
//!   ([`FenwickSampler`]) and a calendar-queue event store
//!   ([`TimingWheel`]) selectable per queue via [`QueueProfile`]. Both
//!   reproduce their O(deg)/O(log n) predecessors' outputs exactly.
//! * [`trace`] — versioned append-only event traces ([`TraceWriter`] /
//!   [`TraceReader`]): every applied event plus periodic state digests,
//!   the substrate for record, replay, diff, and divergence bisection.
//!
//! ## Example
//!
//! ```
//! use scrip_des::{Model, Scheduler, SimDuration, SimTime, Simulation};
//!
//! /// A counter that re-schedules itself every second, five times.
//! struct Ticker {
//!     ticks: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl Model for Ticker {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, _event: Ev, scheduler: &mut Scheduler<Ev>) {
//!         self.ticks += 1;
//!         if self.ticks < 5 {
//!             scheduler.schedule_after(SimDuration::from_secs(1), Ev::Tick);
//!         }
//!         let _ = now;
//!     }
//! }
//!
//! let mut sim = Simulation::new(Ticker { ticks: 0 });
//! sim.schedule(SimTime::ZERO, Ev::Tick);
//! sim.run();
//! assert_eq!(sim.model().ticks, 5);
//! assert_eq!(sim.now(), SimTime::from_secs(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod fault;
pub mod rng;
pub mod sampler;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wheel;

pub use event::{EventQueue, QueueProfile, Scheduled, Scheduler};
pub use fault::{DeliveryOutcome, FaultKind, FaultPlan, FaultSpec, FaultStats};
pub use rng::{SeedSequence, SimRng};
pub use sampler::FenwickSampler;
pub use shard::{CrossShardLog, LoggedEffect, ShardCtx, ShardModel, ShardedSimulation};
pub use sim::{Model, RunStats, Simulation};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceError, TraceFrame, TraceHeader, TraceReader, TraceTailer, TraceWriter};
pub use wheel::TimingWheel;

//! Virtual simulation time.
//!
//! Time is an integer count of **microseconds** since the start of the
//! simulation. Integer time makes event ordering exact (no floating-point
//! ties) so simulations are reproducible across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds per second of virtual time.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant in virtual time (microseconds since simulation start).
///
/// `SimTime` is totally ordered and cheap to copy. Construct instants with
/// [`SimTime::from_secs`], [`SimTime::from_secs_f64`] or by adding a
/// [`SimDuration`] to an existing instant.
///
/// ```
/// use scrip_des::{SimDuration, SimTime};
/// let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
/// assert_eq!(t.as_secs_f64(), 10.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
///
/// ```
/// use scrip_des::SimDuration;
/// let d = SimDuration::from_secs(2) * 3;
/// assert_eq!(d.as_secs_f64(), 6.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }

    /// This instant as whole microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`, or [`None`] if `earlier` is
    /// later than `self`.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_micros(secs))
    }

    /// This duration as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a fraction, rounding to the nearest
    /// microsecond; saturates on overflow or non-finite factors.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(secs_to_micros(self.as_secs_f64() * factor))
    }
}

fn secs_to_micros(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        if secs.is_infinite() && secs > 0.0 {
            return u64::MAX;
        }
        return 0;
    }
    let micros = secs * MICROS_PER_SEC as f64;
    if micros >= u64::MAX as f64 {
        u64::MAX
    } else {
        micros.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Saturating difference between two instants.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_seconds() {
        let t = SimTime::from_secs(42);
        assert_eq!(t.as_micros(), 42 * MICROS_PER_SEC);
        assert_eq!(t.as_secs_f64(), 42.0);
    }

    #[test]
    fn time_from_fractional_seconds_rounds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        let t = SimTime::from_secs_f64(0.000_000_4);
        assert_eq!(t.as_micros(), 0);
        let t = SimTime::from_secs_f64(0.000_000_6);
        assert_eq!(t.as_micros(), 1);
    }

    #[test]
    fn negative_and_nan_seconds_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn infinite_seconds_saturate_to_max() {
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!(SimTime::from_secs(13) - t, d);
        assert_eq!(d * 2, SimDuration::from_secs(6));
        assert_eq!(d / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.checked_duration_since(late), None);
        assert_eq!(
            late.checked_duration_since(early),
            Some(SimDuration::from_secs(4))
        );
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn addition_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.25).to_string(), "1.250000s");
        assert_eq!(SimDuration::from_millis(10).to_string(), "0.010000s");
    }

    #[test]
    fn mul_f64_rounds_and_saturates() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}

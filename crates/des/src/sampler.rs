//! Weighted index sampling with incremental updates.
//!
//! [`FenwickSampler`] replaces the O(deg) cumulative-weight walk on the
//! market spend path with an O(log deg) Fenwick-tree descent that is
//! **draw-compatible** with the walk it replaces: the caller feeds the
//! sampler the same weights in the same order, the sampler reports the
//! same left-to-right sequential total (so `u * total` is bit-identical
//! to what the walk would have computed), and [`FenwickSampler::pick`]
//! inverts the cumulative sum with the same boundary convention
//! (`target < prefix` selects, ties move right, all-zero weight vectors
//! fall back to the last index).
//!
//! The descent associates partial sums in tree order rather than strictly
//! left-to-right, so for adversarial floating-point weights the selected
//! index can differ from the walk's within a one-ULP window around a
//! prefix boundary (probability ~1e-13 per draw for uniformly random
//! targets). For integer-valued weights whose total stays below 2^53 all
//! arithmetic is exact and the descent is provably identical to the walk;
//! the proptests in `crates/des/tests/proptests.rs` pin both regimes.

/// A Fenwick (binary-indexed) tree over a dense weight vector supporting
/// O(n) rebuild, O(log n) point update, and O(log n) weighted inversion
/// of a cumulative-sum target.
///
/// ```
/// use scrip_des::FenwickSampler;
/// let mut s = FenwickSampler::new();
/// s.clear();
/// for w in [1.0, 3.0, 2.0] {
///     s.push(w);
/// }
/// s.build();
/// assert_eq!(s.total(), 6.0);
/// assert_eq!(s.pick(0.5), 0); // target < 1.0
/// assert_eq!(s.pick(1.0), 1); // boundary moves right, like the walk
/// assert_eq!(s.pick(5.9), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FenwickSampler {
    /// 1-based Fenwick array; `tree[0]` is a sentinel. After
    /// [`FenwickSampler::build`], `tree[i]` holds the sum of the leaf
    /// range `(i - lowbit(i), i]`.
    tree: Vec<f64>,
    /// Raw leaf weights, kept so [`FenwickSampler::update`] can derive
    /// deltas and tests can audit the state.
    weights: Vec<f64>,
    /// Left-to-right sequential sum of the pushed weights. This is the
    /// exact value the linear walk's accumulator would hold, preserved
    /// so `rng.uniform() * total` matches the legacy draw bit-for-bit.
    total: f64,
}

impl FenwickSampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        FenwickSampler::default()
    }

    /// Creates an empty sampler with storage for `capacity` weights, so
    /// steady-state rebuilds of up to that many entries never allocate.
    pub fn with_capacity(capacity: usize) -> Self {
        FenwickSampler {
            tree: Vec::with_capacity(capacity + 1),
            weights: Vec::with_capacity(capacity),
            total: 0.0,
        }
    }

    /// Resets to zero entries, retaining allocated storage.
    pub fn clear(&mut self) {
        self.tree.clear();
        self.weights.clear();
        self.total = 0.0;
    }

    /// Appends a weight. Weights must be pushed in the same order the
    /// replaced walk iterated them; the running total accumulates
    /// left-to-right so it is bit-identical to the walk's sum.
    ///
    /// Call [`FenwickSampler::build`] after the last push and before the
    /// first [`FenwickSampler::pick`].
    pub fn push(&mut self, weight: f64) {
        self.total += weight;
        self.weights.push(weight);
    }

    /// Builds the Fenwick array over the pushed weights in O(n).
    pub fn build(&mut self) {
        let n = self.weights.len();
        self.tree.clear();
        self.tree.reserve(n + 1);
        self.tree.push(0.0);
        self.tree.extend_from_slice(&self.weights);
        for i in 1..=n {
            let parent = i + (i & i.wrapping_neg());
            if parent <= n {
                self.tree[parent] += self.tree[i];
            }
        }
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the sampler holds no weights.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of weights the sampler can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.weights.capacity()
    }

    /// Heap bytes reserved by the tree and weight vectors (capacities,
    /// the allocator's view). Sized by the *largest neighborhood seen*,
    /// not the population, so the arena layout audit reports it as a
    /// fixed scratch cost.
    pub fn heap_bytes(&self) -> usize {
        (self.tree.capacity() + self.weights.capacity()) * std::mem::size_of::<f64>()
    }

    /// The left-to-right sequential sum of the current weights.
    ///
    /// After [`FenwickSampler::update`] this is the delta-adjusted sum,
    /// which equals the sequential rebuild sum exactly whenever the
    /// weights are integer-valued (or otherwise exactly representable).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The weight at `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Sets the weight at `i`, propagating the delta through the tree in
    /// O(log n). The availability-feedback hot path rebuilds instead
    /// (its weights time-decay, so every entry changes per query), but
    /// integer-weight users mutate in place through this.
    ///
    /// # Panics
    /// Panics if `i >= len()` or if called before [`FenwickSampler::build`].
    pub fn update(&mut self, i: usize, weight: f64) {
        assert!(
            self.tree.len() == self.weights.len() + 1,
            "update() requires build() first"
        );
        let delta = weight - self.weights[i];
        self.weights[i] = weight;
        self.total += delta;
        let n = self.weights.len();
        let mut j = i + 1;
        while j <= n {
            self.tree[j] += delta;
            j += j & j.wrapping_neg();
        }
    }

    /// Returns the index the linear cumulative walk would select for
    /// `target`: the first `k` with `prefix(k + 1) > target`, clamped to
    /// the last index when `target` reaches or exceeds the total (the
    /// walk's all-weights-consumed fallback).
    ///
    /// # Panics
    /// Panics if the sampler is empty.
    pub fn pick(&self, target: f64) -> usize {
        let n = self.weights.len();
        assert!(n > 0, "pick() on an empty sampler");
        debug_assert!(
            self.tree.len() == n + 1,
            "pick() requires build() after the last push"
        );
        let mut pos = 0usize;
        let mut remaining = target;
        // Largest power of two <= n.
        let mut step = 1usize << (usize::BITS - 1 - n.leading_zeros());
        while step > 0 {
            let next = pos + step;
            // `<=` (not `<`) mirrors the walk: a target exactly on a
            // prefix boundary belongs to the entry *after* the boundary,
            // and zero-weight entries are never selected.
            if next <= n && self.tree[next] <= remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos.min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The O(deg) walk this sampler replaces, verbatim.
    fn linear_walk(weights: &[f64], mut target: f64) -> usize {
        let mut pick = weights.len() - 1;
        for (k, &w) in weights.iter().enumerate() {
            if target < w {
                pick = k;
                break;
            }
            target -= w;
        }
        pick
    }

    fn built(weights: &[f64]) -> FenwickSampler {
        let mut s = FenwickSampler::new();
        for &w in weights {
            s.push(w);
        }
        s.build();
        s
    }

    #[test]
    fn matches_walk_on_simple_vectors() {
        let weights = [1.0, 3.0, 2.0, 4.0];
        let s = built(&weights);
        for t in [0.0, 0.5, 0.99, 1.0, 3.9, 4.0, 5.5, 9.9, 10.0, 25.0] {
            assert_eq!(s.pick(t), linear_walk(&weights, t), "target {t}");
        }
    }

    #[test]
    fn zero_weight_entries_are_never_picked() {
        let weights = [0.0, 2.0, 0.0, 0.0, 1.0, 0.0];
        let s = built(&weights);
        for t in [0.0, 1.0, 1.999, 2.0, 2.5, 2.999] {
            let k = s.pick(t);
            assert_eq!(k, linear_walk(&weights, t));
            assert!(weights[k] > 0.0, "picked zero-weight index {k}");
        }
        // At/after the total both fall back to the last index.
        assert_eq!(s.pick(3.0), linear_walk(&weights, 3.0));
        assert_eq!(s.pick(3.0), 5);
    }

    #[test]
    fn all_zero_weights_fall_back_to_last_index() {
        let weights = [0.0; 7];
        let s = built(&weights);
        assert_eq!(s.pick(0.0), linear_walk(&weights, 0.0));
        assert_eq!(s.pick(0.0), 6);
    }

    #[test]
    fn single_element_vector() {
        let s = built(&[2.5]);
        assert_eq!(s.pick(0.0), 0);
        assert_eq!(s.pick(2.4), 0);
        assert_eq!(s.pick(99.0), 0);
    }

    #[test]
    fn sequential_total_matches_walk_accumulator() {
        // 0.1 is inexact in binary; the sequential sum differs from a
        // tree-associated sum in the low bits. The sampler must report
        // the *sequential* one.
        let weights = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
        let s = built(&weights);
        let mut acc = 0.0f64;
        for &w in &weights {
            acc += w;
        }
        assert_eq!(s.total().to_bits(), acc.to_bits());
    }

    #[test]
    fn update_matches_rebuild_for_integer_weights() {
        let mut s = built(&[3.0, 1.0, 4.0, 1.0, 5.0]);
        s.update(2, 9.0);
        s.update(0, 0.0);
        let fresh = built(&[0.0, 1.0, 9.0, 1.0, 5.0]);
        assert_eq!(s.total(), fresh.total());
        for t in [0.0, 0.5, 1.0, 9.5, 10.0, 14.9, 15.0, 16.0] {
            assert_eq!(s.pick(t), fresh.pick(t), "target {t}");
        }
    }

    #[test]
    fn rebuild_reuses_storage() {
        let mut s = FenwickSampler::with_capacity(64);
        for round in 0..100 {
            s.clear();
            for k in 0..64 {
                s.push(((k + round) % 7) as f64);
            }
            s.build();
            let _ = s.pick(s.total() * 0.5);
        }
        assert_eq!(s.capacity(), 64);
        assert!(s.tree.capacity() <= 65 + 64, "tree over-allocated");
    }
}

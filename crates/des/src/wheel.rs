//! A calendar-queue (timing-wheel) pending-event store.
//!
//! [`TimingWheel`] is an alternative backend for [`crate::EventQueue`]
//! that pops the exact `(time, seq)` sequence a binary heap would, but
//! with O(1) amortized schedule/pop at the near-constant event horizon
//! this DES has (every peer keeps roughly one spend timer and one churn
//! timer in flight, so the pending population is dense and the lookahead
//! is bounded).
//!
//! Layout: simulated time (integer microseconds) is split into
//! power-of-two **buckets** of `1 << bucket_shift` µs. Events whose
//! bucket is at or before the wheel's `floor` live in a small **live**
//! binary heap (the only place ordering comparisons happen); events
//! within the wheel's lookahead window live in unordered per-bucket
//! `Vec`s; events past the window sit in an **overflow** min-heap.
//! Popping drains the live heap; when it empties, the wheel *rotates*:
//! the floor advances to the earliest non-empty bucket — considering
//! both the wheel window (via an occupancy bitmap, scanned 64 buckets
//! per word) and the overflow heap's peek — and every event of that
//! bucket (from the bucket `Vec` *and* any overflow stragglers whose
//! bucket now matches) is merged into the live heap, which restores
//! exact `(time, seq)` order within the bucket.
//!
//! Invariants:
//! - every live event has `bucket(time) <= floor`; every wheel/overflow
//!   event has `bucket(time) > floor`, so a non-empty live heap always
//!   holds the global minimum;
//! - the floor only advances (rotation picks the minimum candidate
//!   bucket, so no event is ever left behind it);
//! - bucket `Vec`s and both heaps retain capacity across drains, so a
//!   steady-state schedule/pop cycle stops allocating after warmup.

use std::collections::BinaryHeap;

use crate::event::Scheduled;
use crate::time::{SimDuration, SimTime};

/// Bounds on the bucket count: at least one word of occupancy bitmap,
/// at most 2^16 buckets (~1.5 MiB of empty `Vec` headers), past which
/// extra buckets stop paying for themselves.
const MIN_BUCKETS: usize = 64;
const MAX_BUCKETS: usize = 1 << 16;

/// A pending-event store that pops in exact `(time, seq)` order like a
/// binary heap, with O(1) amortized schedule/pop for bounded-lookahead
/// workloads. See the [module docs](self) for the layout.
#[derive(Clone, Debug)]
pub struct TimingWheel<E> {
    /// Events at or below the floor bucket, ordered by `(time, seq)`.
    live: BinaryHeap<Scheduled<E>>,
    /// Unordered event lists for buckets `(floor, floor + nbuckets)`.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// One bit per bucket slot: set while the slot's `Vec` is non-empty.
    occupancy: Vec<u64>,
    /// Events whose bucket falls past the wheel window.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Bucket width is `1 << bucket_shift` microseconds.
    bucket_shift: u32,
    /// Absolute index of the floor bucket (not masked).
    floor: u64,
    /// Total pending events across live + buckets + overflow.
    len: usize,
}

impl<E> TimingWheel<E> {
    /// Creates a wheel sized for `expected_events` concurrently pending
    /// events with a typical scheduling lookahead of `typical_delay`.
    ///
    /// The bucket count is the power of two nearest `expected_events`
    /// (clamped to `[64, 65536]`) and the bucket width is chosen so the
    /// wheel window covers at least twice the typical delay; events
    /// scheduled further ahead (churn lifetimes, far sample boundaries)
    /// take the overflow heap, which is correct but O(log n).
    pub fn new(expected_events: usize, typical_delay: SimDuration) -> Self {
        let nbuckets = expected_events
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let span_micros = typical_delay.as_micros().max(1).saturating_mul(2);
        let mut shift = 0u32;
        while (nbuckets as u64) << shift < span_micros && shift < 47 {
            shift += 1;
        }
        let per_bucket = (expected_events / nbuckets).max(4);
        TimingWheel {
            live: BinaryHeap::with_capacity(2 * per_bucket),
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            occupancy: vec![0u64; nbuckets / 64],
            overflow: BinaryHeap::new(),
            bucket_shift: shift,
            floor: 0,
            len: 0,
        }
    }

    /// Number of buckets in the wheel window.
    fn nbuckets(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// The absolute bucket index of `time`.
    fn bucket_of(&self, time: SimTime) -> u64 {
        time.as_micros() >> self.bucket_shift
    }

    fn set_occupied(&mut self, slot: usize) {
        self.occupancy[slot / 64] |= 1u64 << (slot % 64);
    }

    fn clear_occupied(&mut self, slot: usize) {
        self.occupancy[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pre-sizes the wheel for `additional` more pending events, spread
    /// evenly across the bucket ring (which is where a steady-state
    /// population actually sits), plus a few buckets' worth of live-heap
    /// headroom for the rotation merges.
    pub fn reserve(&mut self, additional: usize) {
        let per_bucket = additional / self.buckets.len();
        if per_bucket > 0 {
            for bucket in &mut self.buckets {
                if bucket.capacity() < per_bucket {
                    bucket.reserve(per_bucket - bucket.capacity());
                }
            }
        }
        self.live.reserve(2 * per_bucket + 64);
    }

    /// Total events the wheel can hold without any structure
    /// reallocating: the sum of live, overflow, and bucket capacities.
    /// O(nbuckets); used by steady-state allocation tests, not hot code.
    pub fn capacity(&self) -> usize {
        self.live.capacity()
            + self.overflow.capacity()
            + self.buckets.iter().map(Vec::capacity).sum::<usize>()
    }

    /// Inserts an already-sequenced event.
    pub fn push(&mut self, scheduled: Scheduled<E>) {
        let b = self.bucket_of(scheduled.time);
        self.len += 1;
        if b <= self.floor {
            self.live.push(scheduled);
        } else if b < self.floor + self.nbuckets() {
            let slot = (b % self.nbuckets()) as usize;
            self.buckets[slot].push(scheduled);
            self.set_occupied(slot);
        } else {
            self.overflow.push(scheduled);
        }
    }

    /// The earliest non-empty bucket strictly after the floor within the
    /// wheel window, as an absolute bucket index.
    fn next_occupied_bucket(&self) -> Option<u64> {
        let nbuckets = self.nbuckets();
        let start = ((self.floor + 1) % nbuckets) as usize;
        let words = self.occupancy.len();
        // Scan the bitmap circularly from `start`, one word at a time.
        let mut word_idx = start / 64;
        let mut word = self.occupancy[word_idx] & !((1u64 << (start % 64)) - 1);
        for _ in 0..=words {
            if word != 0 {
                let slot = word_idx * 64 + word.trailing_zeros() as usize;
                // Map the slot back to its absolute bucket in
                // (floor, floor + nbuckets).
                let offset = (slot as u64 + nbuckets - (self.floor + 1) % nbuckets) % nbuckets;
                return Some(self.floor + 1 + offset);
            }
            word_idx = (word_idx + 1) % words;
            word = self.occupancy[word_idx];
            if word_idx == start / 64 {
                // Back at the starting word: only the bits we masked off
                // initially remain unchecked.
                word &= (1u64 << (start % 64)) - 1;
            }
        }
        None
    }

    /// Advances the floor to the earliest non-empty bucket and merges
    /// that bucket's events (wheel `Vec` and overflow stragglers alike)
    /// into the live heap. No-op if anything is already live or nothing
    /// is pending.
    fn rotate(&mut self) {
        if !self.live.is_empty() {
            return;
        }
        let wheel_next = self.next_occupied_bucket();
        let overflow_next = self.overflow.peek().map(|s| self.bucket_of(s.time));
        let target = match (wheel_next, overflow_next) {
            (Some(w), Some(o)) => w.min(o),
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (None, None) => return,
        };
        debug_assert!(target > self.floor, "wheel floor went backwards");
        self.floor = target;
        if wheel_next == Some(target) {
            let slot = (target % self.nbuckets()) as usize;
            // Move the Vec out so the borrow checker allows pushing into
            // the live heap; swap it back to keep its capacity.
            let mut drained = std::mem::take(&mut self.buckets[slot]);
            self.live.extend(drained.drain(..));
            self.buckets[slot] = drained;
            self.clear_occupied(slot);
        }
        while let Some(s) = self.overflow.peek() {
            if self.bucket_of(s.time) != target {
                break;
            }
            let s = self.overflow.pop().expect("peeked overflow entry");
            self.live.push(s);
        }
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.live.is_empty() {
            self.rotate();
        }
        let popped = self.live.pop();
        if popped.is_some() {
            self.len -= 1;
        }
        popped
    }

    /// Removes and returns the earliest pending event if it activates at
    /// or before `limit`.
    pub fn pop_due(&mut self, limit: SimTime) -> Option<Scheduled<E>> {
        if self.live.is_empty() {
            self.rotate();
        }
        match self.live.peek() {
            Some(s) if s.time <= limit => {
                self.len -= 1;
                self.live.pop()
            }
            _ => None,
        }
    }

    /// The activation time of the earliest pending event, without
    /// rotating. O(1) while the live heap is non-empty; at a rotation
    /// boundary it costs one bitmap scan plus one bucket scan.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(s) = self.live.peek() {
            return Some(s.time);
        }
        let wheel_min = self.next_occupied_bucket().and_then(|b| {
            let slot = (b % self.nbuckets()) as usize;
            self.buckets[slot].iter().map(|s| s.time).min()
        });
        let overflow_min = self.overflow.peek().map(|s| s.time);
        // Buckets partition time monotonically, so the raw minimum over
        // the two candidates is the global minimum.
        match (wheel_min, overflow_min) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (Some(w), None) => Some(w),
            (None, Some(o)) => Some(o),
            (None, None) => None,
        }
    }

    /// Removes all pending events, retaining capacity. The floor is kept
    /// (simulation clocks never run backwards).
    pub fn clear(&mut self) {
        self.live.clear();
        self.overflow.clear();
        for slot in 0..self.buckets.len() {
            self.buckets[slot].clear();
        }
        self.occupancy.fill(0);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(micros: u64, seq: u64) -> Scheduled<u64> {
        Scheduled {
            time: SimTime::from_micros(micros),
            seq,
            event: seq,
        }
    }

    fn drain(w: &mut TimingWheel<u64>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| w.pop().map(|s| (s.time.as_micros(), s.seq))).collect()
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new(16, SimDuration::from_micros(1 << 8));
        for (t, seq) in [(300, 0), (100, 1), (100, 2), (7_000_000, 3), (0, 4)] {
            w.push(sched(t, seq));
        }
        assert_eq!(w.len(), 5);
        assert_eq!(
            drain(&mut w),
            vec![(0, 4), (100, 1), (100, 2), (300, 0), (7_000_000, 3)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_merges_with_wheel_bucket() {
        // An overflow event whose bucket falls inside the window after
        // the floor advances must not be overtaken by a later wheel
        // event in the same bucket.
        let mut w = TimingWheel::new(64, SimDuration::from_micros(64));
        // Bucket width is 2 µs here (64 buckets * 2 µs = 128 µs window),
        // so t=200 is bucket 100: outside the initial window -> overflow.
        let far = 200;
        w.push(sched(far, 0));
        w.push(sched(120, 1)); // bucket 60: inside the window
        assert_eq!(w.pop().map(|s| s.seq), Some(1));
        // The floor advanced to bucket 60, so bucket 100 is now inside
        // the window: schedule a wheel event in the same bucket as (and
        // later than) the overflow straggler.
        w.push(sched(far + 1, 2));
        assert_eq!(drain(&mut w), vec![(far, 0), (far + 1, 2)]);
    }

    #[test]
    fn peek_time_reports_earliest_without_mutation() {
        let mut w = TimingWheel::new(32, SimDuration::from_secs(1));
        assert_eq!(w.peek_time(), None);
        w.push(sched(5_000_000, 0));
        w.push(sched(2_000_000, 1));
        assert_eq!(w.peek_time(), Some(SimTime::from_micros(2_000_000)));
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop().map(|s| s.seq), Some(1));
        assert_eq!(w.peek_time(), Some(SimTime::from_micros(5_000_000)));
    }

    #[test]
    fn pop_due_respects_limit() {
        let mut w = TimingWheel::new(8, SimDuration::from_millis(1));
        w.push(sched(500, 0));
        w.push(sched(1_500, 1));
        assert_eq!(
            w.pop_due(SimTime::from_micros(1_000)).map(|s| s.seq),
            Some(0)
        );
        assert_eq!(w.pop_due(SimTime::from_micros(1_000)), None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn steady_state_cycle_stops_allocating() {
        let mut w = TimingWheel::new(256, SimDuration::from_millis(10));
        let mut seq = 0u64;
        // Deterministic jitter spreads the population over many buckets,
        // like the exponential spend timers do in the market.
        let delay = |seq: u64| 5_000 + (seq * 97) % 10_000;
        for _ in 0..256 {
            w.push(sched(delay(seq), seq));
            seq += 1;
        }
        // Warm up many full wheel revolutions so every recycled bucket
        // Vec has grown to its working size.
        for _ in 0..300_000 {
            let s = w.pop().expect("event");
            w.push(sched(s.time.as_micros() + delay(seq), seq));
            seq += 1;
        }
        let cap = w.capacity();
        for _ in 0..100_000 {
            let s = w.pop().expect("event");
            w.push(sched(s.time.as_micros() + delay(seq), seq));
            seq += 1;
        }
        assert_eq!(w.capacity(), cap, "steady-state cycling reallocated");
    }

    #[test]
    fn clear_empties_but_keeps_floor_monotone() {
        let mut w = TimingWheel::new(8, SimDuration::from_millis(1));
        w.push(sched(10_000, 0));
        assert_eq!(w.pop().map(|s| s.seq), Some(0));
        w.push(sched(20_000, 1));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
        // Events after clear() still pop correctly.
        w.push(sched(30_000, 2));
        w.push(sched(25_000, 3));
        assert_eq!(drain(&mut w), vec![(25_000, 3), (30_000, 2)]);
    }
}
